//! Executes declarative scenario files (`moentwine-spec`) and emits
//! schema-validated run manifests.
//!
//! This is the engine behind the `scenario` bench bin: it loads a
//! `moentwine/scenario/v1` spec document, expands its sweep axes into grid
//! points, runs every point on a `threads`-wide
//! [`WorkerPool`](crate::perf::pool::WorkerPool) (points are independent
//! seeded runs, so results merge in grid order and the manifest is
//! byte-identical for every thread count), and flattens each outcome into
//! a `moentwine/scenario_run/v1` manifest written next to the other figure
//! manifests under `target/figs/scenario/`.

use std::path::{Path, PathBuf};

use moentwine_spec::{ConfigError, ScenarioOutcome, ScenarioSpec};

use crate::json::Value;
use crate::report::fmt_time;
use crate::Report;

/// Schema identifier embedded in (and required of) every run manifest.
pub const RUN_SCHEMA: &str = "moentwine/scenario_run/v1";

/// Directory the manifests are written to.
pub const MANIFEST_DIR: &str = "target/figs/scenario";

/// Iteration (or fleet-round) cap applied by `--quick` smoke runs. Sized
/// so short-output scenarios (privacy: median 128 decode steps after
/// prefill) still complete requests and the smoke manifests carry real
/// percentiles.
pub const QUICK_ITERATIONS: usize = 250;

/// Flattens one scenario point's outcome into manifest fields.
fn outcome_json(label: &str, spec: &ScenarioSpec, outcome: &ScenarioOutcome) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        ("label".into(), Value::Str(label.into())),
        (
            "kind".into(),
            Value::Str(
                match outcome {
                    ScenarioOutcome::Engine { .. } => "engine",
                    ScenarioOutcome::Fleet(_) => "fleet",
                }
                .into(),
            ),
        ),
        ("iterations".into(), Value::Num(spec.iterations as f64)),
    ];
    let serving_fields = |s: &moentwine_core::engine::ServingSummary| {
        let mut fields = vec![
            ("completed".to_string(), Value::Num(s.completed as f64)),
            (
                "admission_rejects".to_string(),
                Value::Num(s.admission_rejects as f64),
            ),
            ("sim_seconds".to_string(), Value::Num(s.sim_seconds)),
            ("goodput_rps".to_string(), Value::Num(s.goodput_rps)),
            (
                "goodput_tokens_per_s".to_string(),
                Value::Num(s.goodput_tokens_per_s),
            ),
            ("ttft_p50".to_string(), Value::Num(s.ttft_p50)),
            ("ttft_p95".to_string(), Value::Num(s.ttft_p95)),
            ("ttft_p99".to_string(), Value::Num(s.ttft_p99)),
            ("tpot_p50".to_string(), Value::Num(s.tpot_p50)),
            ("tpot_p95".to_string(), Value::Num(s.tpot_p95)),
            ("tpot_p99".to_string(), Value::Num(s.tpot_p99)),
            ("e2e_p50".to_string(), Value::Num(s.e2e_p50)),
            ("e2e_p99".to_string(), Value::Num(s.e2e_p99)),
            (
                "mean_queue_depth".to_string(),
                Value::Num(s.mean_queue_depth),
            ),
        ];
        // Per-class SLO sections ride only on workload-profiled runs, so
        // workload-free scenario manifests stay byte-identical to earlier
        // schemas (same gating as the fleet availability section).
        if !s.classes.is_empty() {
            fields.push(("shed".to_string(), Value::Num(s.shed as f64)));
            fields.push((
                "classes".to_string(),
                Value::Arr(
                    s.classes
                        .iter()
                        .map(|c| {
                            Value::Obj(vec![
                                ("class".into(), Value::Str(c.class.name().into())),
                                ("completed".into(), Value::Num(c.completed as f64)),
                                ("rejected".into(), Value::Num(c.rejected as f64)),
                                ("shed".into(), Value::Num(c.shed as f64)),
                                ("ttft_p50".into(), Value::Num(c.ttft_p50)),
                                ("ttft_p95".into(), Value::Num(c.ttft_p95)),
                                ("ttft_p99".into(), Value::Num(c.ttft_p99)),
                                ("tpot_p50".into(), Value::Num(c.tpot_p50)),
                                ("tpot_p95".into(), Value::Num(c.tpot_p95)),
                                ("tpot_p99".into(), Value::Num(c.tpot_p99)),
                                ("ttft_slo".into(), Value::Num(c.ttft_slo)),
                                ("tpot_slo".into(), Value::Num(c.tpot_slo)),
                                ("ttft_attainment".into(), Value::Num(c.ttft_attainment)),
                                ("tpot_attainment".into(), Value::Num(c.tpot_attainment)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        fields
    };
    match outcome {
        ScenarioOutcome::Engine { run, serving } => {
            fields.push((
                "run".into(),
                Value::Obj(vec![
                    (
                        "mean_iteration_time".into(),
                        Value::Num(run.mean_iteration_time),
                    ),
                    ("mean_all_reduce".into(), Value::Num(run.mean_all_reduce)),
                    ("mean_all_to_all".into(), Value::Num(run.mean_all_to_all)),
                    ("mean_moe_compute".into(), Value::Num(run.mean_moe_compute)),
                    ("mean_load_ratio".into(), Value::Num(run.mean_load_ratio)),
                    (
                        "mean_tokens_per_group".into(),
                        Value::Num(run.mean_tokens_per_group),
                    ),
                    (
                        "tokens_per_second_per_device".into(),
                        Value::Num(run.tokens_per_second_per_device),
                    ),
                ]),
            ));
            fields.push(("serving".into(), Value::Obj(serving_fields(serving))));
        }
        ScenarioOutcome::Fleet(summary) => {
            fields.push((
                "fleet".into(),
                Value::Obj(vec![
                    ("replicas".into(), Value::Num(summary.replicas as f64)),
                    ("rounds".into(), Value::Num(summary.rounds as f64)),
                    (
                        "routing_imbalance".into(),
                        Value::Num(summary.routing_imbalance),
                    ),
                    (
                        "completion_imbalance".into(),
                        Value::Num(summary.completion_imbalance),
                    ),
                    (
                        "routed".into(),
                        Value::Arr(
                            summary
                                .routed
                                .iter()
                                .map(|&r| Value::Num(r as f64))
                                .collect(),
                        ),
                    ),
                ]),
            ));
            fields.push((
                "serving".into(),
                Value::Obj(serving_fields(&summary.aggregate)),
            ));
            // Only fleets with a timeline carry the section, so event-free
            // scenario manifests stay byte-identical to earlier schemas.
            if summary.availability.events_applied > 0 {
                fields.push((
                    "availability".into(),
                    crate::perf::availability::availability_json(&summary.availability),
                ));
            }
            // Same gating for the hand-off section: only disaggregated
            // fleets that actually priced a KV transfer carry it, so every
            // colocated manifest stays byte-identical to earlier schemas.
            let h = &summary.handoff;
            if h.kv_transfers > 0 {
                fields.push((
                    "handoff".into(),
                    Value::Obj(vec![
                        ("kv_transfers".into(), Value::Num(h.kv_transfers as f64)),
                        ("kv_transfer_bytes".into(), Value::Num(h.kv_transfer_bytes)),
                        (
                            "kv_transfer_seconds".into(),
                            Value::Num(h.kv_transfer_seconds),
                        ),
                        (
                            "max_transfer_seconds".into(),
                            Value::Num(h.max_transfer_seconds),
                        ),
                        (
                            "pending_transfers".into(),
                            Value::Num(h.pending_transfers as f64),
                        ),
                        (
                            "handoffs_completed".into(),
                            Value::Num(h.handoffs_completed as f64),
                        ),
                        (
                            "mean_handoff_latency".into(),
                            Value::Num(h.mean_handoff_latency),
                        ),
                        (
                            "max_handoff_latency".into(),
                            Value::Num(h.max_handoff_latency),
                        ),
                        ("mean_e2e_ttft".into(), Value::Num(h.mean_e2e_ttft)),
                        ("max_e2e_ttft".into(), Value::Num(h.max_e2e_ttft)),
                    ]),
                ));
            }
            // Same gating for the speculative section: only fleets that
            // actually dispatched a first-token race carry it, so every
            // unicast manifest stays byte-identical to earlier schemas.
            let sp = &summary.speculative;
            if sp.groups_dispatched > 0 {
                fields.push((
                    "speculative".into(),
                    Value::Obj(vec![
                        (
                            "groups_dispatched".into(),
                            Value::Num(sp.groups_dispatched as f64),
                        ),
                        (
                            "cancelled_copies".into(),
                            Value::Num(sp.cancelled_copies as f64),
                        ),
                        ("open_groups".into(), Value::Num(sp.open_groups as f64)),
                    ]),
                ));
            }
        }
    }
    Value::Obj(fields)
}

/// Runs every grid point of `spec` (sweep-expanded) on `threads` workers
/// and builds the run manifest. With `quick`, iteration counts are capped
/// at [`QUICK_ITERATIONS`] per point.
///
/// # Errors
///
/// Returns the first [`ConfigError`] found while building or running any
/// point.
pub fn run_manifest(
    spec: &ScenarioSpec,
    quick: bool,
    threads: usize,
) -> Result<Value, ConfigError> {
    let mut points = spec.expand_sweep()?;
    if quick {
        for (_, point) in &mut points {
            point.iterations = point.iterations.min(QUICK_ITERATIONS);
        }
    }
    let pool = crate::perf::pool::WorkerPool::new(threads);
    let jobs: Vec<_> = points
        .iter()
        .map(|(label, point)| {
            move || -> Result<Value, ConfigError> {
                let outcome = point.build()?.run()?;
                Ok(outcome_json(label, point, &outcome))
            }
        })
        .collect();
    let results = pool.run(jobs);
    let mut point_values = Vec::with_capacity(results.len());
    for result in results {
        point_values.push(result?);
    }
    Ok(Value::Obj(vec![
        ("schema".into(), Value::Str(RUN_SCHEMA.into())),
        ("name".into(), Value::Str(spec.name.clone())),
        ("quick".into(), Value::Bool(quick)),
        ("spec".into(), spec.to_json()),
        ("points".into(), Value::Arr(point_values)),
    ]))
}

/// Validates a run manifest against the `moentwine/scenario_run/v1`
/// schema: schema tag, an embedded spec that itself round-trips, a
/// non-empty point list, and per-point outcome sections with monotone
/// percentile ladders.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, RUN_SCHEMA)?;
    manifest
        .get("name")
        .and_then(Value::as_str)
        .ok_or("missing name")?;
    let spec = manifest.get("spec").ok_or("missing embedded spec")?;
    ScenarioSpec::from_json(spec).map_err(|e| format!("embedded spec: {e}"))?;
    for (i, point) in v::require_points(manifest)?.iter().enumerate() {
        point
            .get("label")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("point {i}: missing label"))?;
        let kind = point
            .get("kind")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("point {i}: missing kind"))?;
        let section = match kind {
            "engine" => "run",
            "fleet" => "fleet",
            other => return Err(format!("point {i}: unknown kind {other:?}")),
        };
        point
            .get(section)
            .ok_or_else(|| format!("point {i}: missing {section:?} section"))?;
        let serving = point
            .get("serving")
            .ok_or_else(|| format!("point {i}: missing serving section"))?;
        // The availability section is only emitted for fleets whose
        // timeline actually fired; an all-zero section would mean the
        // byte-stability contract for event-free specs was broken.
        if let Some(avail) = point.get("availability") {
            let applied = avail
                .get("events_applied")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if applied < 1.0 {
                return Err(format!(
                    "point {i}: availability section present but no events applied"
                ));
            }
        }
        // The hand-off section is only emitted when a KV transfer was
        // actually priced; an all-zero section would mean the
        // byte-stability contract for colocated fleets was broken.
        if let Some(handoff) = point.get("handoff") {
            let transfers = handoff
                .get("kv_transfers")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if transfers < 1.0 {
                return Err(format!(
                    "point {i}: handoff section present but no KV transfers priced"
                ));
            }
            for key in ["kv_transfer_bytes", "kv_transfer_seconds"] {
                let value = handoff
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("point {i}: handoff missing {key}"))?;
                if value <= 0.0 {
                    return Err(format!("point {i}: handoff {key} must be positive"));
                }
            }
        }
        // The speculative section is only emitted when at least one
        // first-token race was dispatched; an all-zero section would mean
        // the byte-stability contract for unicast fleets was broken.
        if let Some(speculative) = point.get("speculative") {
            let groups = speculative
                .get("groups_dispatched")
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if groups < 1.0 {
                return Err(format!(
                    "point {i}: speculative section present but no races dispatched"
                ));
            }
            for key in ["cancelled_copies", "open_groups"] {
                speculative
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("point {i}: speculative missing {key}"))?;
            }
        }
        // The serving section shares the sweep manifests' point skeleton,
        // so the same helper gates the ladders and throughput fields.
        v::check_point_common(
            serving,
            i,
            &[
                "completed",
                "admission_rejects",
                "sim_seconds",
                "mean_queue_depth",
            ],
        )?;
        // Per-class sections (workload-profiled runs only): attainments are
        // fractions and every class names its SLO targets.
        if let Some(classes) = serving.get("classes") {
            let classes = classes
                .as_array()
                .ok_or_else(|| format!("point {i}: classes must be an array"))?;
            if classes.is_empty() {
                return Err(format!(
                    "point {i}: classes section present but empty (workload-free \
                     runs must omit it)"
                ));
            }
            for class in classes {
                let name = class
                    .get("class")
                    .and_then(Value::as_str)
                    .ok_or_else(|| format!("point {i}: class entry missing name"))?;
                for key in ["ttft_attainment", "tpot_attainment"] {
                    let a = class
                        .get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("point {i}: class {name}: missing {key}"))?;
                    if !(0.0..=1.0).contains(&a) {
                        return Err(format!("point {i}: class {name}: {key} {a} outside [0, 1]"));
                    }
                }
                for key in ["ttft_slo", "tpot_slo"] {
                    let slo = class
                        .get(key)
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("point {i}: class {name}: missing {key}"))?;
                    if slo <= 0.0 {
                        return Err(format!(
                            "point {i}: class {name}: {key} {slo} must be positive"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// The manifest path for a scenario named `name`.
pub fn manifest_path(name: &str) -> PathBuf {
    // File stems stay shell-friendly: non-alphanumeric runs collapse to _.
    let stem: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    Path::new(MANIFEST_DIR).join(format!("{stem}.json"))
}

/// Loads a spec file, runs it, validates the manifest, writes it under
/// [`MANIFEST_DIR`], and returns a human-readable report plus the path.
///
/// # Errors
///
/// Returns a message on I/O failures, spec errors, and schema violations.
pub fn run_file(path: &Path, quick: bool, threads: usize) -> Result<(Report, PathBuf), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    let spec =
        ScenarioSpec::from_json_text(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let manifest =
        run_manifest(&spec, quick, threads).map_err(|e| format!("{}: {e}", path.display()))?;
    validate(&manifest).map_err(|e| format!("{}: manifest invalid: {e}", path.display()))?;

    let mut report = Report::new(
        format!("scenario_{}", spec.name),
        format!("Scenario {} ({})", spec.name, path.display()),
    )
    .columns([
        "Point",
        "Kind",
        "Iterations",
        "TTFT p50",
        "TTFT p99",
        "Goodput (req/s)",
        "Completed",
        "Rejects",
    ]);
    if let Some(points) = manifest.get("points").and_then(Value::as_array) {
        for point in points {
            let s = |k: &str| {
                point
                    .get(k)
                    .and_then(Value::as_str)
                    .unwrap_or_default()
                    .to_string()
            };
            let serving = point.get("serving");
            let num = |k: &str| {
                serving
                    .and_then(|v| v.get(k))
                    .and_then(Value::as_f64)
                    .unwrap_or_default()
            };
            report.row([
                s("label"),
                s("kind"),
                format!(
                    "{}",
                    point
                        .get("iterations")
                        .and_then(Value::as_f64)
                        .unwrap_or_default()
                ),
                fmt_time(num("ttft_p50")),
                fmt_time(num("ttft_p99")),
                format!("{:.1}", num("goodput_rps")),
                format!("{}", num("completed")),
                format!("{}", num("admission_rejects")),
            ]);
        }
    }

    let out = manifest_path(&spec.name);
    std::fs::create_dir_all(MANIFEST_DIR)
        .and_then(|()| std::fs::write(&out, manifest.pretty()))
        .map_err(|e| format!("{}: cannot write manifest: {e}", out.display()))?;
    report.note(format!(
        "schema-valid manifest: {} (byte-identical across runs and --threads)",
        out.display()
    ));
    Ok((report, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_workload::RouterPolicy;
    use moentwine_spec::{BatchSpec, EngineSpec, FleetSpec, PlatformSpec, ServingSpec, SweepSpec};

    fn tiny_serving_spec() -> ScenarioSpec {
        ScenarioSpec::new("unit_serving", PlatformSpec::wsc(4))
            .with_engine(
                EngineSpec::default()
                    .with_seed(17)
                    .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 6.0e3)))
                    .with_kv_hbm_fraction(1.0e-3),
            )
            .with_iterations(400)
    }

    #[test]
    fn manifest_validates_and_is_deterministic_across_threads() {
        let spec =
            tiny_serving_spec().with_sweep(SweepSpec::default().with_rates(vec![4.0e3, 12.0e3]));
        let serial = run_manifest(&spec, true, 1).unwrap();
        validate(&serial).expect("schema");
        let parallel = run_manifest(&spec, true, 3).unwrap();
        assert_eq!(serial.pretty(), parallel.pretty());
        // Two points from the rate sweep.
        assert_eq!(
            serial
                .get("points")
                .and_then(Value::as_array)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn fleet_points_flatten_with_fleet_section() {
        let spec = tiny_serving_spec()
            .with_fleet(FleetSpec::new(2, RouterPolicy::LeastQueueDepth, 6.0e3))
            .with_iterations(150);
        let manifest = run_manifest(&spec, true, 1).unwrap();
        validate(&manifest).expect("schema");
        let points = manifest.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(points[0].get("kind").and_then(Value::as_str), Some("fleet"));
        assert!(points[0].get("fleet").is_some());
        // Event-free fleets carry no availability section (byte-stability
        // of pre-timeline manifests).
        assert!(points[0].get("availability").is_none());
    }

    #[test]
    fn chaos_fleet_points_carry_the_availability_section() {
        use moentwine_core::fleet::{FleetEvent, FleetEventKind};
        let spec = tiny_serving_spec()
            .with_fleet(
                FleetSpec::new(2, RouterPolicy::LeastQueueDepth, 2.0e5).with_events(vec![
                    FleetEvent {
                        time: 3.0e-4,
                        kind: FleetEventKind::Crash { replica: 1 },
                    },
                    FleetEvent {
                        time: 6.0e-4,
                        kind: FleetEventKind::Recover { replica: 1 },
                    },
                ]),
            )
            .with_iterations(400);
        let manifest = run_manifest(&spec, true, 1).unwrap();
        validate(&manifest).expect("schema");
        let points = manifest.get("points").and_then(Value::as_array).unwrap();
        let avail = points[0]
            .get("availability")
            .expect("chaos fleet point has availability");
        assert_eq!(
            avail.get("events_applied").and_then(Value::as_f64),
            Some(2.0)
        );
        assert!(avail
            .get("goodput_windows")
            .and_then(Value::as_array)
            .is_some());
    }

    #[test]
    fn disaggregated_fleet_points_carry_the_gated_handoff_section() {
        use moentwine_core::fleet::ReplicaRole;
        use moentwine_spec::MappingSpec;
        // Colocated fleets must omit the hand-off section entirely.
        let colocated = tiny_serving_spec()
            .with_fleet(FleetSpec::new(2, RouterPolicy::LeastQueueDepth, 6.0e3))
            .with_iterations(150);
        let manifest = run_manifest(&colocated, true, 1).unwrap();
        let points = manifest.get("points").and_then(Value::as_array).unwrap();
        assert!(points[0].get("handoff").is_none());

        // A 2 prefill + 2 decode fleet on a heterogeneous decode platform
        // prices its hand-offs and reports them, identically across
        // threads.
        let spec = tiny_serving_spec()
            .with_fleet(
                FleetSpec::new(4, RouterPolicy::LeastQueueDepth, 2.0e4)
                    .with_roles(vec![
                        ReplicaRole::Prefill,
                        ReplicaRole::Prefill,
                        ReplicaRole::Decode,
                        ReplicaRole::Decode,
                    ])
                    .with_decode_platform(PlatformSpec::dgx(1), MappingSpec::cluster(8)),
            )
            .with_iterations(250);
        let manifest = run_manifest(&spec, true, 1).unwrap();
        validate(&manifest).expect("schema");
        let points = manifest.get("points").and_then(Value::as_array).unwrap();
        let handoff = points[0]
            .get("handoff")
            .expect("disaggregated fleet point has handoff");
        assert!(handoff.get("kv_transfers").and_then(Value::as_f64).unwrap() >= 1.0);
        assert!(
            handoff
                .get("kv_transfer_seconds")
                .and_then(Value::as_f64)
                .unwrap()
                > 0.0
        );
        let parallel = run_manifest(&spec, true, 3).unwrap();
        assert_eq!(manifest.pretty(), parallel.pretty());
    }

    #[test]
    fn workload_points_carry_gated_class_sections() {
        use moe_workload::ClassSpec;
        use moentwine_spec::{ArrivalSourceSpec, WorkloadSpec};
        // Workload-free runs must omit the section entirely.
        let plain = run_manifest(&tiny_serving_spec(), true, 1).unwrap();
        let points = plain.get("points").and_then(Value::as_array).unwrap();
        assert!(points[0].get("serving").unwrap().get("classes").is_none());
        assert!(points[0].get("serving").unwrap().get("shed").is_none());

        // A bursty two-tenant workload reports both classes, in priority
        // order, with attainment fractions — identically across threads.
        let workload = WorkloadSpec::new(ArrivalSourceSpec::Burst {
            period: 0.002,
            burst_duration: 0.001,
            quiet_factor: 0.5,
            burst_factor: 4.0,
        })
        .with_classes(vec![
            ClassSpec::interactive()
                .with_weight(3.0)
                .with_shed_after(0.05),
            ClassSpec::batch(),
        ]);
        let spec = ScenarioSpec::new("unit_workload", PlatformSpec::wsc(4))
            .with_engine(
                EngineSpec::default()
                    .with_seed(17)
                    .with_batch(BatchSpec::Serving(
                        ServingSpec::hybrid(2048, 128, 6.0e3).with_workload(workload),
                    ))
                    .with_kv_hbm_fraction(1.0e-3),
            )
            .with_iterations(600);
        let manifest = run_manifest(&spec, false, 1).unwrap();
        validate(&manifest).expect("schema");
        let points = manifest.get("points").and_then(Value::as_array).unwrap();
        let classes = points[0]
            .get("serving")
            .unwrap()
            .get("classes")
            .and_then(Value::as_array)
            .expect("workload point has classes");
        assert_eq!(classes.len(), 2);
        assert_eq!(
            classes[0].get("class").and_then(Value::as_str),
            Some("interactive")
        );
        assert_eq!(
            classes[1].get("class").and_then(Value::as_str),
            Some("batch")
        );
        let parallel = run_manifest(&spec, false, 3).unwrap();
        assert_eq!(manifest.pretty(), parallel.pretty());
    }

    #[test]
    fn validate_rejects_broken_manifests() {
        assert!(validate(&Value::Obj(vec![])).is_err());
        let manifest = run_manifest(&tiny_serving_spec(), true, 1).unwrap();
        let mut broken = manifest.clone();
        if let Value::Obj(members) = &mut broken {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    *v = Value::Arr(vec![]);
                }
            }
        }
        assert!(validate(&broken).unwrap_err().contains("empty points"));
    }

    #[test]
    fn quick_caps_iterations() {
        let manifest = run_manifest(&tiny_serving_spec(), true, 1).unwrap();
        let points = manifest.get("points").and_then(Value::as_array).unwrap();
        assert_eq!(
            points[0].get("iterations").and_then(Value::as_f64),
            Some(QUICK_ITERATIONS as f64)
        );
    }
}
