//! Regenerates the paper's fig04 (see `moentwine_bench::figs::fig04`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig04::run);
}
