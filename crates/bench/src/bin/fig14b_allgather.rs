//! Regenerates the paper's fig14b (see `moentwine_bench::figs::fig14b`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig14b::run);
}
