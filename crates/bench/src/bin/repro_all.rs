//! Runs every table/figure experiment in paper order, saving each report to
//! `results/<id>.json`, writing a combined `results/SUMMARY.md` suitable for
//! pasting into EXPERIMENTS.md, and emitting a machine-readable run manifest
//! to `target/figs/summary.json` (figure id → status, runtime, key metrics)
//! for CI and downstream tooling.
//!
//! A panicking experiment is recorded as `"status": "failed"` in the
//! manifest and the remaining experiments still run; the process then exits
//! non-zero.
//!
//! Usage: `cargo run --release -p moentwine-bench --bin repro_all [--quick]`

use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use moentwine_bench::json::Value;
use moentwine_bench::Report;

/// One experiment's manifest entry. `save_error` reports a figure that ran
/// but whose `results/<id>.json` could not be written — `report_path` is
/// only recorded when the file actually exists.
fn manifest_entry(
    id: &str,
    outcome: &Result<Report, String>,
    save_error: Option<&str>,
    seconds: f64,
) -> Value {
    let mut fields = vec![("id".into(), Value::Str(id.into()))];
    match outcome {
        Ok(report) => {
            fields.push(("status".into(), Value::Str("ok".into())));
            fields.push(("title".into(), Value::Str(report.title.clone())));
            fields.push(("rows".into(), Value::Num(report.rows.len() as f64)));
            // The notes carry each figure's paper-vs-measured observations —
            // the key metrics a reader checks first.
            fields.push(("key_metrics".into(), Value::strings(report.notes.clone())));
            match save_error {
                None => fields.push((
                    "report_path".into(),
                    Value::Str(format!("results/{id}.json")),
                )),
                Some(e) => fields.push(("save_error".into(), Value::Str(e.into()))),
            }
        }
        Err(message) => {
            fields.push(("status".into(), Value::Str("failed".into())));
            fields.push(("error".into(), Value::Str(message.clone())));
        }
    }
    fields.push(("seconds".into(), Value::Num(seconds)));
    Value::Obj(fields)
}

fn main() {
    let quick = moentwine_bench::quick_from_args();
    let mut summary = String::from("# MoEntwine reproduction results\n\n");
    if quick {
        summary.push_str("> Generated with `--quick` (reduced iterations).\n\n");
    }
    let start = Instant::now();
    let mut entries: Vec<Value> = Vec::new();
    let mut failures = 0usize;
    for (id, runner) in moentwine_bench::figs::all() {
        let t0 = Instant::now();
        eprintln!("[repro] running {id} ...");
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| runner(quick))).map_err(|cause| {
            cause
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| cause.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "experiment panicked".into())
        });
        let seconds = t0.elapsed().as_secs_f64();
        let mut save_error = None;
        match &outcome {
            Ok(report) => {
                report.print();
                if let Err(e) = report.save("results") {
                    eprintln!("[repro] warning: could not save {id}: {e}");
                    save_error = Some(e.to_string());
                }
                summary.push_str(&report.to_markdown());
                summary.push('\n');
                eprintln!("[repro] {id} finished in {seconds:.1}s");
            }
            Err(message) => {
                failures += 1;
                summary.push_str(&format!("## {id} — FAILED\n\n- {message}\n\n"));
                eprintln!("[repro] {id} FAILED after {seconds:.1}s: {message}");
            }
        }
        entries.push(manifest_entry(id, &outcome, save_error.as_deref(), seconds));
    }
    summary.push_str(&format!(
        "\n_Total generation time: {:.1}s_\n",
        start.elapsed().as_secs_f64()
    ));
    if let Err(e) =
        fs::create_dir_all("results").and_then(|_| fs::write("results/SUMMARY.md", &summary))
    {
        eprintln!("[repro] warning: could not write summary: {e}");
    }

    // Backend-pricing perf snapshot: the incremental-DES and schedule-cache
    // speedups tracked across PRs (see DESIGN.md §5 and bin/bench_backend).
    eprintln!("[repro] measuring backend pricing perf ...");
    let perf = moentwine_bench::perf::measure_backend_perf(quick);
    eprintln!("{}", perf.summary());
    match perf.save("target/figs/bench_backend.json", quick) {
        Ok(()) => eprintln!("[repro] backend perf manifest: target/figs/bench_backend.json"),
        Err(e) => eprintln!("[repro] warning: could not write backend perf manifest: {e}"),
    }

    let manifest = Value::Obj(vec![
        ("quick".into(), Value::Bool(quick)),
        (
            "backend_incremental_speedup".into(),
            Value::Num(perf.incremental_speedup),
        ),
        (
            "backend_cached_speedup".into(),
            Value::Num(perf.cached_speedup),
        ),
        (
            "total_seconds".into(),
            Value::Num(start.elapsed().as_secs_f64()),
        ),
        ("failures".into(), Value::Num(failures as f64)),
        ("figures".into(), Value::Arr(entries)),
    ]);
    match fs::create_dir_all("target/figs")
        .and_then(|_| fs::write("target/figs/summary.json", manifest.pretty()))
    {
        Ok(()) => eprintln!("[repro] machine-readable manifest: target/figs/summary.json"),
        Err(e) => eprintln!("[repro] warning: could not write manifest: {e}"),
    }
    eprintln!(
        "[repro] all experiments done in {:.1}s ({failures} failed); see results/SUMMARY.md",
        start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
