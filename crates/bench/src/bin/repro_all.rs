//! Runs every table/figure experiment in paper order, saving each report to
//! `results/<id>.json`, writing a combined `results/SUMMARY.md` suitable for
//! pasting into EXPERIMENTS.md, and emitting a machine-readable run manifest
//! to `target/figs/summary.json` (figure id → status, runtime, key metrics)
//! for CI and downstream tooling.
//!
//! Experiments are independent, so they run on a worker pool (`--threads N`,
//! default: available parallelism); outputs merge in paper order, so every
//! artifact is byte-identical to a serial run.
//!
//! With `--measure-speedup` the figure fan-out runs **twice** — once on a
//! single thread, once on the pool — and the manifest records the true
//! wall-clock ratio (`parallel_speedup`, `speedup_measured: true`) plus the
//! per-figure before/after timings. Without the flag only the pooled pass
//! runs and `parallel_speedup` reports the pool-occupancy proxy
//! (summed concurrent per-figure seconds over fan-out wall,
//! `speedup_measured: false`) — cheap, but inflated by time-slicing when
//! threads exceed cores, which is why the CI gate uses the measured mode.
//!
//! A panicking experiment is recorded as `"status": "failed"` in the
//! manifest and the remaining experiments still run; the process then exits
//! non-zero.
//!
//! Usage: `cargo run --release -p moentwine-bench --bin repro_all --
//! [--quick] [--threads N] [--measure-speedup]`

use std::fs;
use std::panic::{self, AssertUnwindSafe};
use std::time::Instant;

use moentwine_bench::figs::Runner;
use moentwine_bench::json::Value;
use moentwine_bench::perf::pool::WorkerPool;
use moentwine_bench::Report;

/// One experiment's manifest entry. `save_error` reports a figure that ran
/// but whose `results/<id>.json` could not be written — `report_path` is
/// only recorded when the file actually exists.
fn manifest_entry(
    id: &str,
    outcome: &Result<Report, String>,
    save_error: Option<&str>,
    seconds: f64,
    serial_seconds: Option<f64>,
) -> Value {
    let mut fields = vec![("id".into(), Value::Str(id.into()))];
    match outcome {
        Ok(report) => {
            fields.push(("status".into(), Value::Str("ok".into())));
            fields.push(("title".into(), Value::Str(report.title.clone())));
            fields.push(("rows".into(), Value::Num(report.rows.len() as f64)));
            // The notes carry each figure's paper-vs-measured observations —
            // the key metrics a reader checks first.
            fields.push(("key_metrics".into(), Value::strings(report.notes.clone())));
            match save_error {
                None => fields.push((
                    "report_path".into(),
                    Value::Str(format!("results/{id}.json")),
                )),
                Some(e) => fields.push(("save_error".into(), Value::Str(e.into()))),
            }
        }
        Err(message) => {
            fields.push(("status".into(), Value::Str("failed".into())));
            fields.push(("error".into(), Value::Str(message.clone())));
        }
    }
    fields.push(("seconds".into(), Value::Num(seconds)));
    if let Some(serial) = serial_seconds {
        fields.push(("serial_seconds".into(), Value::Num(serial)));
    }
    Value::Obj(fields)
}

/// One figure's result: the report (or panic message) and its wall-clock
/// seconds as timed inside the fan-out.
type FigureOutcome = (Result<Report, String>, f64);

/// Runs every experiment on a pool of `threads` workers, returning the
/// per-figure outcomes in paper order plus the fan-out's wall clock. Each
/// job is self-contained (figures build their own platforms and write
/// distinct files), so results are byte-identical for any `threads`.
fn run_fanout(
    experiments: &[(&'static str, Runner)],
    quick: bool,
    threads: usize,
    label: &str,
) -> (Vec<FigureOutcome>, f64) {
    let pool = WorkerPool::new(threads);
    eprintln!(
        "[repro] running {} experiments on {} thread(s){label} ...",
        experiments.len(),
        pool.threads()
    );
    let t0 = Instant::now();
    let jobs: Vec<_> = experiments
        .iter()
        .map(|&(id, runner)| {
            move || {
                let t0 = Instant::now();
                let outcome =
                    panic::catch_unwind(AssertUnwindSafe(|| runner(quick))).map_err(|cause| {
                        cause
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| cause.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "experiment panicked".into())
                    });
                let seconds = t0.elapsed().as_secs_f64();
                match &outcome {
                    Ok(_) => eprintln!("[repro] {id} finished in {seconds:.1}s"),
                    Err(message) => {
                        eprintln!("[repro] {id} FAILED after {seconds:.1}s: {message}")
                    }
                }
                (outcome, seconds)
            }
        })
        .collect();
    let outcomes = pool.run(jobs);
    (outcomes, t0.elapsed().as_secs_f64())
}

fn main() {
    let quick = moentwine_bench::quick_from_args();
    let threads = moentwine_bench::threads_from_args();
    let measure = std::env::args().any(|a| a == "--measure-speedup");
    let mut summary = String::from("# MoEntwine reproduction results\n\n");
    if quick {
        summary.push_str("> Generated with `--quick` (reduced iterations).\n\n");
    }
    let start = Instant::now();
    let experiments = moentwine_bench::figs::all();

    // Optional serial baseline (the honest denominator for the speedup the
    // CI gate asserts), then the pooled pass whose outputs are kept.
    let serial_pass = measure.then(|| run_fanout(&experiments, quick, 1, " [serial baseline]"));
    let (outcomes, figures_wall_seconds) = run_fanout(&experiments, quick, threads, "");
    let figures_cpu_seconds: f64 = outcomes.iter().map(|(_, s)| s).sum();
    let (parallel_speedup, serial_wall) = match &serial_pass {
        // Measured: wall over wall, immune to time-slicing inflation.
        Some((_, serial_wall)) => (
            serial_wall / figures_wall_seconds.max(1e-9),
            Some(*serial_wall),
        ),
        // Proxy: pool occupancy (concurrent per-figure seconds sum / wall).
        None => (figures_cpu_seconds / figures_wall_seconds.max(1e-9), None),
    };
    match serial_wall {
        Some(serial_wall) => eprintln!(
            "[repro] figure wall-clock: {serial_wall:.1}s serial -> \
             {figures_wall_seconds:.1}s on {threads} thread(s) \
             (measured speedup {parallel_speedup:.2}x)"
        ),
        None => eprintln!(
            "[repro] figure wall-clock: {figures_cpu_seconds:.1}s summed concurrent \
             -> {figures_wall_seconds:.1}s on {threads} thread(s) \
             (occupancy {parallel_speedup:.2}x; run with --measure-speedup \
             for a true serial-baseline ratio)"
        ),
    }

    // Merge in paper order: print, save, and summarize serially.
    let mut entries: Vec<Value> = Vec::new();
    let mut failures = 0usize;
    for (i, (&(id, _), (outcome, seconds))) in experiments.iter().zip(&outcomes).enumerate() {
        let serial_seconds = serial_pass.as_ref().map(|(serial, _)| serial[i].1);
        let mut save_error = None;
        match outcome {
            Ok(report) => {
                report.print();
                if let Err(e) = report.save("results") {
                    eprintln!("[repro] warning: could not save {id}: {e}");
                    save_error = Some(e.to_string());
                }
                summary.push_str(&report.to_markdown());
                summary.push('\n');
            }
            Err(message) => {
                failures += 1;
                summary.push_str(&format!("## {id} — FAILED\n\n- {message}\n\n"));
            }
        }
        entries.push(manifest_entry(
            id,
            outcome,
            save_error.as_deref(),
            *seconds,
            serial_seconds,
        ));
    }
    summary.push_str(&format!(
        "\n_Total generation time: {:.1}s ({threads} thread(s), figure speedup {:.2}x{})_\n",
        start.elapsed().as_secs_f64(),
        parallel_speedup,
        if measure { " measured" } else { " occupancy" },
    ));
    if let Err(e) =
        fs::create_dir_all("results").and_then(|_| fs::write("results/SUMMARY.md", &summary))
    {
        eprintln!("[repro] warning: could not write summary: {e}");
    }

    // Backend-pricing perf snapshot: the incremental-DES and schedule-cache
    // speedups tracked across PRs (see DESIGN.md §5 and bin/bench_backend).
    // Runs after the pool has drained so the timings are uncontended.
    eprintln!("[repro] measuring backend pricing perf ...");
    let perf = moentwine_bench::perf::measure_backend_perf(quick);
    eprintln!("{}", perf.summary());
    match perf.save("target/figs/bench_backend.json", quick) {
        Ok(()) => eprintln!("[repro] backend perf manifest: target/figs/bench_backend.json"),
        Err(e) => eprintln!("[repro] warning: could not write backend perf manifest: {e}"),
    }

    let mut manifest_fields = vec![
        ("quick".into(), Value::Bool(quick)),
        ("threads".into(), Value::Num(threads as f64)),
        (
            "available_parallelism".into(),
            Value::Num(WorkerPool::available() as f64),
        ),
        (
            "figures_cpu_seconds".into(),
            Value::Num(figures_cpu_seconds),
        ),
        (
            "figures_wall_seconds".into(),
            Value::Num(figures_wall_seconds),
        ),
        ("speedup_measured".into(), Value::Bool(measure)),
        ("parallel_speedup".into(), Value::Num(parallel_speedup)),
    ];
    if let Some(serial_wall) = serial_wall {
        manifest_fields.push((
            "figures_serial_wall_seconds".into(),
            Value::Num(serial_wall),
        ));
    }
    manifest_fields.extend([
        (
            "backend_incremental_speedup".into(),
            Value::Num(perf.incremental_speedup),
        ),
        (
            "backend_cached_speedup".into(),
            Value::Num(perf.cached_speedup),
        ),
        (
            "total_seconds".into(),
            Value::Num(start.elapsed().as_secs_f64()),
        ),
        ("failures".into(), Value::Num(failures as f64)),
        ("figures".into(), Value::Arr(entries)),
    ]);
    let manifest = Value::Obj(manifest_fields);
    match fs::create_dir_all("target/figs")
        .and_then(|_| fs::write("target/figs/summary.json", manifest.pretty()))
    {
        Ok(()) => eprintln!("[repro] machine-readable manifest: target/figs/summary.json"),
        Err(e) => eprintln!("[repro] warning: could not write manifest: {e}"),
    }
    eprintln!(
        "[repro] all experiments done in {:.1}s ({failures} failed); see results/SUMMARY.md",
        start.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
