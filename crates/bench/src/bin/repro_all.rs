//! Runs every table/figure experiment in paper order, saving each report to
//! `results/<id>.json` and writing a combined `results/SUMMARY.md` suitable
//! for pasting into EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p moentwine-bench --bin repro_all [--quick]`

use std::fs;
use std::time::Instant;

fn main() {
    let quick = moentwine_bench::quick_from_args();
    let mut summary = String::from("# MoEntwine reproduction results\n\n");
    if quick {
        summary.push_str("> Generated with `--quick` (reduced iterations).\n\n");
    }
    let start = Instant::now();
    for (id, runner) in moentwine_bench::figs::all() {
        let t0 = Instant::now();
        eprintln!("[repro] running {id} ...");
        let report = runner(quick);
        report.print();
        if let Err(e) = report.save("results") {
            eprintln!("[repro] warning: could not save {id}: {e}");
        }
        summary.push_str(&report.to_markdown());
        summary.push('\n');
        eprintln!("[repro] {id} finished in {:.1}s", t0.elapsed().as_secs_f64());
    }
    summary.push_str(&format!(
        "\n_Total generation time: {:.1}s_\n",
        start.elapsed().as_secs_f64()
    ));
    if let Err(e) = fs::create_dir_all("results")
        .and_then(|_| fs::write("results/SUMMARY.md", &summary))
    {
        eprintln!("[repro] warning: could not write summary: {e}");
    }
    eprintln!(
        "[repro] all experiments done in {:.1}s; see results/SUMMARY.md",
        start.elapsed().as_secs_f64()
    );
}
