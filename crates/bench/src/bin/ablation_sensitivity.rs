//! Regenerates the design-knob sensitivity ablation (see
//! `moentwine_bench::figs::ablation`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::ablation::run);
}
