//! Regenerates the paper's fig12 (see `moentwine_bench::figs::fig12`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig12::run);
}
