//! Regenerates the paper's fig13b (see `moentwine_bench::figs::fig13b`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig13b::run);
}
