//! Regenerates the paper's fig13c (see `moentwine_bench::figs::fig13c`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig13c::run);
}
