//! Regenerates the paper's fig11 (see `moentwine_bench::figs::fig11`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig11::run);
}
