//! Fleet-level serving sweep: replica count × router policy × arrival rate
//! → fleet-aggregate SLO percentiles, goodput, rejects, and cross-replica
//! load-imbalance per point.
//!
//! Prints the report, saves `results/fleet_sweep.json`, writes the
//! machine-readable manifest to `target/figs/fleet_sweep.json`, then
//! **re-reads and schema-validates the emitted manifest**, exiting non-zero
//! if it is malformed (the CI smoke gate).
//!
//! Usage: `cargo run --release -p moentwine-bench --bin fleet_sweep --
//! [--quick] [--threads N]`
//!
//! `--threads` (default: available parallelism) spreads grid points over
//! the hand-rolled worker pool; the manifest is byte-identical for every
//! thread count (CI `cmp`s `--threads 1` against `--threads 4`).

use std::process::ExitCode;

use moentwine_bench::figs::fleet_sweep;
use moentwine_bench::json::Value;

fn main() -> ExitCode {
    let quick = moentwine_bench::quick_from_args();
    let threads = moentwine_bench::threads_from_args();
    let report = fleet_sweep::run_with_threads(quick, threads);
    report.print();
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }

    // Validate the manifest as written to disk, not the in-memory tree: the
    // gate must catch serialization problems too.
    let path = fleet_sweep::MANIFEST_PATH;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("fleet_sweep: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("fleet_sweep: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fleet_sweep::validate(&manifest) {
        eprintln!("fleet_sweep: {path} violates {}: {e}", fleet_sweep::SCHEMA);
        return ExitCode::FAILURE;
    }
    let points = manifest
        .get("points")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    eprintln!(
        "fleet_sweep: {path} OK ({points} points, schema {})",
        fleet_sweep::SCHEMA
    );
    ExitCode::SUCCESS
}
