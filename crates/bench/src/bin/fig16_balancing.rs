//! Regenerates the paper's fig16 (see `moentwine_bench::figs::fig16`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig16::run);
}
