//! Request-level serving sweep: arrival rate × scenario mix × backend →
//! SLO percentiles (p50/p95/p99 TTFT + TPOT), goodput, queue depth, and
//! admission rejects per point.
//!
//! Prints the report, saves `results/serve_sweep.json`, writes the
//! machine-readable manifest to `target/figs/serve_sweep.json`, then
//! **re-reads and schema-validates the emitted manifest**, exiting
//! non-zero if it is malformed (the CI smoke gate).
//!
//! Usage: `cargo run --release -p moentwine-bench --bin serve_sweep --
//! [--quick] [--threads N]`
//!
//! `--threads` (default: available parallelism) spreads grid points over a
//! worker pool; the manifest is byte-identical for every thread count.

use std::process::ExitCode;

use moentwine_bench::figs::serve_sweep;
use moentwine_bench::json::Value;

fn main() -> ExitCode {
    let quick = moentwine_bench::quick_from_args();
    let threads = moentwine_bench::threads_from_args();
    let report = serve_sweep::run_with_threads(quick, threads);
    report.print();
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }

    // Validate the manifest as written to disk, not the in-memory tree: the
    // gate must catch serialization problems too.
    let path = serve_sweep::MANIFEST_PATH;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("serve_sweep: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("serve_sweep: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = serve_sweep::validate(&manifest) {
        eprintln!("serve_sweep: {path} violates {}: {e}", serve_sweep::SCHEMA);
        return ExitCode::FAILURE;
    }
    let points = manifest
        .get("points")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    eprintln!(
        "serve_sweep: {path} OK ({points} points, schema {})",
        serve_sweep::SCHEMA
    );
    ExitCode::SUCCESS
}
