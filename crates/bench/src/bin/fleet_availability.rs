//! Runs the chaos fleet (crash → drain → scale-up → recover under load)
//! and writes the SLO-under-failure figure
//! `target/figs/fleet_availability.json` (schema
//! `moentwine/fleet_availability/v1`): TTFT/goodput degradation and
//! recovery checkpoints plus the final availability accounting.
//!
//! The manifest contains only simulated quantities, so its bytes are
//! deterministic per seed; the same timeline is driven under both
//! round-driven schedulers and the run fails (exit non-zero) if they
//! disagree, if the crash interrupted nothing, or if the manifest violates
//! its schema — the CI chaos-smoke step runs this with `--quick`.
//!
//! Usage: `cargo run --release -p moentwine-bench --bin fleet_availability [--quick]`

use moentwine_bench::perf::availability::{measure_availability, validate, MANIFEST_PATH};

fn main() {
    let quick = moentwine_bench::quick_from_args();
    let fig = measure_availability(quick);
    println!("{}", fig.summary());
    let manifest = fig.to_json(quick);
    if let Err(e) = validate(&manifest) {
        eprintln!("[fleet_availability] FAIL: manifest invalid: {e}");
        std::process::exit(1);
    }
    match fig.save(MANIFEST_PATH, quick) {
        Ok(()) => eprintln!("[fleet_availability] manifest: {MANIFEST_PATH}"),
        Err(e) => eprintln!("[fleet_availability] warning: could not write manifest: {e}"),
    }
    eprintln!(
        "[fleet_availability] OK: {} events applied, {} in-flight interruptions, \
         available fraction {:.4}, schedulers agree",
        fig.final_summary.availability.events_applied,
        fig.final_summary.availability.crash_interruptions,
        fig.final_summary.availability.available_fraction
    );
}
