//! Regenerates the paper's table1 (see `moentwine_bench::figs::table1`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::table1::run);
}
