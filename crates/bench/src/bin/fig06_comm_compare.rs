//! Regenerates the paper's fig06 (see `moentwine_bench::figs::fig06`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig06::run);
}
