//! Measures the fleet schedulers and enforces the perf contract: the
//! event-heap scheduler must reach the same simulated-time horizon at
//! least 2× faster than the lock-step reference on the wide, partially
//! idle quick grid (it is expected far higher on production shapes), with
//! streaming summaries retaining only O(replicas) request records.
//!
//! Writes `target/figs/BENCH_fleet.json` (schema `moentwine/bench_fleet/v1`)
//! so the perf trajectory is tracked across PRs, and exits non-zero when
//! the gate fails — the CI bench-smoke step runs this with `--quick`.
//!
//! Usage: `cargo run --release -p moentwine-bench --bin bench_fleet [--quick]`

use moentwine_bench::perf::fleet::{measure_fleet_perf, validate, MANIFEST_PATH};

/// Minimum accepted `heap_speedup` (CI gate).
const MIN_HEAP_SPEEDUP: f64 = 2.0;

fn main() {
    let quick = moentwine_bench::quick_from_args();
    let perf = measure_fleet_perf(quick);
    println!("{}", perf.summary());
    let manifest = perf.to_json(quick);
    if let Err(e) = validate(&manifest) {
        eprintln!("[bench_fleet] FAIL: manifest invalid: {e}");
        std::process::exit(1);
    }
    match perf.save(MANIFEST_PATH, quick) {
        Ok(()) => eprintln!("[bench_fleet] manifest: {MANIFEST_PATH}"),
        Err(e) => eprintln!("[bench_fleet] warning: could not write manifest: {e}"),
    }
    if perf.heap_speedup < MIN_HEAP_SPEEDUP {
        eprintln!(
            "[bench_fleet] FAIL: event-heap only {:.1}x faster than lock-step to the \
             same horizon (gate: ≥ {MIN_HEAP_SPEEDUP}x)",
            perf.heap_speedup
        );
        std::process::exit(1);
    }
    eprintln!(
        "[bench_fleet] OK: event-heap {:.1}x (gate ≥ {MIN_HEAP_SPEEDUP}x), \
         {} records retained on {} replicas",
        perf.heap_speedup, perf.retained_records_streaming, perf.replicas
    );
}
