//! Multi-tenant workload mix sweep: interactive:batch traffic mix ×
//! arrival rate under bursty arrivals → per-class SLO percentiles and
//! attainment, plus deadline-shed counts.
//!
//! Prints the report, saves `results/workload_mix.json`, writes the
//! machine-readable manifest to `target/figs/workload_mix.json`, then
//! **re-reads and schema-validates the emitted manifest**, exiting non-zero
//! if it is malformed (the CI smoke gate).
//!
//! Usage: `cargo run --release -p moentwine-bench --bin workload_mix --
//! [--quick] [--threads N]`
//!
//! `--threads` (default: available parallelism) spreads grid points over
//! the hand-rolled worker pool; the manifest is byte-identical for every
//! thread count (CI `cmp`s `--threads 1` against `--threads 4`).

use std::process::ExitCode;

use moentwine_bench::figs::workload_mix;
use moentwine_bench::json::Value;

fn main() -> ExitCode {
    let quick = moentwine_bench::quick_from_args();
    let threads = moentwine_bench::threads_from_args();
    let report = workload_mix::run_with_threads(quick, threads);
    report.print();
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }

    // Validate the manifest as written to disk, not the in-memory tree: the
    // gate must catch serialization problems too.
    let path = workload_mix::MANIFEST_PATH;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("workload_mix: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("workload_mix: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = workload_mix::validate(&manifest) {
        eprintln!(
            "workload_mix: {path} violates {}: {e}",
            workload_mix::SCHEMA
        );
        return ExitCode::FAILURE;
    }
    let points = manifest
        .get("points")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    eprintln!(
        "workload_mix: {path} OK ({points} points, schema {})",
        workload_mix::SCHEMA
    );
    ExitCode::SUCCESS
}
