//! Regenerates the paper's fig13a (see `moentwine_bench::figs::fig13a`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig13a::run);
}
