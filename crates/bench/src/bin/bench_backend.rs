//! Measures the congestion-backend hot paths and enforces the perf
//! contract: the memoizing `flow-sim-cached` backend must price the
//! repeated-schedule case at least 5× faster than uncached flow-sim (it is
//! expected ≥ 20× on a full run), and the incremental fair-share DES is
//! reported against the full-recompute reference.
//!
//! Writes `target/figs/bench_backend.json` so the perf trajectory is
//! tracked across PRs, and exits non-zero when the gate fails — the CI
//! bench-smoke step runs this with `--quick`.
//!
//! Usage: `cargo run --release -p moentwine-bench --bin bench_backend [--quick]`

use moentwine_bench::perf::measure_backend_perf;

/// Minimum accepted `cached_speedup` (CI gate).
const MIN_CACHED_SPEEDUP: f64 = 5.0;

fn main() {
    let quick = moentwine_bench::quick_from_args();
    let perf = measure_backend_perf(quick);
    println!("{}", perf.summary());
    match perf.save("target/figs/bench_backend.json", quick) {
        Ok(()) => eprintln!("[bench_backend] manifest: target/figs/bench_backend.json"),
        Err(e) => eprintln!("[bench_backend] warning: could not write manifest: {e}"),
    }
    if perf.cached_speedup < MIN_CACHED_SPEEDUP {
        eprintln!(
            "[bench_backend] FAIL: cached backend only {:.1}x faster than uncached \
             flow-sim on the repeated-schedule case (gate: ≥ {MIN_CACHED_SPEEDUP}x)",
            perf.cached_speedup
        );
        std::process::exit(1);
    }
    eprintln!(
        "[bench_backend] OK: cached {:.1}x (gate ≥ {MIN_CACHED_SPEEDUP}x), incremental {:.1}x",
        perf.cached_speedup, perf.incremental_speedup
    );
}
