//! Regenerates the paper's fig15 (see `moentwine_bench::figs::fig15`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig15::run);
}
