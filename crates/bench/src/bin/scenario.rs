//! Runs declarative scenario files (schema `moentwine/scenario/v1`).
//!
//! ```sh
//! cargo run --release -p moentwine-bench --bin scenario -- \
//!     examples/scenarios/fleet_p2c.json [more.json ...] [--quick] [--threads N]
//! ```
//!
//! Each file is parsed, sweep-expanded, and executed; the run manifest
//! (schema `moentwine/scenario_run/v1`, byte-identical across runs and
//! `--threads` settings) lands in `target/figs/scenario/<name>.json`.
//! Exits non-zero on the first unreadable file, invalid spec, failed run,
//! or schema-invalid manifest.

use std::path::PathBuf;

use moentwine_bench::{quick_from_args, scenario_run, threads_from_args};

fn main() {
    let quick = quick_from_args();
    let threads = threads_from_args();
    let files: Vec<PathBuf> = std::env::args()
        .skip(1)
        .scan(false, |skip_next, arg| {
            if *skip_next {
                *skip_next = false;
                return Some(None);
            }
            if arg == "--threads" {
                *skip_next = true;
                return Some(None);
            }
            if arg == "--quick" || arg.starts_with("--threads=") {
                return Some(None);
            }
            Some(Some(PathBuf::from(arg)))
        })
        .flatten()
        .collect();
    if files.is_empty() {
        eprintln!(
            "usage: scenario <spec.json> [more.json ...] [--quick] [--threads N]\n\
             example specs live under examples/scenarios/"
        );
        std::process::exit(2);
    }

    // Manifest paths derive from scenario names (sanitized); two files
    // whose names collide would silently overwrite each other's output.
    // Detect that up front — before burning any run — by parsing every
    // file once (parse failures are reported by run_file below).
    let mut stems: std::collections::HashMap<std::path::PathBuf, &PathBuf> =
        std::collections::HashMap::new();
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        let Ok(spec) = moentwine_spec::ScenarioSpec::from_json_text(&text) else {
            continue;
        };
        let manifest = scenario_run::manifest_path(&spec.name);
        if let Some(previous) = stems.insert(manifest.clone(), file) {
            eprintln!(
                "error: {} and {} would both write {} (scenario names collide \
                 after sanitizing); rename one scenario",
                previous.display(),
                file.display(),
                manifest.display()
            );
            std::process::exit(2);
        }
    }

    // Remove stale manifests for the requested scenarios before running:
    // a failed run must not leave an old manifest behind for a later
    // byte-compare (CI or local) to silently diff against. This replaces
    // the `rm -rf target/figs/scenario` workaround the CI smoke step used
    // to carry, and scopes the cleanup to the requested specs so parallel
    // runs over disjoint files don't clobber each other.
    for manifest in stems.keys() {
        match std::fs::remove_file(manifest) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => {
                eprintln!(
                    "warning: could not remove stale {}: {e}",
                    manifest.display()
                );
            }
        }
    }

    let mut failed = false;
    for file in &files {
        match scenario_run::run_file(file, quick, threads) {
            Ok((report, path)) => {
                report.print();
                if let Err(e) = report.save("results") {
                    eprintln!("warning: could not save report: {e}");
                }
                println!("wrote {}", path.display());
            }
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
