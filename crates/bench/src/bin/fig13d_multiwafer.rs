//! Regenerates the paper's fig13d (see `moentwine_bench::figs::fig13d`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig13d::run);
}
