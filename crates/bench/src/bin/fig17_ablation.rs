//! Regenerates the paper's fig17 (see `moentwine_bench::figs::fig17`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig17::run);
}
