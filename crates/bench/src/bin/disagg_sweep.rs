//! Colocated vs. disaggregated prefill/decode sweep: matched arrival rates
//! → TTFT/TPOT percentiles, priced KV-transfer accounting, and modeled
//! hardware cost per point.
//!
//! Prints the report, saves `results/disagg_sweep.json`, writes the
//! machine-readable manifest to `target/figs/disagg_sweep.json`, then
//! **re-reads and schema-validates the emitted manifest**, exiting non-zero
//! if it is malformed or if any disaggregated point carries no priced KV
//! transfer (the CI smoke gate).
//!
//! Usage: `cargo run --release -p moentwine-bench --bin disagg_sweep --
//! [--quick] [--threads N]`
//!
//! `--threads` (default: available parallelism) spreads grid points over
//! the hand-rolled worker pool; the manifest is byte-identical for every
//! thread count (CI `cmp`s `--threads 1` against `--threads 4`) and every
//! point asserts lock-step == event-heap internally.

use std::process::ExitCode;

use moentwine_bench::figs::disagg_sweep;
use moentwine_bench::json::Value;

fn main() -> ExitCode {
    let quick = moentwine_bench::quick_from_args();
    let threads = moentwine_bench::threads_from_args();
    let report = disagg_sweep::run_with_threads(quick, threads);
    report.print();
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }

    // Validate the manifest as written to disk, not the in-memory tree: the
    // gate must catch serialization problems too.
    let path = disagg_sweep::MANIFEST_PATH;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("disagg_sweep: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("disagg_sweep: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = disagg_sweep::validate(&manifest) {
        eprintln!(
            "disagg_sweep: {path} violates {}: {e}",
            disagg_sweep::SCHEMA
        );
        return ExitCode::FAILURE;
    }
    let points = manifest
        .get("points")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    eprintln!(
        "disagg_sweep: {path} OK ({points} points, schema {})",
        disagg_sweep::SCHEMA
    );
    ExitCode::SUCCESS
}
