//! Regenerates the paper's fig01 (see `moentwine_bench::figs::fig01`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig01::run);
}
