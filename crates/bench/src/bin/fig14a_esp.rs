//! Regenerates the paper's fig14a (see `moentwine_bench::figs::fig14a`).

fn main() {
    moentwine_bench::run_binary(moentwine_bench::figs::fig14a::run);
}
