//! Router policy comparison: the four snapshot policies vs the EWMA
//! feedback policies vs speculative dispatch, under a heterogeneous
//! bursty fleet and a disaggregated prefill/decode fleet.
//!
//! Prints the report, saves `results/router_compare.json`, writes the
//! machine-readable manifest to `target/figs/router_compare.json`, then
//! **re-reads and schema-validates the emitted manifest** — including the
//! headline claim that an adaptive policy beats the best snapshot policy
//! on bursty p99 TTFT — exiting non-zero on any violation (the CI smoke
//! gate).
//!
//! Usage: `cargo run --release -p moentwine-bench --bin router_compare --
//! [--quick] [--threads N]`
//!
//! `--threads` (default: available parallelism) spreads grid points over
//! the hand-rolled worker pool; the manifest is byte-identical for every
//! thread count (CI `cmp`s `--threads 1` against `--threads 4`).

use std::process::ExitCode;

use moentwine_bench::figs::router_compare;
use moentwine_bench::json::Value;

fn main() -> ExitCode {
    let quick = moentwine_bench::quick_from_args();
    let threads = moentwine_bench::threads_from_args();
    let report = router_compare::run_with_threads(quick, threads);
    report.print();
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }

    // Validate the manifest as written to disk, not the in-memory tree:
    // the gate must catch serialization problems too.
    let path = router_compare::MANIFEST_PATH;
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("router_compare: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let manifest = match Value::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("router_compare: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = router_compare::validate(&manifest) {
        eprintln!(
            "router_compare: {path} violates {}: {e}",
            router_compare::SCHEMA
        );
        return ExitCode::FAILURE;
    }
    let points = manifest
        .get("points")
        .and_then(Value::as_array)
        .map_or(0, <[Value]>::len);
    eprintln!(
        "router_compare: {path} OK ({points} points, schema {})",
        router_compare::SCHEMA
    );
    ExitCode::SUCCESS
}
