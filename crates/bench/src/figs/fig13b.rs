//! Fig. 13(b): communication latency across the five evaluation models.

use moe_model::ModelConfig;
use moentwine_core::comm::ClusterLayout;

use crate::platforms::{comm_latency, wsc_plan, Fidelity, Platform, WscMapping};
use crate::report::fmt_improvement;
use crate::Report;

/// Regenerates Fig. 13(b): 6×6 WSC vs 4-node DGX, 256 tokens/group,
/// balanced gating; GPU / WSC / WSC+ER with AR and A2A split out.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new(
        "fig13b",
        "Relative communication latency across models (6x6 WSC vs 4-node DGX)",
    )
    .columns([
        "Model",
        "GPU AR",
        "GPU A2A",
        "WSC AR",
        "WSC A2A",
        "WSC+ER AR",
        "WSC+ER A2A",
        "WSC vs GPU",
        "ER vs WSC",
    ]);

    let wsc = Platform::wsc(6);
    let dgx = Platform::dgx(4);
    let gpu_layout = ClusterLayout::new(&dgx.topo, 8);
    let tokens = 256;
    let fidelity = if quick {
        Fidelity::Analytic
    } else {
        Fidelity::Des
    };

    let models = ModelConfig::evaluation_suite();
    let mut wsc_gains = Vec::new();
    let mut er_gains = Vec::new();
    for model in &models {
        let base_plan = wsc_plan(&wsc, 4, WscMapping::Baseline);
        let er_plan = wsc_plan(&wsc, 4, WscMapping::Er);
        let gpu = comm_latency(&dgx, &gpu_layout, model, tokens, Fidelity::Analytic);
        let base = comm_latency(&wsc, &base_plan, model, tokens, fidelity);
        let er = comm_latency(&wsc, &er_plan, model, tokens, fidelity);
        let norm = gpu.total();
        wsc_gains.push((norm - base.total()) / norm);
        er_gains.push((base.total() - er.total()) / base.total());
        report.row([
            model.name.clone(),
            format!("{:.3}", gpu.all_reduce / norm),
            format!("{:.3}", gpu.all_to_all / norm),
            format!("{:.3}", base.all_reduce / norm),
            format!("{:.3}", base.all_to_all / norm),
            format!("{:.3}", er.all_reduce / norm),
            format!("{:.3}", er.all_to_all / norm),
            fmt_improvement(norm, base.total()),
            fmt_improvement(base.total(), er.total()),
        ]);
    }
    let avg_wsc = wsc_gains.iter().sum::<f64>() / wsc_gains.len() as f64 * 100.0;
    report.note(format!(
        "Paper shape: pure WSC beats DGX by ~56% on average (measured {avg_wsc:.0}%); \
         ER-Mapping adds further A2A reduction for the many-expert models."
    ));
    report.note(format!(
        "Mixtral activates only 2 experts, so its A2A is small and its baseline \
         all-reduce share large — naive ER-Mapping may not help (paper: −15%). \
         Measured ER gain on Mixtral: {:.0}%.",
        er_gains[4] * 100.0
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn wsc_beats_gpu_on_every_model() {
        let r = super::run(true);
        for row in &r.rows {
            assert!(row[7].starts_with('+'), "{row:?}");
        }
    }

    #[test]
    fn er_helps_a2a_heavy_models_most() {
        let r = super::run(true);
        let gain = |row: &Vec<String>| row[8].trim_end_matches('%').parse::<f64>().unwrap();
        // DeepSeek-V3 (8/256 experts) gains more from ER than Mixtral (2/8).
        assert!(gain(&r.rows[0]) > gain(&r.rows[4]), "{r:?}");
    }
}
