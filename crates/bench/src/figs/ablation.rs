//! Ablation sweeps over MoEntwine's own design knobs (the design choices
//! DESIGN.md calls out): trigger `α`, shadow slots per device, pipeline
//! micro-batch depth, and the cold-link bandwidth available to non-invasive
//! migration.

use moe_model::{InferencePhase, ModelConfig};
use moe_workload::WorkloadMix;
use moentwine_core::balancer::BalancerKind;
use moentwine_core::engine::{BatchMode, EngineConfig, InferenceEngine, RunSummary};

use crate::platforms::{wsc_plan, Platform, WscMapping};
use crate::Report;

fn run_with(
    platform: &Platform,
    plan: &moentwine_core::MappingPlan,
    mutate: impl FnOnce(&mut EngineConfig),
    iters: usize,
) -> RunSummary {
    let mut config = EngineConfig::new(ModelConfig::qwen3_235b())
        .with_workload(WorkloadMix::mixed(40.0))
        .with_balancer(BalancerKind::NonInvasive)
        .with_batch(BatchMode::Fixed {
            tokens_per_group: 768,
            avg_context: 4096.0,
            phase: InferencePhase::Decode,
        })
        .with_seed(13);
    config.comm_layer_stride = 8;
    config.slots_per_device = 2;
    mutate(&mut config);
    let mut engine = InferenceEngine::new(&platform.topo, &platform.table, plan, config);
    engine.run(iters)
}

/// Regenerates the sensitivity ablation.
pub fn run(quick: bool) -> Report {
    let iters = if quick { 20 } else { 60 };
    let platform = Platform::wsc(4);
    let plan = wsc_plan(&platform, 4, WscMapping::Er);
    let mut report = Report::new(
        "ablation",
        "Sensitivity of the NI-Balancer and overlap model to design knobs",
    )
    .columns([
        "Knob",
        "Value",
        "Load ratio",
        "Migrations",
        "Mean iter time",
    ]);

    for alpha in [0.05, 0.25, 1.0, 4.0] {
        let s = run_with(
            &platform,
            &plan,
            |c| c.trigger_alpha_per_layer = alpha,
            iters,
        );
        report.row([
            "trigger alpha/layer".to_string(),
            format!("{alpha}"),
            format!("{:.2}", s.mean_load_ratio),
            s.migrations_completed.to_string(),
            crate::report::fmt_time(s.mean_iteration_time),
        ]);
    }
    for slots in [0usize, 1, 2, 4] {
        let s = run_with(&platform, &plan, |c| c.slots_per_device = slots, iters);
        report.row([
            "shadow slots/device".to_string(),
            slots.to_string(),
            format!("{:.2}", s.mean_load_ratio),
            s.migrations_completed.to_string(),
            crate::report::fmt_time(s.mean_iteration_time),
        ]);
    }
    for micro in [1usize, 2, 4, 8] {
        let s = run_with(&platform, &plan, |c| c.pipeline_microbatches = micro, iters);
        report.row([
            "pipeline micro-batches".to_string(),
            micro.to_string(),
            format!("{:.2}", s.mean_load_ratio),
            s.migrations_completed.to_string(),
            crate::report::fmt_time(s.mean_iteration_time),
        ]);
    }
    for bw in [1.0e11, 1.0e12, 4.0e12] {
        let s = run_with(&platform, &plan, |c| c.cold_bandwidth = bw, iters);
        report.row([
            "cold-link bandwidth".to_string(),
            format!("{:.0} GB/s", bw / 1e9),
            format!("{:.2}", s.mean_load_ratio),
            s.migrations_completed.to_string(),
            crate::report::fmt_time(s.mean_iteration_time),
        ]);
    }
    report.note(
        "Expected: load ratio is insensitive to alpha once it is low enough \
         to fire on real imbalance; zero shadow slots disables balancing \
         entirely; deeper pipelining shrinks the fill penalty with \
         diminishing returns; migration convergence slows as cold-link \
         bandwidth drops but never stalls iterations.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn zero_slots_disable_balancing() {
        let r = super::run(true);
        let slot_rows: Vec<&Vec<String>> = r
            .rows
            .iter()
            .filter(|row| row[0] == "shadow slots/device")
            .collect();
        let migrations = |row: &Vec<String>| row[3].parse::<u64>().unwrap();
        assert_eq!(
            migrations(slot_rows[0]),
            0,
            "0 slots must mean 0 migrations"
        );
        assert!(migrations(slot_rows[2]) > 0);
        // More slots → at least as good a load ratio.
        let ratio = |row: &Vec<String>| row[2].parse::<f64>().unwrap();
        assert!(ratio(slot_rows[2]) <= ratio(slot_rows[0]) + 0.05);
    }

    #[test]
    fn deeper_pipeline_never_slower() {
        let r = super::run(true);
        let rows: Vec<&Vec<String>> = r
            .rows
            .iter()
            .filter(|row| row[0] == "pipeline micro-batches")
            .collect();
        // Iteration times weakly decrease with micro-batch depth.
        let t = |row: &Vec<String>| {
            let s = &row[4];
            let v: f64 = s
                .trim_end_matches(" ms")
                .trim_end_matches(" µs")
                .trim_end_matches(" s")
                .parse()
                .unwrap();
            if s.ends_with("µs") {
                v * 1e-6
            } else if s.ends_with("ms") {
                v * 1e-3
            } else {
                v
            }
        };
        assert!(t(rows[3]) <= t(rows[0]) * 1.01);
    }
}
