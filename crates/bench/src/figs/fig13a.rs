//! Fig. 13(a): WSC-over-DGX communication improvement vs token count.

use moe_model::ModelConfig;
use moentwine_core::comm::ClusterLayout;

use crate::platforms::{comm_latency, wsc_plan, Fidelity, Platform, WscMapping};
use crate::report::fmt_improvement;
use crate::Report;

/// Regenerates Fig. 13(a): Qwen3; 6×6 WSC vs 32 GPUs and 8×8 WSC vs
/// 64 GPUs; improvement of WSC and WSC+ER over DGX as tokens grow.
pub fn run(quick: bool) -> Report {
    let model = ModelConfig::qwen3_235b();
    let tokens: Vec<u32> = if quick {
        vec![16, 256, 4096]
    } else {
        vec![
            16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768,
        ]
    };
    let mut report = Report::new(
        "fig13a",
        "WSC vs DGX communication improvement across token counts",
    )
    .columns([
        "Pair",
        "Tokens/group",
        "DGX total",
        "WSC total",
        "WSC improvement",
        "WSC+ER improvement",
    ]);

    let pairs: Vec<(&str, Platform, Platform)> = vec![
        ("6x6 vs 32 GPUs", Platform::wsc(6), Platform::dgx(4)),
        ("8x8 vs 64 GPUs", Platform::wsc(8), Platform::dgx(8)),
    ];
    let mut big_batch_improvements = Vec::new();
    for (name, wsc, dgx) in &pairs {
        let base_plan = wsc_plan(wsc, 4, WscMapping::Baseline);
        let er_plan = wsc_plan(wsc, 4, WscMapping::Er);
        let gpu_layout = ClusterLayout::new(&dgx.topo, 8);
        for &t in &tokens {
            let gpu = comm_latency(dgx, &gpu_layout, &model, t, Fidelity::Analytic);
            let base = comm_latency(wsc, &base_plan, &model, t, Fidelity::Analytic);
            let er = comm_latency(wsc, &er_plan, &model, t, Fidelity::Analytic);
            if t >= 256 {
                big_batch_improvements.push((gpu.total() - base.total()) / gpu.total());
            }
            report.row([
                name.to_string(),
                t.to_string(),
                crate::report::fmt_time(gpu.total()),
                crate::report::fmt_time(base.total()),
                fmt_improvement(gpu.total(), base.total()),
                fmt_improvement(gpu.total(), er.total()),
            ]);
        }
    }
    let avg =
        big_batch_improvements.iter().sum::<f64>() / big_batch_improvements.len().max(1) as f64;
    report.note(format!(
        "Paper shape: beyond 256 tokens/group WSC consistently beats DGX \
         (paper: 54%, ER extends to 73%); measured average improvement beyond \
         256 tokens: {:.0}%.",
        avg * 100.0
    ));
    report.note(
        "At tiny token counts link latency dominates and the advantage \
         shrinks, as in the paper's left end of Fig. 13(a).",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn wsc_wins_at_large_batches() {
        let r = super::run(true);
        // Last row of each pair = 4096 tokens: improvement must be positive.
        for row in r.rows.iter().filter(|row| row[1] == "4096") {
            assert!(row[4].starts_with('+'), "{row:?}");
            assert!(row[5].starts_with('+'), "{row:?}");
        }
    }
}
