//! Fig. 14(b): justifying the retained all-gather.

use moe_model::ModelConfig;

use crate::platforms::{comm_latency, wsc_plan, Fidelity, Platform, WscMapping};
use crate::report::{fmt_improvement, fmt_time};
use crate::Report;

/// Regenerates Fig. 14(b): with vs without the attention all-gather, for
/// the large-expert models on 6×6 (and 8×8) WSCs under ER-Mapping.
pub fn run(quick: bool) -> Report {
    let mut report = Report::new("fig14b", "Retaining the all-gather (AG)").columns([
        "Model",
        "Scale",
        "AR w/o AG",
        "A2A w/o AG",
        "AR with AG",
        "A2A with AG",
        "Total improvement from AG",
    ]);

    let scales: Vec<(&str, u16)> = if quick {
        vec![("6x6", 6)]
    } else {
        vec![("6x6", 6), ("8x8", 8)]
    };
    let mut gains = Vec::new();
    for model in [ModelConfig::dbrx(), ModelConfig::mixtral_8x22b()] {
        for (name, n) in &scales {
            let platform = Platform::wsc(*n);
            let with_ag = wsc_plan(&platform, 4, WscMapping::Er);
            let without_ag = with_ag.clone().without_all_gather();
            let tokens = 256;
            let with = comm_latency(&platform, &with_ag, &model, tokens, Fidelity::Analytic);
            let without = comm_latency(&platform, &without_ag, &model, tokens, Fidelity::Analytic);
            gains.push((without.total() - with.total()) / without.total());
            report.row([
                model.name.clone(),
                name.to_string(),
                fmt_time(without.all_reduce),
                fmt_time(without.all_to_all),
                fmt_time(with.all_reduce),
                fmt_time(with.all_to_all),
                fmt_improvement(without.total(), with.total()),
            ]);
        }
    }
    let avg = gains.iter().sum::<f64>() / gains.len() as f64 * 100.0;
    report.note(format!(
        "Paper shape: retaining AG doubles the (cheap) all-reduce but shortens \
         token-fetch paths and multiplies source options, cutting the \
         (expensive) all-to-all — net +17% average in the paper; measured \
         {avg:.0}% average."
    ));
    report.note(
        "Known deviation: our with-AG model fetches from the single nearest \
         FTD member and does not exploit AG's multi-source load spreading, so \
         the 2-active-expert Mixtral case on 6x6 comes out roughly neutral \
         instead of clearly positive.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn ag_pays_off_for_dbrx_and_on_average() {
        let r = super::run(false);
        let gains: Vec<f64> = r
            .rows
            .iter()
            .map(|row| row[6].trim_end_matches('%').parse::<f64>().unwrap())
            .collect();
        // DBRX (4 active experts) must benefit everywhere.
        for (row, gain) in r.rows.iter().zip(&gains) {
            if row[0] == "DBRX" {
                assert!(*gain > 0.0, "{row:?}");
            }
            // Nothing regresses badly (paper: AG never catastrophic).
            assert!(*gain > -10.0, "{row:?}");
        }
        let avg = gains.iter().sum::<f64>() / gains.len() as f64;
        assert!(avg > 5.0, "average AG gain {avg}% too low");
    }
}
