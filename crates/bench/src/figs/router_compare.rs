//! Router policy comparison: snapshot vs feedback vs speculative dispatch.
//!
//! Sweeps every registered [`RouterPolicy`] — the four snapshot policies
//! plus the EWMA feedback policies (`ewma-ttft`, `least-expected-ttft`)
//! and speculative dispatch (`speculative:k=2`) — under two scenarios
//! where the open routing subsystem (DESIGN.md §14) should earn its keep:
//!
//! * **bursty**: a four-replica colocated fleet with *heterogeneous*
//!   congestion backends (even replicas analytic, odd replicas
//!   flow-sim-cached) under a quiet/burst arrival cycle and a
//!   length-varied Privacy+Coding blend. Snapshot policies see queue
//!   depths, not replica speed or expected service time; feedback
//!   policies learn it, and speculative dispatch hedges the tail by
//!   racing the two least-loaded replicas and cancelling the loser at
//!   first token.
//! * **disagg**: two wafer prefill pods feeding two DGX decode replicas
//!   across the priced KV hand-off, checking every policy survives the
//!   disaggregated dispatch path.
//!
//! Besides the usual [`Report`], the sweep emits a machine-readable
//! manifest to `target/figs/router_compare.json` (schema
//! `moentwine/router_compare/v1`). [`validate`] checks the schema *and*
//! the headline claim: in at least one bursty configuration, the best
//! feedback/speculative policy beats the best snapshot policy on p99
//! TTFT. Everything is seeded and grid points merge by index, so the
//! manifest is byte-identical across runs *and* `--threads` settings.

use std::fs;

use moe_model::ModelConfig;
use moe_workload::{RouterPolicy, Scenario, SchedulingMode};
use moentwine_core::comm::ClusterLayout;
use moentwine_core::engine::{EngineConfig, SummaryMode};
use moentwine_core::fleet::{Fleet, FleetSummary, PlatformRefs, ReplicaRole};
use moentwine_spec::{
    ArrivalSourceSpec, BatchSpec, EngineSpec, FleetSpec, ModelSpec, ServingSpec, WorkloadSpec,
};
use wsc_sim::CongestionBackend;

use crate::json::Value;
use crate::platforms::Platform;
use crate::report::fmt_time;
use crate::Report;

/// Schema identifier embedded in (and required of) the manifest.
pub const SCHEMA: &str = "moentwine/router_compare/v1";

/// Manifest output path, relative to the working directory.
pub const MANIFEST_PATH: &str = "target/figs/router_compare.json";

/// Master seed of the sweep (replica streams are split from it).
const SEED: u64 = 223;

/// The two scenario shapes on the workload axis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Shape {
    /// Heterogeneous four-replica colocated fleet under bursty arrivals.
    Bursty,
    /// Two wafer prefill pods + two DGX decode replicas.
    Disagg,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Bursty => "bursty",
            Shape::Disagg => "disagg",
        }
    }
}

/// The per-replica engine template: hybrid continuous batching, a thin KV
/// share, a length-varied Privacy+Coding blend, and a quiet/burst arrival
/// cycle (4× bursts a quarter of the time) so tails come from queueing
/// spikes, not steady state.
fn engine_template() -> EngineConfig {
    let model: ModelConfig = ModelSpec::preset("tiny").resolve().expect("tiny preset");
    // The tiny-model fleet simulates ~1.5 ms per 400 rounds, so the burst
    // cycle is scaled to fit several cycles into every horizon.
    let workload = WorkloadSpec::new(ArrivalSourceSpec::Burst {
        period: 2.0e-4,
        burst_duration: 5.0e-5,
        quiet_factor: 0.5,
        burst_factor: 4.0,
    });
    EngineSpec::default()
        .with_seed(SEED)
        .with_workload(moe_workload::WorkloadMix::Blend(vec![
            (Scenario::Privacy, 4.0),
            (Scenario::Coding, 1.0),
        ]))
        .with_batch(BatchSpec::Serving(
            ServingSpec {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 0.0,
                iteration_period: 0.02,
                summary: SummaryMode::Exact,
                workload: None,
            }
            .with_workload(workload),
        ))
        .with_kv_hbm_fraction(1.0e-3)
        .engine_config(model)
        .expect("valid router_compare template")
}

/// The platforms every sweep point runs against, built once per sweep:
/// the wafer mesh (all bursty replicas; the disagg prefill tier) and the
/// DGX cluster (the disagg decode tier).
struct Platforms {
    wsc: Platform,
    plan: moentwine_core::MappingPlan,
    dgx: Platform,
    dgx_layout: ClusterLayout,
}

impl Platforms {
    fn build() -> Self {
        let wsc = Platform::wsc(4);
        let plan = crate::platforms::wsc_plan(&wsc, 4, crate::platforms::WscMapping::Er);
        let dgx = Platform::dgx(1);
        let dgx_layout = ClusterLayout::new(&dgx.topo, 8);
        Platforms {
            wsc,
            plan,
            dgx,
            dgx_layout,
        }
    }
}

/// Runs one sweep point: a fleet of `shape` dispatched by `policy` at
/// `rate`, returning the summary plus the replica count used.
fn run_point(
    platforms: &Platforms,
    shape: Shape,
    policy: RouterPolicy,
    rate: f64,
    rounds: usize,
) -> (usize, FleetSummary) {
    let Platforms {
        wsc,
        plan,
        dgx,
        dgx_layout,
    } = platforms;
    let mut fleet = match shape {
        Shape::Bursty => {
            // Odd replicas price iterations through the flow-level DES,
            // so replica speeds genuinely differ — invisible to snapshot
            // policies, learnable through latency feedback. Four replicas
            // with k=2 races give speculative dispatch real queue
            // diversity to hedge across.
            let config = FleetSpec::new(4, policy, rate)
                .with_backend_overrides(vec![
                    CongestionBackend::Analytic,
                    CongestionBackend::FlowSimCached,
                ])
                .fleet_config(engine_template());
            Fleet::new(&wsc.topo, &wsc.table, plan, config)
        }
        Shape::Disagg => {
            let config = FleetSpec::new(4, policy, rate)
                .with_roles(vec![
                    ReplicaRole::Prefill,
                    ReplicaRole::Prefill,
                    ReplicaRole::Decode,
                    ReplicaRole::Decode,
                ])
                .fleet_config(engine_template());
            let prefill = PlatformRefs {
                topo: &wsc.topo,
                table: &wsc.table,
                layout: plan,
            };
            let decode = PlatformRefs {
                topo: &dgx.topo,
                table: &dgx.table,
                layout: dgx_layout,
            };
            Fleet::try_new_disaggregated(prefill, Some(decode), config)
                .expect("valid disaggregated shape")
        }
    };
    fleet.run(rounds);
    let replicas = fleet.engines().len();
    (replicas, fleet.summary())
}

fn point_json(
    shape: Shape,
    policy: RouterPolicy,
    rate: f64,
    replicas: usize,
    s: &FleetSummary,
) -> Value {
    let agg = &s.aggregate;
    Value::Obj(vec![
        ("workload".into(), Value::Str(shape.name().into())),
        ("policy".into(), Value::Str(policy.name())),
        ("replicas".into(), Value::Num(replicas as f64)),
        ("arrival_rate".into(), Value::Num(rate)),
        ("ttft_p50".into(), Value::Num(agg.ttft_p50)),
        ("ttft_p95".into(), Value::Num(agg.ttft_p95)),
        ("ttft_p99".into(), Value::Num(agg.ttft_p99)),
        ("tpot_p50".into(), Value::Num(agg.tpot_p50)),
        ("tpot_p95".into(), Value::Num(agg.tpot_p95)),
        ("tpot_p99".into(), Value::Num(agg.tpot_p99)),
        ("e2e_p50".into(), Value::Num(agg.e2e_p50)),
        ("e2e_p99".into(), Value::Num(agg.e2e_p99)),
        ("goodput_rps".into(), Value::Num(agg.goodput_rps)),
        (
            "goodput_tokens_per_s".into(),
            Value::Num(agg.goodput_tokens_per_s),
        ),
        ("completed".into(), Value::Num(agg.completed as f64)),
        (
            "admission_rejects".into(),
            Value::Num(agg.admission_rejects as f64),
        ),
        ("shed".into(), Value::Num(agg.shed as f64)),
        (
            "router_discarded".into(),
            Value::Num((s.router_discarded[0] + s.router_discarded[1]) as f64),
        ),
        (
            "spec_groups_dispatched".into(),
            Value::Num(s.speculative.groups_dispatched as f64),
        ),
        (
            "spec_cancelled_copies".into(),
            Value::Num(s.speculative.cancelled_copies as f64),
        ),
        ("routing_imbalance".into(), Value::Num(s.routing_imbalance)),
        (
            "completion_imbalance".into(),
            Value::Num(s.completion_imbalance),
        ),
        ("sim_seconds".into(), Value::Num(s.sim_seconds)),
    ])
}

/// Builds the sweep manifest over explicit axes on a `threads`-wide worker
/// pool. Results merge by grid index, so the manifest is byte-identical
/// for every thread count.
fn sweep_manifest(
    quick: bool,
    bursty_rates: &[f64],
    disagg_rates: &[f64],
    policies: &[RouterPolicy],
    rounds: usize,
    threads: usize,
    report: &mut Report,
) -> Value {
    let platforms = Platforms::build();
    let mut grid: Vec<(Shape, RouterPolicy, f64)> = Vec::new();
    for (shape, rates) in [(Shape::Bursty, bursty_rates), (Shape::Disagg, disagg_rates)] {
        for &rate in rates {
            for &policy in policies {
                grid.push((shape, policy, rate));
            }
        }
    }
    let pool = crate::perf::pool::WorkerPool::new(threads);
    let jobs: Vec<_> = grid
        .iter()
        .map(|&(shape, policy, rate)| {
            let platforms = &platforms;
            move || run_point(platforms, shape, policy, rate, rounds)
        })
        .collect();
    let summaries = pool.run(jobs);
    let mut points: Vec<Value> = Vec::new();
    for (&(shape, policy, rate), (replicas, s)) in grid.iter().zip(&summaries) {
        let agg = &s.aggregate;
        report.row([
            shape.name().into(),
            policy.name(),
            format!("{rate}"),
            fmt_time(agg.ttft_p50),
            fmt_time(agg.ttft_p99),
            fmt_time(agg.e2e_p99),
            format!("{:.1}", agg.goodput_rps),
            format!("{}", agg.completed),
            format!("{}", s.speculative.cancelled_copies),
            format!("{}", s.router_discarded[0] + s.router_discarded[1]),
        ]);
        points.push(point_json(shape, policy, rate, *replicas, s));
    }
    Value::Obj(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        ("quick".into(), Value::Bool(quick)),
        ("seed".into(), Value::Num(SEED as f64)),
        ("rounds".into(), Value::Num(rounds as f64)),
        ("points".into(), Value::Arr(points)),
    ])
}

/// Whether a (parsed) policy routes from queue snapshots alone — the
/// baseline set the adaptive policies must beat.
fn is_snapshot(policy: RouterPolicy) -> bool {
    RouterPolicy::all().contains(&policy)
}

/// Validates a manifest against the `moentwine/router_compare/v1` schema:
/// schema tag, run parameters, per-point fields (every policy spelling
/// must parse back through the registry, speculative accounting must be
/// present exactly on speculative points), and the headline claim — in at
/// least one bursty configuration, the best feedback or speculative
/// policy beats the best snapshot policy on p99 TTFT.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, SCHEMA)?;
    v::require_run_params(manifest, &["seed", "rounds"])?;
    // (rate, best snapshot p99, best adaptive p99) per bursty rate.
    let mut bursty: Vec<(f64, f64, f64)> = Vec::new();
    for (i, point) in v::require_points(manifest)?.iter().enumerate() {
        let policy: RouterPolicy = v::point_str(point, i, "policy")?
            .parse()
            .map_err(|e| format!("point {i}: {e}"))?;
        let workload = v::point_str(point, i, "workload")?;
        if workload != "bursty" && workload != "disagg" {
            return Err(format!("point {i}: unknown workload {workload:?}"));
        }
        if v::point_num(point, i, "replicas")? < 1.0 {
            return Err(format!("point {i}: replicas < 1"));
        }
        v::check_point_common(
            point,
            i,
            &[
                "arrival_rate",
                "completed",
                "admission_rejects",
                "shed",
                "router_discarded",
                "sim_seconds",
            ],
        )?;
        let groups = v::point_num(point, i, "spec_groups_dispatched")?;
        let cancelled = v::point_num(point, i, "spec_cancelled_copies")?;
        let speculative = matches!(policy, RouterPolicy::Speculative { .. });
        if speculative && groups <= 0.0 {
            return Err(format!("point {i}: speculative point dispatched no races"));
        }
        if !speculative && (groups != 0.0 || cancelled != 0.0) {
            return Err(format!(
                "point {i}: unicast policy {} reports speculative activity",
                policy.name()
            ));
        }
        let completed = v::point_num(point, i, "completed")?;
        if completed <= 0.0 {
            return Err(format!("point {i}: no completions — horizon too short"));
        }
        if workload == "bursty" {
            let rate = v::point_num(point, i, "arrival_rate")?;
            let p99 = v::point_num(point, i, "ttft_p99")?;
            let entry = match bursty.iter_mut().find(|(r, _, _)| *r == rate) {
                Some(entry) => entry,
                None => {
                    bursty.push((rate, f64::INFINITY, f64::INFINITY));
                    bursty.last_mut().expect("just pushed")
                }
            };
            if is_snapshot(policy) {
                entry.1 = entry.1.min(p99);
            } else {
                entry.2 = entry.2.min(p99);
            }
        }
    }
    if bursty.is_empty() {
        return Err("no bursty points in manifest".into());
    }
    // The headline claim: feedback/speculative routing must earn its keep
    // somewhere on the bursty axis.
    if !bursty
        .iter()
        .any(|&(_, snapshot, adaptive)| adaptive < snapshot)
    {
        return Err(format!(
            "no bursty rate where a feedback/speculative policy beats the \
             best snapshot policy on p99 TTFT: {bursty:?}"
        ));
    }
    Ok(())
}

/// Runs the router comparison single-threaded (the `repro_all` entry
/// point, which parallelizes across figures instead).
pub fn run(quick: bool) -> Report {
    run_with_threads(quick, 1)
}

/// Runs the router comparison with grid points spread over `threads`
/// workers, writes `target/figs/router_compare.json` (byte-identical for
/// any thread count), and returns the human-readable report.
pub fn run_with_threads(quick: bool, threads: usize) -> Report {
    let rounds = if quick { 400 } else { 1200 };
    let bursty_rates: Vec<f64> = if quick {
        vec![6.0e4]
    } else {
        vec![6.0e4, 1.5e5]
    };
    let disagg_rates: Vec<f64> = vec![1.2e5];
    let policies = RouterPolicy::extended();
    let mut report = Report::new(
        "router_compare",
        "Router policies: snapshot vs feedback vs speculative dispatch",
    )
    .columns([
        "Workload",
        "Policy",
        "Rate (req/s)",
        "TTFT p50",
        "TTFT p99",
        "E2E p99",
        "Goodput (req/s)",
        "Completed",
        "Cancelled",
        "Discarded",
    ]);
    let manifest = sweep_manifest(
        quick,
        &bursty_rates,
        &disagg_rates,
        &policies,
        rounds,
        threads,
        &mut report,
    );
    match fs::create_dir_all("target/figs")
        .and_then(|_| fs::write(MANIFEST_PATH, manifest.pretty()))
    {
        Ok(()) => report.note(format!("machine-readable manifest: {MANIFEST_PATH}")),
        Err(e) => report.note(format!("WARNING: could not write {MANIFEST_PATH}: {e}")),
    }
    report.note(
        "deterministic: grid points merge by index, so the manifest is \
         byte-identical across runs and --threads settings \
         (schema moentwine/router_compare/v1)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest_with_threads(threads: usize) -> Value {
        let mut report = Report::new("router_compare_test", "t");
        sweep_manifest(
            true,
            &[6.0e4],
            &[1.2e5],
            &RouterPolicy::extended(),
            400,
            threads,
            &mut report,
        )
    }

    #[test]
    fn manifest_is_byte_identical_across_runs_and_threads_and_validates() {
        let a = tiny_manifest_with_threads(1);
        let b = tiny_manifest_with_threads(1);
        assert_eq!(a.pretty(), b.pretty(), "sweep must be deterministic");
        let parallel = tiny_manifest_with_threads(3);
        assert_eq!(
            a.pretty(),
            parallel.pretty(),
            "thread count must not change the manifest"
        );
        validate(&a).expect("schema + headline claim");
        let reparsed = Value::parse(&a.pretty()).expect("parse");
        validate(&reparsed).expect("schema after round-trip");
    }

    #[test]
    fn validate_rejects_broken_manifests() {
        assert!(validate(&Value::Obj(vec![])).is_err());
        assert!(validate(&Value::Obj(vec![(
            "schema".into(),
            Value::Str("other/v9".into())
        )]))
        .is_err());
        let mut manifest = tiny_manifest_with_threads(1);
        // A snapshot policy claiming speculative activity is a violation.
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    if let Value::Arr(points) = v {
                        if let Value::Obj(fields) = &mut points[0] {
                            for (pk, pv) in fields.iter_mut() {
                                if pk == "spec_cancelled_copies" {
                                    *pv = Value::Num(7.0);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate(&manifest).unwrap_err();
        assert!(err.contains("speculative activity"), "{err}");
    }

    #[test]
    fn validate_requires_the_adaptive_win() {
        // Flattening every bursty p99 to the same value kills the claim.
        let mut manifest = tiny_manifest_with_threads(1);
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    if let Value::Arr(points) = v {
                        for point in points {
                            if let Value::Obj(fields) = point {
                                for (pk, pv) in fields.iter_mut() {
                                    if pk == "ttft_p99" {
                                        *pv = Value::Num(1.0);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = validate(&manifest).unwrap_err();
        assert!(err.contains("p99 TTFT"), "{err}");
    }
}
