//! Fig. 14(a): ESP (Expert Sharding Parallelism) for large-expert models.

use moe_model::{ModelConfig, Precision};
use moentwine_core::comm::ClusterLayout;
use moentwine_core::esp::{esp_estimate, esp_groups_by_node, esp_groups_from_plan};

use crate::platforms::{wsc_plan, Platform, WscMapping};
use crate::report::{fmt_improvement, fmt_time};
use crate::Report;

/// Regenerates Fig. 14(a): DBRX and Mixtral under ESP on GPU clusters vs
/// WSC with and without ER-Mapping.
pub fn run(_quick: bool) -> Report {
    let mut report = Report::new("fig14a", "ESP communication: GPU vs WSC vs WSC+ER").columns([
        "Model",
        "Pair",
        "GPU (gather+AR)",
        "WSC (gather+AR)",
        "WSC+ER (gather+AR)",
        "WSC vs GPU",
        "ER vs WSC",
    ]);

    let tokens = 256u32;
    let pairs: Vec<(&str, Platform, Platform)> = vec![
        ("32 GPUs vs 6x6", Platform::dgx(4), Platform::wsc(6)),
        ("64 GPUs vs 8x8", Platform::dgx(8), Platform::wsc(8)),
    ];
    for model in [ModelConfig::dbrx(), ModelConfig::mixtral_8x22b()] {
        let token_bytes = model.token_bytes(Precision::Fp16);
        for (name, gpu, wsc) in &pairs {
            let gpu_layout = ClusterLayout::new(&gpu.topo, 8);
            let gpu_est = esp_estimate(
                &gpu.topo,
                &gpu.table,
                &gpu_layout,
                &esp_groups_by_node(&gpu.topo, 8),
                tokens,
                model.experts_per_token,
                token_bytes,
            );
            let base_plan = wsc_plan(wsc, 4, WscMapping::Baseline);
            let base_est = esp_estimate(
                &wsc.topo,
                &wsc.table,
                &base_plan,
                &esp_groups_from_plan(&base_plan),
                tokens,
                model.experts_per_token,
                token_bytes,
            );
            let er_plan = wsc_plan(wsc, 4, WscMapping::Er);
            let er_est = esp_estimate(
                &wsc.topo,
                &wsc.table,
                &er_plan,
                &esp_groups_from_plan(&er_plan),
                tokens,
                model.experts_per_token,
                token_bytes,
            );
            report.row([
                model.name.clone(),
                name.to_string(),
                fmt_time(gpu_est.total_time()),
                fmt_time(base_est.total_time()),
                fmt_time(er_est.total_time()),
                fmt_improvement(gpu_est.total_time(), base_est.total_time()),
                fmt_improvement(base_est.total_time(), er_est.total_time()),
            ]);
        }
    }
    report.note(
        "Paper shape: WSC outperforms DGX by ~50% on average under ESP; \
         because latency is dominated by the intra-group all-reduce, ER adds \
         only a further ~9% on average.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn wsc_beats_gpu_and_er_adds_modestly() {
        let r = super::run(true);
        for row in &r.rows {
            assert!(row[5].starts_with('+'), "WSC should beat GPU: {row:?}");
            let er_gain: f64 = row[6].trim_end_matches('%').parse().unwrap();
            assert!(er_gain > -20.0, "{row:?}");
        }
    }
}
