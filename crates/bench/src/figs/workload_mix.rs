//! Multi-tenant workload mix sweep: SLO attainment per tenant class under
//! bursty traffic.
//!
//! Sweeps **interactive:batch traffic mix × arrival rate** through the
//! declarative spec layer: every mix is a [`ScenarioSpec`] whose serving
//! batch carries a bursty two-tenant [`WorkloadSpec`] (interactive requests
//! shed past a deadline, batch requests patient), and the rate axis rides
//! the existing [`SweepSpec`] grid expansion. Each point reports per-class
//! TTFT/TPOT percentiles and SLO attainment plus the shed count — enough to
//! read off how much batch traffic an interactive SLO survives, and at what
//! rate the shedder starts firing.
//!
//! Besides the usual [`Report`], the sweep emits a machine-readable
//! manifest to `target/figs/workload_mix.json` (schema
//! `moentwine/workload_mix/v1`, validated by [`validate`]). Everything is
//! seeded and grid points merge by index, so the manifest is byte-identical
//! across runs *and* across `--threads` settings.

use std::fs;

use moe_workload::ClassSpec;
use moentwine_core::engine::ServingSummary;
use moentwine_spec::{
    ArrivalSourceSpec, BatchSpec, EngineSpec, PlatformSpec, ScenarioOutcome, ScenarioSpec,
    ServingSpec, SweepSpec, WorkloadSpec,
};

use crate::json::Value;
use crate::report::fmt_time;
use crate::Report;

/// Schema identifier embedded in (and required of) the manifest.
pub const SCHEMA: &str = "moentwine/workload_mix/v1";

/// Manifest output path, relative to the working directory.
pub const MANIFEST_PATH: &str = "target/figs/workload_mix.json";

/// Master seed of the sweep.
const SEED: u64 = 173;

/// The interactive:batch weight pairs swept as the tenant-mix axis.
const MIXES: [(f64, f64); 3] = [(3.0, 1.0), (1.0, 1.0), (1.0, 3.0)];

/// One mix's scenario: bursty arrivals (4× bursts a quarter of the time),
/// an impatient interactive tenant (tight SLOs, 100 ms shed deadline) and a
/// patient batch tenant, over the tiny preset with a thin KV share so the
/// bursts actually contend.
fn mix_spec(interactive_weight: f64, batch_weight: f64, rates: &[f64]) -> ScenarioSpec {
    let workload = WorkloadSpec::new(ArrivalSourceSpec::Burst {
        period: 0.002,
        burst_duration: 0.0005,
        quiet_factor: 0.5,
        burst_factor: 4.0,
    })
    .with_classes(vec![
        ClassSpec::interactive()
            .with_weight(interactive_weight)
            .with_shed_after(0.1),
        ClassSpec::batch().with_weight(batch_weight),
    ]);
    ScenarioSpec::new(
        format!("mix_{interactive_weight}_{batch_weight}"),
        PlatformSpec::wsc(4),
    )
    .with_engine(
        EngineSpec::default()
            .with_seed(SEED)
            .with_batch(BatchSpec::Serving(
                ServingSpec::hybrid(2048, 128, 0.0).with_workload(workload),
            ))
            .with_kv_hbm_fraction(1.0e-3),
    )
    .with_sweep(SweepSpec::default().with_rates(rates.to_vec()))
}

fn class_json(c: &moentwine_core::engine::ClassServingSummary) -> Value {
    Value::Obj(vec![
        ("class".into(), Value::Str(c.class.name().into())),
        ("completed".into(), Value::Num(c.completed as f64)),
        ("rejected".into(), Value::Num(c.rejected as f64)),
        ("shed".into(), Value::Num(c.shed as f64)),
        ("ttft_p50".into(), Value::Num(c.ttft_p50)),
        ("ttft_p95".into(), Value::Num(c.ttft_p95)),
        ("ttft_p99".into(), Value::Num(c.ttft_p99)),
        ("tpot_p50".into(), Value::Num(c.tpot_p50)),
        ("tpot_p95".into(), Value::Num(c.tpot_p95)),
        ("tpot_p99".into(), Value::Num(c.tpot_p99)),
        ("ttft_slo".into(), Value::Num(c.ttft_slo)),
        ("tpot_slo".into(), Value::Num(c.tpot_slo)),
        ("ttft_attainment".into(), Value::Num(c.ttft_attainment)),
        ("tpot_attainment".into(), Value::Num(c.tpot_attainment)),
    ])
}

fn point_json(mix: (f64, f64), rate: f64, s: &ServingSummary) -> Value {
    Value::Obj(vec![
        ("interactive_weight".into(), Value::Num(mix.0)),
        ("batch_weight".into(), Value::Num(mix.1)),
        ("arrival_rate".into(), Value::Num(rate)),
        ("completed".into(), Value::Num(s.completed as f64)),
        (
            "admission_rejects".into(),
            Value::Num(s.admission_rejects as f64),
        ),
        ("shed".into(), Value::Num(s.shed as f64)),
        ("ttft_p50".into(), Value::Num(s.ttft_p50)),
        ("ttft_p95".into(), Value::Num(s.ttft_p95)),
        ("ttft_p99".into(), Value::Num(s.ttft_p99)),
        ("tpot_p50".into(), Value::Num(s.tpot_p50)),
        ("tpot_p95".into(), Value::Num(s.tpot_p95)),
        ("tpot_p99".into(), Value::Num(s.tpot_p99)),
        ("e2e_p50".into(), Value::Num(s.e2e_p50)),
        ("e2e_p99".into(), Value::Num(s.e2e_p99)),
        ("goodput_rps".into(), Value::Num(s.goodput_rps)),
        (
            "goodput_tokens_per_s".into(),
            Value::Num(s.goodput_tokens_per_s),
        ),
        ("mean_queue_depth".into(), Value::Num(s.mean_queue_depth)),
        ("sim_seconds".into(), Value::Num(s.sim_seconds)),
        (
            "classes".into(),
            Value::Arr(s.classes.iter().map(class_json).collect()),
        ),
    ])
}

/// Builds the sweep manifest on a `threads`-wide worker pool. The tenant-mix
/// axis is a spec per mix; the rate axis expands through [`SweepSpec`].
/// Results merge by grid index, so the manifest is byte-identical for every
/// thread count.
fn sweep_manifest(
    quick: bool,
    rates: &[f64],
    iterations: usize,
    threads: usize,
    report: &mut Report,
) -> Value {
    let mut grid: Vec<((f64, f64), f64, ScenarioSpec)> = Vec::new();
    for &(iw, bw) in &MIXES {
        let points = mix_spec(iw, bw, rates)
            .expand_sweep()
            .expect("mix sweep expands");
        for (&rate, (_, mut point)) in rates.iter().zip(points) {
            point.iterations = iterations;
            grid.push(((iw, bw), rate, point));
        }
    }
    let pool = crate::perf::pool::WorkerPool::new(threads);
    let jobs: Vec<_> = grid
        .iter()
        .map(|(_, _, point)| {
            move || -> ServingSummary {
                match point.build().expect("valid mix spec").run().expect("runs") {
                    ScenarioOutcome::Engine { serving, .. } => *serving,
                    ScenarioOutcome::Fleet(_) => unreachable!("mix scenarios are fleet-less"),
                }
            }
        })
        .collect();
    let summaries = pool.run(jobs);
    let mut points: Vec<Value> = Vec::new();
    for ((mix, rate, _), s) in grid.iter().zip(&summaries) {
        let interactive = s
            .classes
            .first()
            .expect("workload-profiled runs report classes");
        report.row([
            format!("{}:{}", mix.0, mix.1),
            format!("{rate}"),
            fmt_time(interactive.ttft_p50),
            fmt_time(interactive.ttft_p99),
            format!("{:.3}", interactive.ttft_attainment),
            format!("{}", s.completed),
            format!("{}", s.admission_rejects),
            format!("{}", s.shed),
        ]);
        points.push(point_json(*mix, *rate, s));
    }
    Value::Obj(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        ("quick".into(), Value::Bool(quick)),
        ("seed".into(), Value::Num(SEED as f64)),
        ("iterations".into(), Value::Num(iterations as f64)),
        ("points".into(), Value::Arr(points)),
    ])
}

/// Validates a manifest against the `moentwine/workload_mix/v1` schema:
/// schema tag, non-empty point list, positive mix weights, monotone
/// percentile ladders, and per-point class sections whose attainments are
/// fractions.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, SCHEMA)?;
    v::require_run_params(manifest, &["seed", "iterations"])?;
    for (i, point) in v::require_points(manifest)?.iter().enumerate() {
        for key in ["interactive_weight", "batch_weight"] {
            if v::point_num(point, i, key)? <= 0.0 {
                return Err(format!("point {i}: {key} must be positive"));
            }
        }
        v::check_point_common(
            point,
            i,
            &[
                "arrival_rate",
                "completed",
                "admission_rejects",
                "shed",
                "mean_queue_depth",
                "sim_seconds",
            ],
        )?;
        let classes = point
            .get("classes")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("point {i}: missing classes array"))?;
        if classes.len() != 2 {
            return Err(format!(
                "point {i}: expected 2 tenant classes, found {}",
                classes.len()
            ));
        }
        for class in classes {
            let name = class
                .get("class")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("point {i}: class entry missing name"))?;
            for key in ["ttft_attainment", "tpot_attainment"] {
                let a = class
                    .get(key)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("point {i}: class {name}: missing {key}"))?;
                if !(0.0..=1.0).contains(&a) {
                    return Err(format!("point {i}: class {name}: {key} {a} outside [0, 1]"));
                }
            }
        }
    }
    Ok(())
}

/// Runs the workload mix sweep single-threaded (the `repro_all` entry
/// point, which parallelizes across figures instead).
pub fn run(quick: bool) -> Report {
    run_with_threads(quick, 1)
}

/// Runs the workload mix sweep with grid points spread over `threads`
/// workers, writes `target/figs/workload_mix.json` (byte-identical for any
/// thread count), and returns the human-readable report.
pub fn run_with_threads(quick: bool, threads: usize) -> Report {
    // Iterations sized like the serving sweeps: interactive outputs
    // complete within a few hundred decode steps. Rates span underload
    // through the shedding regime.
    let iterations = if quick { 400 } else { 1500 };
    let rates: Vec<f64> = if quick {
        vec![4.0e3, 12.0e3]
    } else {
        vec![2.0e3, 6.0e3, 18.0e3]
    };
    let mut report = Report::new(
        "workload_mix",
        "Multi-tenant SLO attainment: interactive:batch mix x rate sweep",
    )
    .columns([
        "Mix (i:b)",
        "Rate (req/s)",
        "Int TTFT p50",
        "Int TTFT p99",
        "Int attain",
        "Completed",
        "Rejects",
        "Shed",
    ]);
    let manifest = sweep_manifest(quick, &rates, iterations, threads, &mut report);
    match fs::create_dir_all("target/figs")
        .and_then(|_| fs::write(MANIFEST_PATH, manifest.pretty()))
    {
        Ok(()) => report.note(format!("machine-readable manifest: {MANIFEST_PATH}")),
        Err(e) => report.note(format!("WARNING: could not write {MANIFEST_PATH}: {e}")),
    }
    report.note(
        "deterministic: grid points merge by index, so the manifest is \
         byte-identical across runs and --threads settings \
         (schema moentwine/workload_mix/v1)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest_with_threads(threads: usize) -> Value {
        let mut report = Report::new("workload_mix_test", "t");
        sweep_manifest(true, &[12.0e3], 300, threads, &mut report)
    }

    #[test]
    fn manifest_is_byte_identical_across_runs_and_threads_and_validates() {
        let a = tiny_manifest_with_threads(1);
        let b = tiny_manifest_with_threads(1);
        assert_eq!(a.pretty(), b.pretty(), "sweep must be deterministic");
        let parallel = tiny_manifest_with_threads(3);
        assert_eq!(
            a.pretty(),
            parallel.pretty(),
            "thread count must not change the manifest"
        );
        validate(&a).expect("schema");
        let reparsed = Value::parse(&a.pretty()).expect("parse");
        validate(&reparsed).expect("schema after round-trip");
    }

    #[test]
    fn every_point_reports_both_tenant_classes() {
        let manifest = tiny_manifest_with_threads(1);
        for point in manifest.get("points").and_then(Value::as_array).unwrap() {
            let classes = point.get("classes").and_then(Value::as_array).unwrap();
            assert_eq!(classes.len(), 2);
            assert_eq!(
                classes[0].get("class").and_then(Value::as_str),
                Some("interactive")
            );
            assert_eq!(
                classes[1].get("class").and_then(Value::as_str),
                Some("batch")
            );
        }
    }

    #[test]
    fn validate_rejects_broken_manifests() {
        assert!(validate(&Value::Obj(vec![])).is_err());
        let mut manifest = tiny_manifest_with_threads(1);
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    if let Value::Arr(points) = v {
                        if let Value::Obj(fields) = &mut points[0] {
                            fields.retain(|(pk, _)| pk != "classes");
                        }
                    }
                }
            }
        }
        assert!(validate(&manifest).unwrap_err().contains("classes"));
    }
}
