//! Fig. 17: the full system ablation — multi-WSC vs the NVL72 supernode.

use moe_model::ModelConfig;
use moe_workload::WorkloadMix;
use moentwine_core::balancer::BalancerKind;
use moentwine_core::comm::{ClusterLayout, ParallelLayout};
use moentwine_core::engine::{InferenceEngine, RunSummary};
use moentwine_spec::{BatchSpec, EngineSpec};

use crate::platforms::{wsc_plan, Platform, WscMapping};
use crate::Report;

/// NVMe side-channel bandwidth used by the NVL72 baseline to hide expert
/// migration (paper cites dedicated NVMe channels).
const NVME_BW: f64 = 8.0e9;

fn run_system(
    platform: &Platform,
    layout: &dyn ParallelLayout,
    model: &ModelConfig,
    kind: BalancerKind,
    cold_bw: f64,
    slots: usize,
    iters: usize,
) -> RunSummary {
    let config = EngineSpec::default()
        .with_batch(BatchSpec::fixed_decode(256))
        .with_workload(WorkloadMix::mixed(300.0))
        .with_balancer(kind)
        .with_seed(5)
        .with_comm_layer_stride(8)
        // WSC at E/D ≤ 1 has abundant spare HBM for shadow replicas (a 42
        // MiB expert against 180 GB); NVL72 at E/D ≈ 2–3.6 is
        // memory-constrained, which is exactly the paper's point about its
        // limited balancing gains.
        .with_slots_per_device(slots)
        .with_max_actions_per_layer(2 * slots)
        .with_cold_bandwidth(cold_bw)
        .engine_config(model.clone())
        .expect("valid fig17 spec");
    let mut engine = InferenceEngine::new(&platform.topo, &platform.table, layout, config);
    engine.run(iters)
}

/// Regenerates Fig. 17: eight system points for Qwen3 and DeepSeek-V3.
pub fn run(quick: bool) -> Report {
    let iters = if quick { 8 } else { 40 };
    let mut report = Report::new(
        "fig17",
        "Ablation: multi-WSC (4x(8x8), EP=256) vs NVL72 (EP=72)",
    )
    .columns([
        "Model",
        "System",
        "All-to-all",
        "MoE compute",
        "Migration",
        "Total (rel.)",
        "Tokens/s/device",
    ]);

    let models: Vec<ModelConfig> = if quick {
        vec![ModelConfig::qwen3_235b()]
    } else {
        vec![ModelConfig::qwen3_235b(), ModelConfig::deepseek_v3()]
    };

    for model in &models {
        let mut rows: Vec<(String, RunSummary)> = Vec::new();

        let nvl = Platform::nvl72();
        let nvl_layout = ClusterLayout::new(&nvl.topo, 8);
        rows.push((
            "NVL72".into(),
            run_system(
                &nvl,
                &nvl_layout,
                model,
                BalancerKind::None,
                NVME_BW,
                1,
                iters,
            ),
        ));
        rows.push((
            "NVL72 + Balance".into(),
            run_system(
                &nvl,
                &nvl_layout,
                model,
                BalancerKind::NonInvasive,
                NVME_BW,
                1,
                iters,
            ),
        ));

        let wsc = Platform::multi_wsc(2, 2, 8);
        let baseline = wsc_plan(&wsc, 8, WscMapping::Baseline);
        let er = wsc_plan(&wsc, 8, WscMapping::Er);
        let her = wsc_plan(&wsc, 8, WscMapping::Her);
        let cold = 4.0e12;
        rows.push((
            "WSC".into(),
            run_system(&wsc, &baseline, model, BalancerKind::None, cold, 2, iters),
        ));
        rows.push((
            "WSC + ER".into(),
            run_system(&wsc, &er, model, BalancerKind::None, cold, 2, iters),
        ));
        rows.push((
            "WSC + HER".into(),
            run_system(&wsc, &her, model, BalancerKind::None, cold, 2, iters),
        ));
        rows.push((
            "WSC + HER + Greedy".into(),
            run_system(&wsc, &her, model, BalancerKind::Greedy, cold, 2, iters),
        ));
        rows.push((
            "WSC + HER + Topology".into(),
            run_system(
                &wsc,
                &her,
                model,
                BalancerKind::TopologyAware,
                cold,
                2,
                iters,
            ),
        ));
        rows.push((
            "WSC + HER + Non-invasive".into(),
            run_system(&wsc, &her, model, BalancerKind::NonInvasive, cold, 2, iters),
        ));

        let norm = rows[0].1.mean_iteration_time;
        for (name, s) in &rows {
            report.row([
                model.name.clone(),
                name.clone(),
                crate::report::fmt_time(s.mean_all_to_all),
                crate::report::fmt_time(s.mean_moe_compute),
                crate::report::fmt_time(s.mean_migration_stall),
                format!("{:.2}", s.mean_iteration_time / norm),
                format!("{:.0}", s.tokens_per_second_per_device),
            ]);
        }
        let nvl_perf = rows[1].1.tokens_per_second_per_device;
        let wsc_perf = rows[7].1.tokens_per_second_per_device;
        report.note(format!(
            "{}: per-device MoE throughput — WSC+MoEntwine {:.0} tok/s vs \
             NVL72+Balance {:.0} tok/s ({:+.0}%); paper reports +39% average.",
            model.name,
            wsc_perf,
            nvl_perf,
            (wsc_perf - nvl_perf) / nvl_perf * 100.0
        ));
    }
    report.note(
        "Paper shape: naive WSC port is throttled by mesh all-to-all; ER cuts \
         it ~30%, HER ~71%; greedy balancing helps compute but exposes \
         migration; topology-aware cuts migration ~67%; non-invasive removes it.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn full_stack_beats_naive_port() {
        let r = super::run(true);
        let rel = |name: &str| {
            r.rows
                .iter()
                .find(|row| row[1] == name)
                .map(|row| row[5].parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(rel("WSC + HER + Non-invasive") < rel("WSC"));
        assert!(rel("WSC + HER") <= rel("WSC + ER"));
    }
}
