//! Shared manifest-schema validation helpers.
//!
//! The sweep figures (`serve_sweep`, `fleet_sweep`) emit machine-readable
//! manifests with the same skeleton — a schema tag, run parameters, and a
//! point list whose entries carry percentile ladders and throughput fields.
//! The common checks live here so the two validators gate identically; each
//! sweep adds only its own extra constraints on top.

use crate::json::Value;

/// The TTFT / TPOT / end-to-end percentile ladders every sweep point
/// carries; each must be non-decreasing.
pub const PERCENTILE_LADDERS: &[&[&str]] = &[
    &["ttft_p50", "ttft_p95", "ttft_p99"],
    &["tpot_p50", "tpot_p95", "tpot_p99"],
    &["e2e_p50", "e2e_p99"],
];

/// Checks the manifest's schema tag.
///
/// # Errors
///
/// Returns a message when the tag is missing or not `expected`.
pub fn require_schema(manifest: &Value, expected: &str) -> Result<(), String> {
    let schema = manifest
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("missing schema tag")?;
    if schema != expected {
        return Err(format!("schema {schema:?}, expected {expected:?}"));
    }
    Ok(())
}

/// Requires top-level numeric run parameters (e.g. seed, iteration count).
///
/// # Errors
///
/// Returns a message naming the first missing field.
pub fn require_run_params(manifest: &Value, keys: &[&str]) -> Result<(), String> {
    for key in keys {
        manifest
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("missing numeric field {key:?}"))?;
    }
    Ok(())
}

/// Returns the non-empty `points` array.
///
/// # Errors
///
/// Returns a message when the array is missing or empty.
pub fn require_points(manifest: &Value) -> Result<&[Value], String> {
    let points = manifest
        .get("points")
        .and_then(Value::as_array)
        .ok_or("missing points array")?;
    if points.is_empty() {
        return Err("empty points array".into());
    }
    Ok(points)
}

/// Numeric field of point `i`.
///
/// # Errors
///
/// Returns a message when the field is missing or non-numeric.
pub fn point_num(point: &Value, i: usize, key: &str) -> Result<f64, String> {
    point
        .get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("point {i}: missing numeric field {key:?}"))
}

/// String field of point `i`.
///
/// # Errors
///
/// Returns a message when the field is missing or non-string.
pub fn point_str<'a>(point: &'a Value, i: usize, key: &str) -> Result<&'a str, String> {
    point
        .get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("point {i}: missing string field {key:?}"))
}

/// The checks every sweep point shares: required numeric fields, the
/// [`PERCENTILE_LADDERS`] monotone, and non-negative goodput.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn check_point_common(point: &Value, i: usize, extra_nums: &[&str]) -> Result<(), String> {
    for key in extra_nums {
        point_num(point, i, key)?;
    }
    for ladder in PERCENTILE_LADDERS {
        let values = ladder
            .iter()
            .map(|k| point_num(point, i, k))
            .collect::<Result<Vec<_>, _>>()?;
        if values.windows(2).any(|w| w[0] > w[1]) {
            return Err(format!(
                "point {i}: percentile ladder {ladder:?} not monotone: {values:?}"
            ));
        }
    }
    for key in ["goodput_rps", "goodput_tokens_per_s"] {
        if point_num(point, i, key)? < 0.0 {
            return Err(format!("point {i}: negative {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(ttft: [f64; 3]) -> Value {
        let mut fields: Vec<(String, Value)> = vec![
            ("ttft_p50".into(), Value::Num(ttft[0])),
            ("ttft_p95".into(), Value::Num(ttft[1])),
            ("ttft_p99".into(), Value::Num(ttft[2])),
        ];
        for key in [
            "tpot_p50",
            "tpot_p95",
            "tpot_p99",
            "e2e_p50",
            "e2e_p99",
            "goodput_rps",
            "goodput_tokens_per_s",
        ] {
            fields.push((key.into(), Value::Num(1.0)));
        }
        Value::Obj(fields)
    }

    #[test]
    fn common_checks_accept_monotone_ladders() {
        check_point_common(&point([1.0, 2.0, 3.0]), 0, &[]).expect("valid point");
    }

    #[test]
    fn common_checks_reject_broken_ladder_and_missing_field() {
        let err = check_point_common(&point([3.0, 2.0, 1.0]), 4, &[]).unwrap_err();
        assert!(
            err.contains("point 4") && err.contains("not monotone"),
            "{err}"
        );
        let err = check_point_common(&point([1.0, 2.0, 3.0]), 0, &["nope"]).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn schema_and_points_helpers() {
        let manifest = Value::Obj(vec![
            ("schema".into(), Value::Str("x/v1".into())),
            ("seed".into(), Value::Num(1.0)),
            ("points".into(), Value::Arr(vec![Value::Obj(vec![])])),
        ]);
        require_schema(&manifest, "x/v1").expect("tag");
        assert!(require_schema(&manifest, "y/v1").is_err());
        require_run_params(&manifest, &["seed"]).expect("params");
        assert!(require_run_params(&manifest, &["missing"]).is_err());
        assert_eq!(require_points(&manifest).expect("points").len(), 1);
        assert!(require_points(&Value::Obj(vec![])).is_err());
    }
}
