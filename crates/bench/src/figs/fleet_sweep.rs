//! Fleet-level serving sweep: scale-out latency–throughput surfaces.
//!
//! Sweeps **replica count × router policy × arrival rate** through the
//! fleet layer (`moentwine_core::fleet`): N independent replica engines in
//! lock-step behind a front-end router, the deployment shape the ROADMAP
//! north star ("heavy traffic from millions of users") implies. Each point
//! reports the fleet-aggregate SLO percentiles, goodput, admission rejects,
//! and the cross-replica load-imbalance ratios — enough to read off the
//! scale-out knee ("how many wafers for this arrival rate at p99 TTFT ≤
//! X?") and to compare dispatch policies under identical traffic.
//!
//! Besides the usual [`Report`], the sweep emits a machine-readable
//! manifest to `target/figs/fleet_sweep.json` (schema
//! `moentwine/fleet_sweep/v1`, validated by [`validate`]). Everything is
//! seeded and grid points merge by index, so the manifest is byte-identical
//! across runs *and* across `--threads` settings (pinned by a unit test and
//! the CI smoke step).

use std::fs;

use moe_model::ModelConfig;
use moe_workload::{RouterPolicy, Scenario, SchedulingMode, WorkloadMix};
use moentwine_core::engine::{EngineConfig, SummaryMode};
use moentwine_core::fleet::{Fleet, FleetSummary};
use moentwine_spec::{BatchSpec, EngineSpec, FleetSpec, ModelSpec, ServingSpec};

use crate::json::Value;
use crate::platforms::Platform;
use crate::report::fmt_time;
use crate::Report;

/// Schema identifier embedded in (and required of) the manifest.
pub const SCHEMA: &str = "moentwine/fleet_sweep/v1";

/// Manifest output path, relative to the working directory.
pub const MANIFEST_PATH: &str = "target/figs/fleet_sweep.json";

/// Master seed of the sweep (replica streams are split from it).
const SEED: u64 = 131;

/// The per-replica engine template: hybrid continuous batching with a thin
/// KV share, mirroring the single-engine `serve_sweep` so fleet and
/// single-replica curves are comparable. Constructed through the
/// declarative spec layer (the fleet converts the serving batch to
/// `BatchMode::External` per replica; the spec's request rate is unused —
/// the fleet owns arrivals).
fn engine_template() -> EngineConfig {
    let model: ModelConfig = ModelSpec::preset("tiny").resolve().expect("tiny preset");
    EngineSpec::default()
        .with_seed(SEED)
        .with_workload(WorkloadMix::Blend(vec![
            (Scenario::Chat, 4.0),
            (Scenario::Coding, 1.0),
            (Scenario::Math, 1.0),
            (Scenario::Privacy, 4.0),
        ]))
        .with_batch(BatchSpec::Serving(ServingSpec {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 256,
            request_rate: 0.0,
            iteration_period: 0.02,
            summary: SummaryMode::Exact,
            workload: None,
        }))
        .with_kv_hbm_fraction(1.0e-3)
        .engine_config(model)
        .expect("valid fleet template")
}

/// Runs one sweep point (the fleet shape comes in as a [`FleetSpec`]).
fn run_point(
    platform: &Platform,
    plan: &moentwine_core::MappingPlan,
    replicas: usize,
    policy: RouterPolicy,
    rate: f64,
    rounds: usize,
) -> FleetSummary {
    let config = FleetSpec::new(replicas, policy, rate).fleet_config(engine_template());
    let mut fleet = Fleet::new(&platform.topo, &platform.table, plan, config);
    fleet.run(rounds);
    fleet.summary()
}

fn point_json(replicas: usize, policy: RouterPolicy, rate: f64, s: &FleetSummary) -> Value {
    let agg = &s.aggregate;
    Value::Obj(vec![
        ("replicas".into(), Value::Num(replicas as f64)),
        ("policy".into(), Value::Str(policy.name())),
        ("arrival_rate".into(), Value::Num(rate)),
        ("ttft_p50".into(), Value::Num(agg.ttft_p50)),
        ("ttft_p95".into(), Value::Num(agg.ttft_p95)),
        ("ttft_p99".into(), Value::Num(agg.ttft_p99)),
        ("tpot_p50".into(), Value::Num(agg.tpot_p50)),
        ("tpot_p95".into(), Value::Num(agg.tpot_p95)),
        ("tpot_p99".into(), Value::Num(agg.tpot_p99)),
        ("e2e_p50".into(), Value::Num(agg.e2e_p50)),
        ("e2e_p99".into(), Value::Num(agg.e2e_p99)),
        ("goodput_rps".into(), Value::Num(agg.goodput_rps)),
        (
            "goodput_tokens_per_s".into(),
            Value::Num(agg.goodput_tokens_per_s),
        ),
        ("completed".into(), Value::Num(agg.completed as f64)),
        (
            "admission_rejects".into(),
            Value::Num(agg.admission_rejects as f64),
        ),
        ("mean_queue_depth".into(), Value::Num(agg.mean_queue_depth)),
        ("routing_imbalance".into(), Value::Num(s.routing_imbalance)),
        (
            "completion_imbalance".into(),
            Value::Num(s.completion_imbalance),
        ),
        (
            "routed".into(),
            Value::Arr(s.routed.iter().map(|&r| Value::Num(r as f64)).collect()),
        ),
        ("sim_seconds".into(), Value::Num(s.sim_seconds)),
    ])
}

/// Builds the sweep manifest over explicit axes on a `threads`-wide worker
/// pool (the unit tests use a reduced grid; [`run_with_threads`] uses the
/// full/quick grids). Results merge by grid index, so the manifest is
/// byte-identical for every thread count.
fn sweep_manifest(
    quick: bool,
    replica_counts: &[usize],
    policies: &[RouterPolicy],
    rates: &[f64],
    rounds: usize,
    threads: usize,
    report: &mut Report,
) -> Value {
    let platform = Platform::wsc(4);
    let plan = crate::platforms::wsc_plan(&platform, 4, crate::platforms::WscMapping::Er);
    let mut grid: Vec<(usize, RouterPolicy, f64)> = Vec::new();
    for &replicas in replica_counts {
        for &policy in policies {
            for &rate in rates {
                grid.push((replicas, policy, rate));
            }
        }
    }
    let pool = crate::perf::pool::WorkerPool::new(threads);
    let jobs: Vec<_> = grid
        .iter()
        .map(|&(replicas, policy, rate)| {
            let (platform, plan) = (&platform, &plan);
            move || run_point(platform, plan, replicas, policy, rate, rounds)
        })
        .collect();
    let summaries = pool.run(jobs);
    let mut points: Vec<Value> = Vec::new();
    for (&(replicas, policy, rate), s) in grid.iter().zip(&summaries) {
        let agg = &s.aggregate;
        report.row([
            format!("{replicas}"),
            policy.name(),
            format!("{rate}"),
            fmt_time(agg.ttft_p50),
            fmt_time(agg.ttft_p99),
            fmt_time(agg.e2e_p99),
            format!("{:.1}", agg.goodput_rps),
            format!("{}", agg.completed),
            format!("{}", agg.admission_rejects),
            format!("{:.3}", s.completion_imbalance),
        ]);
        points.push(point_json(replicas, policy, rate, s));
    }
    Value::Obj(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        ("quick".into(), Value::Bool(quick)),
        ("seed".into(), Value::Num(SEED as f64)),
        ("rounds".into(), Value::Num(rounds as f64)),
        ("points".into(), Value::Arr(points)),
    ])
}

/// Validates a manifest against the `moentwine/fleet_sweep/v1` schema:
/// schema tag, non-empty point list, required fields with the right types,
/// non-decreasing percentile ladders, non-negative throughput, imbalance
/// ratios ≥ 1, and a `routed` list whose length matches `replicas`.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, SCHEMA)?;
    v::require_run_params(manifest, &["seed", "rounds"])?;
    for (i, point) in v::require_points(manifest)?.iter().enumerate() {
        v::point_str(point, i, "policy")?
            .parse::<RouterPolicy>()
            .map_err(|e| format!("point {i}: {e}"))?;
        let replicas = v::point_num(point, i, "replicas")?;
        if replicas < 1.0 {
            return Err(format!("point {i}: replicas {replicas} < 1"));
        }
        let routed = point
            .get("routed")
            .and_then(Value::as_array)
            .ok_or_else(|| format!("point {i}: missing routed array"))?;
        if routed.len() != replicas as usize {
            return Err(format!(
                "point {i}: routed has {} entries for {replicas} replicas",
                routed.len()
            ));
        }
        v::check_point_common(
            point,
            i,
            &[
                "arrival_rate",
                "completed",
                "admission_rejects",
                "mean_queue_depth",
                "sim_seconds",
            ],
        )?;
        for key in ["routing_imbalance", "completion_imbalance"] {
            if v::point_num(point, i, key)? < 1.0 {
                return Err(format!("point {i}: {key} below 1"));
            }
        }
    }
    Ok(())
}

/// Runs the fleet sweep single-threaded (the `repro_all` entry point, which
/// parallelizes across figures instead).
pub fn run(quick: bool) -> Report {
    run_with_threads(quick, 1)
}

/// Runs the fleet sweep with grid points spread over `threads` workers,
/// writes `target/figs/fleet_sweep.json` (byte-identical for any thread
/// count), and returns the human-readable report.
pub fn run_with_threads(quick: bool, threads: usize) -> Report {
    // Rounds are sized like the serve_sweep iteration counts: median
    // interactive outputs complete within a few hundred decode rounds.
    // Rates span per-replica underload through fleet saturation so the
    // scale-out knee (goodput flattening, p99 TTFT blowing up) is visible
    // at every replica count.
    let rounds = if quick { 400 } else { 1500 };
    let replica_counts: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4] };
    let rates: Vec<f64> = if quick {
        vec![4.0e3, 12.0e3]
    } else {
        vec![2.0e3, 8.0e3, 24.0e3]
    };
    let policies = RouterPolicy::all();
    let mut report = Report::new(
        "fleet_sweep",
        "Fleet-level serving: replica x policy x rate sweep",
    )
    .columns([
        "Replicas",
        "Policy",
        "Rate (req/s)",
        "TTFT p50",
        "TTFT p99",
        "E2E p99",
        "Goodput (req/s)",
        "Completed",
        "Rejects",
        "Imbalance",
    ]);
    let manifest = sweep_manifest(
        quick,
        &replica_counts,
        &policies,
        &rates,
        rounds,
        threads,
        &mut report,
    );
    match fs::create_dir_all("target/figs")
        .and_then(|_| fs::write(MANIFEST_PATH, manifest.pretty()))
    {
        Ok(()) => report.note(format!("machine-readable manifest: {MANIFEST_PATH}")),
        Err(e) => report.note(format!("WARNING: could not write {MANIFEST_PATH}: {e}")),
    }
    report.note(
        "deterministic: grid points merge by index, so the manifest is \
         byte-identical across runs and --threads settings \
         (schema moentwine/fleet_sweep/v1)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest_with_threads(threads: usize) -> Value {
        let mut report = Report::new("fleet_sweep_test", "t");
        sweep_manifest(
            true,
            &[1, 2],
            &[RouterPolicy::RoundRobin, RouterPolicy::PowerOfTwoChoices],
            &[20.0e3],
            150,
            threads,
            &mut report,
        )
    }

    #[test]
    fn manifest_is_byte_identical_across_runs_and_threads_and_validates() {
        let a = tiny_manifest_with_threads(1);
        let b = tiny_manifest_with_threads(1);
        assert_eq!(a.pretty(), b.pretty(), "sweep must be deterministic");
        let parallel = tiny_manifest_with_threads(3);
        assert_eq!(
            a.pretty(),
            parallel.pretty(),
            "thread count must not change the manifest"
        );
        validate(&a).expect("schema");
        let reparsed = Value::parse(&a.pretty()).expect("parse");
        validate(&reparsed).expect("schema after round-trip");
    }

    #[test]
    fn validate_rejects_broken_manifests() {
        assert!(validate(&Value::Obj(vec![])).is_err());
        assert!(validate(&Value::Obj(vec![(
            "schema".into(),
            Value::Str("other/v9".into())
        )]))
        .is_err());
        let mut manifest = tiny_manifest_with_threads(1);
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    *v = Value::Arr(vec![]);
                }
            }
        }
        assert!(validate(&manifest).unwrap_err().contains("empty points"));
        // A policy name outside the registry is a schema violation.
        let mut manifest = tiny_manifest_with_threads(1);
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    if let Value::Arr(points) = v {
                        if let Value::Obj(fields) = &mut points[0] {
                            for (pk, pv) in fields.iter_mut() {
                                if pk == "policy" {
                                    *pv = Value::Str("random".into());
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(validate(&manifest).is_err());
    }
}
