//! Fig. 16: balancing strategies across serving disciplines and scenario
//! mixtures.

use moe_model::ModelConfig;
use moe_workload::{Scenario, SchedulingMode, WorkloadMix};
use moentwine_core::balancer::BalancerKind;
use moentwine_core::engine::{InferenceEngine, SummaryMode};
use moentwine_spec::{BatchSpec, EngineSpec, ServingSpec};

use crate::platforms::{wsc_plan, Platform, WscMapping};
use crate::Report;

struct Cell {
    a2a: f64,
    moe_comp: f64,
    stall: f64,
    load_ratio: f64,
    total: f64,
}

fn run_cell(
    platform: &Platform,
    plan: &moentwine_core::MappingPlan,
    model: &ModelConfig,
    sched: SchedulingMode,
    workload: WorkloadMix,
    kind: BalancerKind,
    iters: usize,
) -> Cell {
    let config = EngineSpec::default()
        .with_workload(workload)
        .with_balancer(kind)
        .with_batch(BatchSpec::Serving(ServingSpec {
            mode: sched,
            max_batch_tokens: match sched {
                SchedulingMode::PrefillOnly => 2048,
                _ => 512,
            },
            max_active: 256,
            request_rate: 600.0,
            iteration_period: 0.02,
            summary: SummaryMode::Exact,
            workload: None,
        }))
        .with_seed(29)
        .with_comm_layer_stride(8)
        .with_slots_per_device(2)
        .engine_config(model.clone())
        .expect("valid fig16 spec");
    let mut engine = InferenceEngine::new(&platform.topo, &platform.table, plan, config);
    let s = engine.run(iters);
    Cell {
        a2a: s.mean_all_to_all,
        moe_comp: s.mean_moe_compute,
        stall: s.mean_migration_stall,
        load_ratio: s.mean_load_ratio,
        total: s.mean_iteration_time,
    }
}

/// Regenerates Fig. 16: {Qwen3, DeepSeek-V3} × {Prefill, Decode, Hybrid} ×
/// {Math-only, Mixed} × four balancing strategies, on an 8×8 WSC.
pub fn run(quick: bool) -> Report {
    let iters = if quick { 15 } else { 60 };
    let mut report = Report::new(
        "fig16",
        "Balancing strategies across scheduling modes and scenarios",
    )
    .columns([
        "Model",
        "Scheduling",
        "Scenario",
        "Strategy",
        "A2A",
        "MoE comp",
        "Migration",
        "Load ratio",
        "Total (rel. to no-balance)",
    ]);

    let platform = Platform::wsc(8);
    let models: Vec<ModelConfig> = if quick {
        vec![ModelConfig::qwen3_235b()]
    } else {
        vec![ModelConfig::qwen3_235b(), ModelConfig::deepseek_v3()]
    };
    let scheds: Vec<SchedulingMode> = if quick {
        vec![SchedulingMode::DecodeOnly]
    } else {
        vec![
            SchedulingMode::PrefillOnly,
            SchedulingMode::DecodeOnly,
            SchedulingMode::Hybrid,
        ]
    };
    let scenarios: Vec<(&str, WorkloadMix)> = vec![
        ("Math-only", WorkloadMix::Fixed(Scenario::Math)),
        ("Mixed", WorkloadMix::mixed(40.0)),
    ];
    let strategies = [
        ("No balance", BalancerKind::None),
        ("Greedy", BalancerKind::Greedy),
        ("Topology-aware", BalancerKind::TopologyAware),
        ("Non-invasive", BalancerKind::NonInvasive),
    ];

    for model in &models {
        let plan = wsc_plan(&platform, 4, WscMapping::Er);
        for &sched in &scheds {
            for (scenario_name, workload) in &scenarios {
                let mut base_total = None;
                for (strategy_name, kind) in strategies {
                    let cell = run_cell(
                        &platform,
                        &plan,
                        model,
                        sched,
                        workload.clone(),
                        kind,
                        iters,
                    );
                    let norm = *base_total.get_or_insert(cell.total);
                    report.row([
                        model.name.clone(),
                        sched.to_string(),
                        scenario_name.to_string(),
                        strategy_name.to_string(),
                        crate::report::fmt_time(cell.a2a),
                        crate::report::fmt_time(cell.moe_comp),
                        crate::report::fmt_time(cell.stall),
                        format!("{:.2}", cell.load_ratio),
                        format!("{:.2}", cell.total / norm),
                    ]);
                }
            }
        }
    }
    report.note(
        "Paper shape: fixed scenarios need few migrations after warm-up; mixed \
         scenarios trigger frequent ones. Invasive migration overhead is far \
         costlier for decode/hybrid (short iterations) than prefill. \
         Topology-aware cuts migration overhead ~2.6x; non-invasive removes it \
         entirely while achieving the best load balance (MoE compute down \
         up to 54%, A2A down ~23% in the paper).",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use moentwine_core::balancer::BalancerKind;

    /// A compute-bound E/D=1 configuration where balancing must pay off
    /// end-to-end (the paper's WSC sweet spot): tiny experts (cheap weight
    /// reads) under a heavy token load, so the slowest device is limited by
    /// its *token count*, which replication fixes. With E/D ≫ 1 or tiny
    /// batches the iteration is weight-traffic-bound instead and
    /// replication cannot help totals — the effect the paper describes for
    /// NVL72.
    fn compute_bound_model() -> ModelConfig {
        ModelConfig {
            name: "tiny-ed1".into(),
            total_params_b: 1.0,
            num_layers: 8,
            num_sparse_layers: 8,
            hidden_size: 1024,
            moe_intermediate_size: 512,
            num_experts: 16,
            experts_per_token: 2,
            num_shared_experts: 0,
            num_attention_heads: 16,
            num_kv_heads: 4,
            head_dim: 64,
        }
    }

    fn run_fixed(kind: BalancerKind) -> moentwine_core::engine::RunSummary {
        let platform = Platform::wsc(4);
        let plan = wsc_plan(&platform, 4, WscMapping::Er);
        let config = EngineSpec::default()
            .with_workload(WorkloadMix::Fixed(Scenario::Math))
            .with_balancer(kind)
            .with_batch(BatchSpec::Fixed {
                tokens_per_group: 1024,
                avg_context: 2048.0,
                phase: moe_model::InferencePhase::Decode,
            })
            .with_seed(29)
            .with_comm_layer_stride(4)
            .with_slots_per_device(2)
            .engine_config(compute_bound_model())
            .expect("valid test spec");
        let mut engine = InferenceEngine::new(&platform.topo, &platform.table, &plan, config);
        engine.run(40)
    }

    #[test]
    fn non_invasive_beats_no_balance_when_compute_bound() {
        let none = run_fixed(BalancerKind::None);
        let ni = run_fixed(BalancerKind::NonInvasive);
        assert_eq!(ni.mean_migration_stall, 0.0);
        assert!(ni.mean_load_ratio < none.mean_load_ratio);
        assert!(
            ni.mean_moe_compute < none.mean_moe_compute,
            "moe: ni {} vs none {}",
            ni.mean_moe_compute,
            none.mean_moe_compute
        );
        assert!(
            ni.mean_iteration_time < none.mean_iteration_time,
            "total: ni {} vs none {}",
            ni.mean_iteration_time,
            none.mean_iteration_time
        );
    }
}
