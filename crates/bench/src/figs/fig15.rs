//! Fig. 15: run-time traces of device loads and migrations under the four
//! balancing strategies.

use moe_model::{InferencePhase, ModelConfig};
use moe_workload::WorkloadMix;
use moentwine_core::balancer::BalancerKind;
use moentwine_core::engine::InferenceEngine;
use moentwine_spec::{BatchSpec, EngineSpec, ModelSpec};

use crate::platforms::{wsc_plan, Platform, WscMapping};
use crate::Report;

/// Per-strategy trace statistics.
pub struct TraceStats {
    /// Mean max/mean device load ratio post-warmup.
    pub load_ratio: f64,
    /// Iterations interrupted by invasive migration.
    pub interruptions: usize,
    /// Total invasive stall, seconds.
    pub total_stall: f64,
    /// Migrations that became active.
    pub migrations: u64,
    /// Mean iteration time, seconds.
    pub mean_iteration: f64,
}

/// Runs one strategy and returns its trace stats plus the per-iteration
/// (max, avg) device-token series.
pub fn run_strategy(kind: BalancerKind, iters: usize, seed: u64) -> (TraceStats, Vec<(f64, f64)>) {
    let model: ModelConfig = ModelSpec::preset("qwen3-235b").resolve().expect("preset");
    let platform = Platform::wsc(4);
    let plan = wsc_plan(&platform, 4, WscMapping::Er);
    let config = EngineSpec::default()
        .with_batch(BatchSpec::Fixed {
            tokens_per_group: 768,
            avg_context: 4096.0,
            phase: InferencePhase::Decode,
        })
        .with_workload(WorkloadMix::mixed(60.0))
        .with_balancer(kind)
        .with_seed(seed)
        .with_comm_layer_stride(8)
        .with_slots_per_device(2)
        .engine_config(model)
        .expect("valid fig15 spec");
    let mut engine = InferenceEngine::new(&platform.topo, &platform.table, &plan, config);
    let summary = engine.run(iters);
    let warmup = iters / 5;
    let post = &engine.history[warmup..];
    let stats = TraceStats {
        load_ratio: post.iter().map(|m| m.load_ratio).sum::<f64>() / post.len() as f64,
        interruptions: engine.history.iter().filter(|m| m.interrupted()).count(),
        total_stall: engine.history.iter().map(|m| m.migration_stall).sum(),
        migrations: summary.migrations_completed,
        mean_iteration: summary.mean_iteration_time,
    };
    let series = engine
        .history
        .iter()
        .map(|m| (m.max_device_tokens, m.avg_device_tokens))
        .collect();
    (stats, series)
}

/// Regenerates Fig. 15 (Qwen3 on a 4×4 WSC, cycling mixed workload).
pub fn run(quick: bool) -> Report {
    let iters = if quick { 40 } else { 150 };
    let mut report = Report::new(
        "fig15",
        "Run-time load traces under the four balancing strategies",
    )
    .columns([
        "Strategy",
        "Load ratio (max/avg)",
        "Interrupted iters",
        "Total stall",
        "Migrations",
        "Mean iter time",
    ]);

    let strategies = [
        ("No balance", BalancerKind::None),
        ("Greedy (invasive)", BalancerKind::Greedy),
        ("Topology-aware (invasive)", BalancerKind::TopologyAware),
        ("Non-invasive topology-aware", BalancerKind::NonInvasive),
    ];
    let mut ratios = Vec::new();
    for (name, kind) in strategies {
        let (stats, _series) = run_strategy(kind, iters, 17);
        ratios.push((name, stats.load_ratio, stats.interruptions));
        report.row([
            name.to_string(),
            format!("{:.2}", stats.load_ratio),
            stats.interruptions.to_string(),
            crate::report::fmt_time(stats.total_stall),
            stats.migrations.to_string(),
            crate::report::fmt_time(stats.mean_iteration),
        ]);
    }
    report.note(
        "Paper shape: without balancing the max load sits ~2x above average; \
         greedy balancing fixes the ratio but interrupts inference (~every 10 \
         iterations, ~2-iteration overhead); topology-aware shortens the \
         interruptions; non-invasive eliminates them entirely while staying \
         continuously active.",
    );
    report.note(format!(
        "Measured: unbalanced ratio {:.2} vs non-invasive {:.2}; invasive \
         strategies interrupted {} / {} iterations, non-invasive {}.",
        ratios[0].1, ratios[3].1, ratios[1].2, iters, ratios[3].2
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_invasive_has_no_interruptions_and_better_balance() {
        let (none, _) = run_strategy(BalancerKind::None, 30, 3);
        let (ni, _) = run_strategy(BalancerKind::NonInvasive, 30, 3);
        assert_eq!(ni.interruptions, 0);
        assert!(ni.total_stall == 0.0);
        assert!(ni.load_ratio < none.load_ratio);
    }

    #[test]
    fn greedy_interrupts() {
        let (greedy, _) = run_strategy(BalancerKind::Greedy, 30, 3);
        assert!(greedy.interruptions > 0);
        assert!(greedy.total_stall > 0.0);
    }
}
