//! Colocated vs. disaggregated serving: priced KV-transfer economics.
//!
//! Compares the classic colocated fleet (every replica runs prefill *and*
//! decode on a wafer) against a Mooncake/DistServe-style disaggregated
//! fleet (wafer-scale prefill pods feeding DGX decode replicas over an
//! explicitly priced KV-transfer hop) at matched arrival rates. Each point
//! reports the fleet-aggregate TTFT/TPOT percentiles, the hand-off
//! accounting (transfer count/bytes/seconds, hand-off latency, end-to-end
//! TTFT across tiers), and the modeled hardware cost, so the figure reads
//! off where the disaggregation knee pays for itself per modeled-hardware
//! dollar.
//!
//! Besides the usual [`Report`], the sweep emits a machine-readable
//! manifest to `target/figs/disagg_sweep.json` (schema
//! `moentwine/disagg_sweep/v1`, validated by [`validate`]). Every point is
//! run under **both** fleet schedulers (lock-step and event-heap) and the
//! summaries are asserted equal, so the manifest is byte-identical across
//! runs, `--threads` settings, and scheduler drives.

use std::fs;

use moe_model::ModelConfig;
use moe_workload::{RouterPolicy, Scenario, SchedulingMode, WorkloadMix};
use moentwine_core::comm::ClusterLayout;
use moentwine_core::engine::{EngineConfig, SummaryMode};
use moentwine_core::fleet::{
    Fleet, FleetConfig, FleetScheduler, FleetSummary, PlatformRefs, ReplicaRole,
};
use moentwine_spec::{BatchSpec, EngineSpec, ModelSpec, ServingSpec};

use crate::json::Value;
use crate::platforms::Platform;
use crate::report::fmt_time;
use crate::Report;

/// Schema identifier embedded in (and required of) the manifest.
pub const SCHEMA: &str = "moentwine/disagg_sweep/v1";

/// Manifest output path, relative to the working directory.
pub const MANIFEST_PATH: &str = "target/figs/disagg_sweep.json";

/// Master seed of the sweep (replica streams are split from it).
const SEED: u64 = 211;

/// Modeled hardware list prices, dollars per device. Rough public
/// list-price assumptions (a wafer die is amortized fab cost, a DGX GPU is
/// a B200-class card); only the *ratio* matters for the per-dollar axis,
/// and both constants are pinned in the manifest for reproducibility.
const WSC_DIE_DOLLARS: f64 = 1.2e4;
const DGX_GPU_DOLLARS: f64 = 3.5e4;

/// Which fleet shape a sweep point runs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Shape {
    /// Four colocated wafer replicas (prefill + decode on every wafer).
    Colocated,
    /// Two wafer prefill pods + two DGX decode replicas with the KV
    /// hand-off priced through the congestion model.
    Disaggregated,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Colocated => "colocated",
            Shape::Disaggregated => "disaggregated",
        }
    }
}

/// The per-replica engine template: hybrid continuous batching with a thin
/// KV share, mirroring `fleet_sweep` so colocated curves are comparable
/// across figures.
fn engine_template() -> EngineConfig {
    let model: ModelConfig = ModelSpec::preset("tiny").resolve().expect("tiny preset");
    EngineSpec::default()
        .with_seed(SEED)
        .with_workload(WorkloadMix::Blend(vec![
            (Scenario::Chat, 4.0),
            (Scenario::Coding, 1.0),
            (Scenario::Math, 1.0),
            (Scenario::Privacy, 4.0),
        ]))
        .with_batch(BatchSpec::Serving(ServingSpec {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 256,
            request_rate: 0.0,
            iteration_period: 0.02,
            summary: SummaryMode::Exact,
            workload: None,
        }))
        .with_kv_hbm_fraction(1.0e-3)
        .engine_config(model)
        .expect("valid fleet template")
}

/// The two platforms of the comparison: wafer pods for prefill (and the
/// whole colocated fleet), a DGX node per decode replica.
struct Platforms {
    prefill: Platform,
    prefill_plan: moentwine_core::MappingPlan,
    decode: Platform,
    decode_layout: ClusterLayout,
}

impl Platforms {
    fn build() -> Self {
        let prefill = Platform::wsc(4);
        let prefill_plan =
            crate::platforms::wsc_plan(&prefill, 4, crate::platforms::WscMapping::Er);
        let decode = Platform::dgx(1);
        let decode_layout = ClusterLayout::new(&decode.topo, 8);
        Platforms {
            prefill,
            prefill_plan,
            decode,
            decode_layout,
        }
    }

    /// Modeled fleet cost: wafer dies for prefill/colocated replicas, DGX
    /// GPUs for decode replicas.
    fn dollars(&self, shape: Shape) -> f64 {
        let wafer = self.prefill.topo.num_devices() as f64 * WSC_DIE_DOLLARS;
        let dgx = self.decode.topo.num_devices() as f64 * DGX_GPU_DOLLARS;
        match shape {
            Shape::Colocated => 4.0 * wafer,
            Shape::Disaggregated => 2.0 * wafer + 2.0 * dgx,
        }
    }
}

/// Runs one sweep point under `scheduler`.
fn run_point_with(
    platforms: &Platforms,
    shape: Shape,
    rate: f64,
    rounds: usize,
    scheduler: FleetScheduler,
) -> FleetSummary {
    let mut config = FleetConfig::new(4, RouterPolicy::LeastQueueDepth, rate, engine_template())
        .with_scheduler(scheduler);
    if shape == Shape::Disaggregated {
        config = config.with_roles(vec![
            ReplicaRole::Prefill,
            ReplicaRole::Prefill,
            ReplicaRole::Decode,
            ReplicaRole::Decode,
        ]);
    }
    let prefill = PlatformRefs {
        topo: &platforms.prefill.topo,
        table: &platforms.prefill.table,
        layout: &platforms.prefill_plan,
    };
    let decode = (shape == Shape::Disaggregated).then_some(PlatformRefs {
        topo: &platforms.decode.topo,
        table: &platforms.decode.table,
        layout: &platforms.decode_layout,
    });
    let mut fleet =
        Fleet::try_new_disaggregated(prefill, decode, config).expect("valid sweep point");
    fleet.run(rounds);
    fleet.summary()
}

/// Runs one sweep point under both schedulers, asserting they agree
/// bit-for-bit (the disaggregation paths must preserve the lockstep ==
/// event-heap contract).
fn run_point(platforms: &Platforms, shape: Shape, rate: f64, rounds: usize) -> FleetSummary {
    let heap = run_point_with(platforms, shape, rate, rounds, FleetScheduler::EventHeap);
    let lockstep = run_point_with(platforms, shape, rate, rounds, FleetScheduler::Lockstep);
    assert_eq!(
        heap,
        lockstep,
        "fleet schedulers diverged at {} rate {rate}",
        shape.name()
    );
    heap
}

fn point_json(platforms: &Platforms, shape: Shape, rate: f64, s: &FleetSummary) -> Value {
    let agg = &s.aggregate;
    let h = &s.handoff;
    let dollars = platforms.dollars(shape);
    Value::Obj(vec![
        ("variant".into(), Value::Str(shape.name().into())),
        ("arrival_rate".into(), Value::Num(rate)),
        ("ttft_p50".into(), Value::Num(agg.ttft_p50)),
        ("ttft_p95".into(), Value::Num(agg.ttft_p95)),
        ("ttft_p99".into(), Value::Num(agg.ttft_p99)),
        ("tpot_p50".into(), Value::Num(agg.tpot_p50)),
        ("tpot_p95".into(), Value::Num(agg.tpot_p95)),
        ("tpot_p99".into(), Value::Num(agg.tpot_p99)),
        ("e2e_p50".into(), Value::Num(agg.e2e_p50)),
        ("e2e_p99".into(), Value::Num(agg.e2e_p99)),
        ("goodput_rps".into(), Value::Num(agg.goodput_rps)),
        (
            "goodput_tokens_per_s".into(),
            Value::Num(agg.goodput_tokens_per_s),
        ),
        ("completed".into(), Value::Num(agg.completed as f64)),
        (
            "admission_rejects".into(),
            Value::Num(agg.admission_rejects as f64),
        ),
        ("mean_queue_depth".into(), Value::Num(agg.mean_queue_depth)),
        ("kv_transfers".into(), Value::Num(h.kv_transfers as f64)),
        ("kv_transfer_bytes".into(), Value::Num(h.kv_transfer_bytes)),
        (
            "kv_transfer_seconds".into(),
            Value::Num(h.kv_transfer_seconds),
        ),
        (
            "handoffs_completed".into(),
            Value::Num(h.handoffs_completed as f64),
        ),
        (
            "mean_handoff_latency".into(),
            Value::Num(h.mean_handoff_latency),
        ),
        ("mean_e2e_ttft".into(), Value::Num(h.mean_e2e_ttft)),
        ("hardware_dollars".into(), Value::Num(dollars)),
        (
            "goodput_per_megadollar".into(),
            Value::Num(agg.goodput_rps / (dollars / 1.0e6)),
        ),
        (
            "routed".into(),
            Value::Arr(s.routed.iter().map(|&r| Value::Num(r as f64)).collect()),
        ),
        ("sim_seconds".into(), Value::Num(s.sim_seconds)),
    ])
}

/// Builds the sweep manifest over explicit axes on a `threads`-wide worker
/// pool. Results merge by grid index, so the manifest is byte-identical
/// for every thread count.
fn sweep_manifest(
    quick: bool,
    rates: &[f64],
    rounds: usize,
    threads: usize,
    report: &mut Report,
) -> Value {
    let platforms = Platforms::build();
    let mut grid: Vec<(Shape, f64)> = Vec::new();
    for &rate in rates {
        for shape in [Shape::Colocated, Shape::Disaggregated] {
            grid.push((shape, rate));
        }
    }
    let pool = crate::perf::pool::WorkerPool::new(threads);
    let jobs: Vec<_> = grid
        .iter()
        .map(|&(shape, rate)| {
            let platforms = &platforms;
            move || run_point(platforms, shape, rate, rounds)
        })
        .collect();
    let summaries = pool.run(jobs);
    let mut points: Vec<Value> = Vec::new();
    for (&(shape, rate), s) in grid.iter().zip(&summaries) {
        let agg = &s.aggregate;
        let dollars = platforms.dollars(shape);
        report.row([
            shape.name().into(),
            format!("{rate}"),
            fmt_time(agg.ttft_p50),
            fmt_time(agg.ttft_p99),
            fmt_time(agg.tpot_p50),
            format!("{:.1}", agg.goodput_rps),
            format!("{}", s.handoff.kv_transfers),
            fmt_time(s.handoff.kv_transfer_seconds),
            format!("{:.1}", agg.goodput_rps / (dollars / 1.0e6)),
        ]);
        points.push(point_json(&platforms, shape, rate, s));
    }
    Value::Obj(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        ("quick".into(), Value::Bool(quick)),
        ("seed".into(), Value::Num(SEED as f64)),
        ("rounds".into(), Value::Num(rounds as f64)),
        ("wsc_die_dollars".into(), Value::Num(WSC_DIE_DOLLARS)),
        ("dgx_gpu_dollars".into(), Value::Num(DGX_GPU_DOLLARS)),
        ("points".into(), Value::Arr(points)),
    ])
}

/// Validates a manifest against the `moentwine/disagg_sweep/v1` schema:
/// schema tag, non-empty point list with both variants present, required
/// fields, monotone percentile ladders, positive modeled cost, **zero** KV
/// transfers on every colocated point, and **≥ 1 priced KV transfer with
/// nonzero transfer time** on every disaggregated point.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, SCHEMA)?;
    v::require_run_params(
        manifest,
        &["seed", "rounds", "wsc_die_dollars", "dgx_gpu_dollars"],
    )?;
    let mut seen = (false, false);
    for (i, point) in v::require_points(manifest)?.iter().enumerate() {
        let variant = v::point_str(point, i, "variant")?;
        v::check_point_common(
            point,
            i,
            &[
                "arrival_rate",
                "completed",
                "admission_rejects",
                "mean_queue_depth",
                "sim_seconds",
                "mean_handoff_latency",
                "mean_e2e_ttft",
                "goodput_per_megadollar",
            ],
        )?;
        if v::point_num(point, i, "hardware_dollars")? <= 0.0 {
            return Err(format!("point {i}: non-positive hardware_dollars"));
        }
        let transfers = v::point_num(point, i, "kv_transfers")?;
        let transfer_seconds = v::point_num(point, i, "kv_transfer_seconds")?;
        let transfer_bytes = v::point_num(point, i, "kv_transfer_bytes")?;
        match variant {
            "colocated" => {
                seen.0 = true;
                if transfers != 0.0 || transfer_seconds != 0.0 || transfer_bytes != 0.0 {
                    return Err(format!("point {i}: colocated point carries KV transfers"));
                }
            }
            "disaggregated" => {
                seen.1 = true;
                if transfers < 1.0 {
                    return Err(format!(
                        "point {i}: disaggregated point has no KV transfers"
                    ));
                }
                if transfer_seconds <= 0.0 || transfer_bytes <= 0.0 {
                    return Err(format!(
                        "point {i}: disaggregated point has unpriced KV transfers"
                    ));
                }
            }
            other => return Err(format!("point {i}: unknown variant {other:?}")),
        }
    }
    if !(seen.0 && seen.1) {
        return Err("manifest must carry both colocated and disaggregated points".into());
    }
    Ok(())
}

/// Runs the disaggregation sweep single-threaded (the figure-registry
/// entry point).
pub fn run(quick: bool) -> Report {
    run_with_threads(quick, 1)
}

/// Runs the disaggregation sweep with grid points spread over `threads`
/// workers, writes `target/figs/disagg_sweep.json` (byte-identical for any
/// thread count), and returns the human-readable report.
pub fn run_with_threads(quick: bool, threads: usize) -> Report {
    let rounds = if quick { 400 } else { 1500 };
    let rates: Vec<f64> = if quick {
        vec![8.0e3, 24.0e3]
    } else {
        vec![4.0e3, 12.0e3, 36.0e3]
    };
    let mut report = Report::new(
        "disagg_sweep",
        "Colocated vs. disaggregated prefill/decode: priced KV-transfer economics",
    )
    .columns([
        "Variant",
        "Rate (req/s)",
        "TTFT p50",
        "TTFT p99",
        "TPOT p50",
        "Goodput (req/s)",
        "KV transfers",
        "Transfer time",
        "Goodput/M$",
    ]);
    let manifest = sweep_manifest(quick, &rates, rounds, threads, &mut report);
    match fs::create_dir_all("target/figs")
        .and_then(|_| fs::write(MANIFEST_PATH, manifest.pretty()))
    {
        Ok(()) => report.note(format!("machine-readable manifest: {MANIFEST_PATH}")),
        Err(e) => report.note(format!("WARNING: could not write {MANIFEST_PATH}: {e}")),
    }
    report.note(
        "deterministic: every point runs under both fleet schedulers and \
         asserts bit-identical summaries; grid points merge by index, so \
         the manifest is byte-identical across runs, --threads settings, \
         and scheduler drives (schema moentwine/disagg_sweep/v1)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest_with_threads(threads: usize) -> Value {
        let mut report = Report::new("disagg_sweep_test", "t");
        sweep_manifest(true, &[20.0e3], 150, threads, &mut report)
    }

    #[test]
    fn manifest_is_byte_identical_across_runs_and_threads_and_validates() {
        let a = tiny_manifest_with_threads(1);
        let b = tiny_manifest_with_threads(1);
        assert_eq!(a.pretty(), b.pretty(), "sweep must be deterministic");
        let parallel = tiny_manifest_with_threads(3);
        assert_eq!(
            a.pretty(),
            parallel.pretty(),
            "thread count must not change the manifest"
        );
        validate(&a).expect("schema");
        let reparsed = Value::parse(&a.pretty()).expect("parse");
        validate(&reparsed).expect("schema after round-trip");
    }

    #[test]
    fn validate_rejects_unpriced_and_single_variant_manifests() {
        assert!(validate(&Value::Obj(vec![])).is_err());
        // Zeroing the disaggregated transfer accounting must fail: the
        // whole point of the figure is a *priced* hand-off.
        let mut manifest = tiny_manifest_with_threads(1);
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    if let Value::Arr(points) = v {
                        for point in points.iter_mut() {
                            if let Value::Obj(fields) = point {
                                let disagg = fields.iter().any(|(pk, pv)| {
                                    pk == "variant" && pv.as_str() == Some("disaggregated")
                                });
                                if disagg {
                                    for (pk, pv) in fields.iter_mut() {
                                        if pk == "kv_transfer_seconds" {
                                            *pv = Value::Num(0.0);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert!(validate(&manifest).unwrap_err().contains("unpriced"));
        // A manifest with only colocated points is incomplete.
        let mut manifest = tiny_manifest_with_threads(1);
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    if let Value::Arr(points) = v {
                        points.retain(|p| {
                            p.get("variant").and_then(Value::as_str) == Some("colocated")
                        });
                    }
                }
            }
        }
        assert!(validate(&manifest).unwrap_err().contains("both"));
    }
}
