//! Fig. 13(d): Hierarchical ER-Mapping on multi-wafer systems.

use moe_model::ModelConfig;

use crate::platforms::{comm_latency, wsc_plan, Fidelity, Platform, WscMapping};
use crate::report::fmt_improvement;
use crate::Report;

/// Regenerates Fig. 13(d): Qwen3 on 4×(4×4) / 4×(6×6) / 4×(8×8) systems;
/// pure ER and hierarchical ER improvements over the baseline mapping.
pub fn run(quick: bool) -> Report {
    let model = ModelConfig::qwen3_235b();
    let mut report =
        Report::new("fig13d", "Hierarchical ER-Mapping on multi-WSC systems").columns([
            "System",
            "TP (per wafer)",
            "Baseline total",
            "ER improvement",
            "HER improvement",
        ]);

    let cases: Vec<(&str, u16, Vec<usize>)> = if quick {
        vec![("4x(4x4)", 4, vec![4])]
    } else {
        vec![
            ("4x(4x4)", 4, vec![4, 8, 16]),
            ("4x(6x6)", 6, vec![4, 6, 36]),
            ("4x(8x8)", 8, vec![4, 8, 16, 32]),
        ]
    };

    let mut her_all_positive = true;
    for (name, n, tps) in cases {
        let platform = Platform::multi_wsc(2, 2, n);
        for tp in tps {
            let tokens = 256;
            let base = comm_latency(
                &platform,
                &wsc_plan(&platform, tp, WscMapping::Baseline),
                &model,
                tokens,
                Fidelity::Analytic,
            );
            // Pure ER: TP groups strided over the *global* grid.
            let er = comm_latency(
                &platform,
                &wsc_plan(&platform, tp, WscMapping::Er),
                &model,
                tokens,
                Fidelity::Analytic,
            );
            // HER: per-wafer ER + two-step hierarchical all-reduce.
            let her = comm_latency(
                &platform,
                &wsc_plan(&platform, tp, WscMapping::Her),
                &model,
                tokens,
                Fidelity::Analytic,
            );
            let her_gain = (base.total() - her.total()) / base.total();
            her_all_positive &= her_gain > 0.0;
            report.row([
                name.to_string(),
                tp.to_string(),
                crate::report::fmt_time(base.total()),
                fmt_improvement(base.total(), er.total()),
                fmt_improvement(base.total(), her.total()),
            ]);
        }
    }
    report.note(
        "Paper shape: pure ER's gains vary wildly across parallelism (its \
         rings cross wafer borders), while HER improves on the baseline in \
         every configuration (up to 62%) by decoupling the all-reduce into \
         intra-wafer reduce-scatter + inter-wafer all-gather.",
    );
    report.note(format!(
        "HER positive in every measured configuration: {her_all_positive}."
    ));
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn her_always_beats_baseline() {
        let r = super::run(true);
        for row in &r.rows {
            assert!(row[4].starts_with('+'), "HER regressed: {row:?}");
        }
    }
}
