//! Fig. 6: all-to-all vs all-reduce latency across WSC scales, for prefill
//! and decode token counts.

use moe_model::ModelConfig;

use crate::platforms::{comm_latency, wsc_plan, Fidelity, Platform, WscMapping};
use crate::report::fmt_time;
use crate::Report;

/// Regenerates Fig. 6 (baseline mapping, Qwen3, TP=4).
pub fn run(quick: bool) -> Report {
    let model = ModelConfig::qwen3_235b();
    let mut report = Report::new(
        "fig06",
        "All-to-all vs all-reduce latency across WSC scales",
    )
    .columns([
        "Scale",
        "Stage",
        "All-reduce",
        "All-to-all",
        "A2A / AR",
        "Link-latency share of A2A",
    ]);

    let scales: Vec<(&str, Platform)> = if quick {
        vec![("4x4", Platform::wsc(4)), ("6x6", Platform::wsc(6))]
    } else {
        vec![
            ("4x4", Platform::wsc(4)),
            ("6x6", Platform::wsc(6)),
            ("8x8", Platform::wsc(8)),
            ("4x(6x6)", Platform::multi_wsc(2, 2, 6)),
            ("4x(8x8)", Platform::multi_wsc(2, 2, 8)),
        ]
    };

    let mut ratios = Vec::new();
    for (name, platform) in &scales {
        let plan = wsc_plan(platform, 4, WscMapping::Baseline);
        // DES on single wafers, analytic on multi-wafer systems (see
        // DESIGN.md §5).
        let fidelity = if platform.topo.num_devices() <= 64 {
            Fidelity::Des
        } else {
            Fidelity::Analytic
        };
        for (stage, tokens) in [("Prefill", 4096u32), ("Decode", 256u32)] {
            let c = comm_latency(platform, &plan, &model, tokens, fidelity);
            let ratio = c.all_to_all / c.all_reduce;
            if stage == "Decode" {
                ratios.push(ratio);
            }
            report.row([
                name.to_string(),
                stage.to_string(),
                fmt_time(c.all_reduce),
                fmt_time(c.all_to_all),
                format!("{ratio:.1}x"),
                format!("{:.0}%", c.link_latency_share * 100.0),
            ]);
        }
    }
    let first = ratios.first().copied().unwrap_or(0.0);
    let last = ratios.last().copied().unwrap_or(0.0);
    report.note(format!(
        "Paper shape: all-reduce stays near-flat while all-to-all surges with \
         scale — measured decode A2A/AR ratio grows from {first:.1}x to {last:.1}x."
    ));
    report.note(
        "Link latency contributes a visible share only at decode batch sizes; \
         prefill is fully volume-dominated (paper omits prefill link latency).",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn a2a_dominates_and_grows() {
        let r = super::run(true);
        // Decode rows: A2A/AR ratio column parses as >1 and grows.
        let decode_ratios: Vec<f64> = r
            .rows
            .iter()
            .filter(|row| row[1] == "Decode")
            .map(|row| row[4].trim_end_matches('x').parse::<f64>().unwrap())
            .collect();
        assert!(decode_ratios.iter().all(|&x| x > 1.0));
        assert!(decode_ratios.last().unwrap() >= decode_ratios.first().unwrap());
    }
}
