//! Table I: parameters of the evaluation MoE models.

use moe_model::{ModelConfig, Precision};

use crate::Report;

/// Regenerates Table I from the model presets.
pub fn run(_quick: bool) -> Report {
    let mut report = Report::new("table1", "Parameters of evaluation MoE models").columns([
        "Model",
        "Size",
        "Layers (sparse/total)",
        "Single expert size",
        "Experts (act/total)",
    ]);
    for m in ModelConfig::evaluation_suite() {
        let mib = m.expert_bytes(Precision::Int8) / (1024.0 * 1024.0);
        report.row([
            m.name.clone(),
            format!("{:.0}B", m.total_params_b),
            format!("{} / {}", m.num_sparse_layers, m.num_layers),
            format!("{mib:.0} MiB"),
            format!("{} / {}", m.experts_per_token, m.num_experts),
        ]);
    }
    report.note(
        "Paper Table I expert sizes: 42 / 18 / 23 / 189 / 288 MB — reproduced exactly \
         from hidden × intermediate dimensions at INT8.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn five_models() {
        let r = super::run(true);
        assert_eq!(r.rows.len(), 5);
        assert!(r.rows[0][3].contains("42"));
        assert!(r.rows[4][3].contains("288"));
    }
}
