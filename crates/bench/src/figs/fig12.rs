//! Fig. 12: expert-load traces across inference scenarios — device load
//! ratios fluctuate briefly, then stabilise in fixed scenarios.

use moe_model::ModelConfig;
use moe_workload::{Scenario, TraceGenerator, WorkloadMix};
use moentwine_core::placement::ExpertPlacement;

use crate::Report;

/// Device-load ratio trace for one scenario: returns per-iteration
/// max/mean device load ratios (layer 0, Qwen3, EP=8 as in the paper).
pub fn load_ratio_trace(scenario: Scenario, iterations: usize, seed: u64) -> Vec<f64> {
    let model = ModelConfig::qwen3_235b();
    let devices = 8;
    let placement = ExpertPlacement::balanced(model.num_experts as usize, devices, 0);
    let mut gen = TraceGenerator::new(&model, WorkloadMix::Fixed(scenario), 1, 2048, seed);
    let mut ratios = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let trace = gen.next_iteration();
        let totals = trace.layers[0].expert_totals();
        let loads = placement.device_loads(&totals.iter().map(|&t| t as f64).collect::<Vec<_>>());
        let max = loads.iter().copied().fold(0.0, f64::max);
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        ratios.push(if mean > 0.0 { max / mean } else { 1.0 });
    }
    ratios
}

fn stddev(xs: &[f64]) -> f64 {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    (xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Regenerates Fig. 12's stability statistics.
pub fn run(quick: bool) -> Report {
    let iterations = if quick { 200 } else { 2000 };
    let mut report = Report::new("fig12", "Expert load ratios across scenarios (Qwen3, EP=8)")
        .columns([
            "Scenario",
            "Peak load ratio",
            "Mean ratio (post-warmup)",
            "Ratio σ early (first 10%)",
            "Ratio σ late (last 50%)",
            "Stable?",
        ]);
    for scenario in Scenario::all() {
        let trace = load_ratio_trace(scenario, iterations, 42);
        let warmup = iterations / 10;
        let early = &trace[..warmup];
        let late = &trace[iterations / 2..];
        let peak = trace.iter().copied().fold(0.0, f64::max);
        let late_mean = late.iter().sum::<f64>() / late.len() as f64;
        let stable = stddev(late) <= stddev(early) * 1.5 && stddev(late) < 0.15 * late_mean;
        report.row([
            scenario.to_string(),
            format!("{peak:.2}"),
            format!("{late_mean:.2}"),
            format!("{:.3}", stddev(early)),
            format!("{:.3}", stddev(late)),
            if stable { "yes" } else { "no" }.to_string(),
        ]);
    }
    report.note(
        "Paper shape: peak device loads reach ≈2–3× the average, and within \
         every fixed scenario the load ratios stabilise after a brief warm-up.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_workload::Scenario;

    #[test]
    fn loads_imbalanced_and_stable() {
        let trace = load_ratio_trace(Scenario::Math, 300, 7);
        let late = &trace[150..];
        let mean = late.iter().sum::<f64>() / late.len() as f64;
        assert!(mean > 1.3, "persistent imbalance expected, got {mean}");
        assert!(stddev(late) < 0.15 * mean, "ratios should be stable");
    }

    #[test]
    fn all_scenarios_reported() {
        let r = run(true);
        assert_eq!(r.rows.len(), 4);
        assert!(r.rows.iter().all(|row| row[5] == "yes"));
    }
}
