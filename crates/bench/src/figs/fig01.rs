//! Fig. 1(a): per-device MoE latency breakdown across cluster generations.

use moe_model::{InferencePhase, ModelConfig};
use moentwine_core::balancer::BalancerKind;
use moentwine_core::comm::{ClusterLayout, ParallelLayout};
use moentwine_core::engine::{BatchMode, EngineConfig, InferenceEngine};

use crate::platforms::{wsc_plan, Platform, WscMapping};
use crate::report::fmt_time;
use crate::Report;

fn engine_row(
    platform: &Platform,
    layout: &dyn ParallelLayout,
    model: &ModelConfig,
    balancer: BalancerKind,
    iters: usize,
) -> (f64, f64, f64, f64) {
    let config = EngineConfig::new(model.clone())
        .with_batch(BatchMode::Fixed {
            tokens_per_group: 256,
            avg_context: 4096.0,
            phase: InferencePhase::Decode,
        })
        .with_balancer(balancer);
    let mut config = config;
    config.comm_layer_stride = 4;
    let mut engine = InferenceEngine::new(&platform.topo, &platform.table, layout, config);
    let s = engine.run(iters);
    (
        s.mean_all_to_all,
        s.mean_moe_compute,
        s.mean_migration_stall,
        s.mean_iteration_time,
    )
}

/// Regenerates Fig. 1(a): DeepSeek-V3 MoE latency breakdown per device with
/// EP equal to the device count on each platform (TP=8 everywhere, so the
/// per-device token load is identical and iteration times are comparable).
pub fn run(quick: bool) -> Report {
    let model = ModelConfig::deepseek_v3();
    let iters = if quick { 4 } else { 12 };
    let mut report = Report::new(
        "fig01",
        "MoE latency breakdown per device (DeepSeek-V3, EP = device count)",
    )
    .columns([
        "Platform",
        "E/D",
        "All-to-all",
        "MoE compute",
        "Migration",
        "Total (rel. to DGX x4)",
    ]);

    type Breakdown = (f64, f64, f64, f64);
    let mut rows: Vec<(String, usize, Breakdown)> = Vec::new();

    for (name, nodes) in [("DGX x1", 1u16), ("DGX x4", 4), ("DGX x9", 9)] {
        if quick && nodes == 9 {
            continue;
        }
        let p = Platform::dgx(nodes);
        let layout = ClusterLayout::new(&p.topo, 8);
        let d = p.topo.num_devices();
        rows.push((
            name.to_string(),
            d,
            engine_row(&p, &layout, &model, BalancerKind::None, iters),
        ));
    }
    {
        let p = Platform::nvl72();
        let layout = ClusterLayout::new(&p.topo, 8);
        rows.push((
            "NVL72".into(),
            72,
            engine_row(&p, &layout, &model, BalancerKind::None, iters),
        ));
    }
    {
        let p = Platform::multi_wsc(2, 2, 8);
        let plan = wsc_plan(&p, 8, WscMapping::Baseline);
        rows.push((
            "WSC (ported)".into(),
            256,
            engine_row(&p, &plan, &model, BalancerKind::None, iters),
        ));
        let her = wsc_plan(&p, 8, WscMapping::Her);
        rows.push((
            "WSC + MoEntwine".into(),
            256,
            engine_row(&p, &her, &model, BalancerKind::NonInvasive, iters),
        ));
    }

    // Normalise to DGX x4 when present, else the first row.
    let norm = rows
        .iter()
        .find(|(n, _, _)| n == "DGX x4")
        .map(|(_, _, t)| t.3)
        .unwrap_or(rows[0].2 .3);
    for (name, devices, (a2a, comp, stall, total)) in &rows {
        report.row([
            name.clone(),
            format!("256/{devices}"),
            fmt_time(*a2a),
            fmt_time(*comp),
            fmt_time(*stall),
            format!("{:.2}", total / norm),
        ]);
    }
    report.note(
        "Paper shape: beyond 4 DGX nodes cross-node all-to-all exceeds \
         computation; NVL72 improves by scaling the fast domain to 72; the \
         naive WSC port suffers mesh congestion; MoEntwine (HER + NI-Balancer) \
         unlocks the 256-device EP.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn moentwine_beats_naive_wsc_port() {
        let r = super::run(true);
        let total = |name: &str| {
            r.rows
                .iter()
                .find(|row| row[0] == name)
                .map(|row| row[5].parse::<f64>().unwrap())
                .unwrap()
        };
        assert!(total("WSC + MoEntwine") < total("WSC (ported)"));
    }
}
