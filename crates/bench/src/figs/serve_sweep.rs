//! Request-level serving sweep: latency–throughput curves under load.
//!
//! Sweeps arrival rate × scenario mix × pricing backend through the
//! engine's continuous-batching serving layer and reports the SLO
//! percentiles of paper Fig. 11(e) / §VI-C — p50/p95/p99 TTFT and TPOT,
//! end-to-end latency, goodput, queue depth, and admission rejects — per
//! sweep point. Besides the usual [`Report`], the sweep emits a
//! machine-readable manifest to `target/figs/serve_sweep.json`
//! (schema `moentwine/serve_sweep/v1`, validated by [`validate`]).
//!
//! Everything is seeded: the same seed reproduces a byte-identical
//! manifest across runs (pinned by a unit test and the CI smoke step).

use std::fs;

use moe_model::ModelConfig;
use moe_workload::{Scenario, WorkloadMix};
use moentwine_core::engine::{InferenceEngine, ServingSummary};
use moentwine_spec::{BatchSpec, EngineSpec, ModelSpec, ServingSpec};
use wsc_sim::CongestionBackend;

use crate::json::Value;
use crate::platforms::Platform;
use crate::report::fmt_time;
use crate::Report;

/// Schema identifier embedded in (and required of) the manifest.
pub const SCHEMA: &str = "moentwine/serve_sweep/v1";

/// Manifest output path, relative to the working directory.
pub const MANIFEST_PATH: &str = "target/figs/serve_sweep.json";

/// Master seed of the sweep (every engine run derives from it).
const SEED: u64 = 97;

/// A scaled-down model so the sweep prices hundreds of serving iterations
/// per point quickly; serving dynamics (admission, chunked prefill,
/// continuous batching) are model-size independent. Resolved through the
/// spec layer's preset registry, like every scenario file.
fn sweep_model() -> ModelConfig {
    ModelSpec::preset("tiny").resolve().expect("tiny preset")
}

/// The swept scenario mixes: `(name, gating + request-length blend)`.
fn mixes() -> Vec<(&'static str, WorkloadMix)> {
    vec![
        (
            "balanced",
            WorkloadMix::Blend(Scenario::all().map(|s| (s, 1.0)).to_vec()),
        ),
        (
            // Short prompts and outputs: chat / privacy traffic.
            "interactive",
            WorkloadMix::Blend(vec![
                (Scenario::Chat, 6.0),
                (Scenario::Coding, 1.0),
                (Scenario::Math, 1.0),
                (Scenario::Privacy, 4.0),
            ]),
        ),
        (
            // Long prompts (coding) and long chains of thought (math).
            "reasoning",
            WorkloadMix::Blend(vec![
                (Scenario::Chat, 1.0),
                (Scenario::Coding, 4.0),
                (Scenario::Math, 6.0),
                (Scenario::Privacy, 1.0),
            ]),
        ),
    ]
}

/// Runs one sweep point and returns its serving summary. The engine
/// config is constructed through the declarative spec layer, so every
/// point is exactly what a scenario file with these knobs would run.
fn run_point(
    platform: &Platform,
    plan: &moentwine_core::MappingPlan,
    rate: f64,
    mix: &WorkloadMix,
    backend: CongestionBackend,
    iterations: usize,
) -> ServingSummary {
    let spec = EngineSpec::default()
        .with_seed(SEED)
        .with_backend(backend)
        .with_workload(mix.clone())
        .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 256, rate)))
        // A thin KV share (~700k tokens on this platform) so the admission
        // budget — not just the concurrency cap — shapes the queueing curve.
        .with_kv_hbm_fraction(1.0e-3);
    let config = spec.engine_config(sweep_model()).expect("valid sweep spec");
    let mut engine = InferenceEngine::new(&platform.topo, &platform.table, plan, config);
    engine.run(iterations);
    engine.serving_summary()
}

fn point_json(rate: f64, mix_name: &str, backend: CongestionBackend, s: &ServingSummary) -> Value {
    Value::Obj(vec![
        ("arrival_rate".into(), Value::Num(rate)),
        ("mix".into(), Value::Str(mix_name.into())),
        ("backend".into(), Value::Str(backend.name().into())),
        ("ttft_p50".into(), Value::Num(s.ttft_p50)),
        ("ttft_p95".into(), Value::Num(s.ttft_p95)),
        ("ttft_p99".into(), Value::Num(s.ttft_p99)),
        ("tpot_p50".into(), Value::Num(s.tpot_p50)),
        ("tpot_p95".into(), Value::Num(s.tpot_p95)),
        ("tpot_p99".into(), Value::Num(s.tpot_p99)),
        ("e2e_p50".into(), Value::Num(s.e2e_p50)),
        ("e2e_p99".into(), Value::Num(s.e2e_p99)),
        ("goodput_rps".into(), Value::Num(s.goodput_rps)),
        (
            "goodput_tokens_per_s".into(),
            Value::Num(s.goodput_tokens_per_s),
        ),
        ("completed".into(), Value::Num(s.completed as f64)),
        (
            "admission_rejects".into(),
            Value::Num(s.admission_rejects as f64),
        ),
        ("mean_queue_depth".into(), Value::Num(s.mean_queue_depth)),
        ("sim_seconds".into(), Value::Num(s.sim_seconds)),
    ])
}

/// Builds the sweep manifest over explicit axes (the unit tests use a
/// reduced grid; [`run`] uses the full/quick grids). Grid points are
/// independent engine runs, so they execute on a `threads`-wide
/// [`WorkerPool`](crate::perf::pool::WorkerPool); results merge in grid
/// order, so the manifest is byte-identical for every thread count.
fn sweep_manifest(
    quick: bool,
    rates: &[f64],
    mixes: &[(&'static str, WorkloadMix)],
    backends: &[CongestionBackend],
    iterations: usize,
    threads: usize,
    report: &mut Report,
) -> Value {
    let platform = Platform::wsc(4);
    let plan = crate::platforms::wsc_plan(&platform, 4, crate::platforms::WscMapping::Er);
    let mut grid: Vec<(f64, &'static str, &WorkloadMix, CongestionBackend)> = Vec::new();
    for &rate in rates {
        for (mix_name, mix) in mixes {
            for &backend in backends {
                grid.push((rate, mix_name, mix, backend));
            }
        }
    }
    let pool = crate::perf::pool::WorkerPool::new(threads);
    let jobs: Vec<_> = grid
        .iter()
        .map(|&(rate, _, mix, backend)| {
            let (platform, plan) = (&platform, &plan);
            move || run_point(platform, plan, rate, mix, backend, iterations)
        })
        .collect();
    let summaries = pool.run(jobs);
    let mut points: Vec<Value> = Vec::new();
    for (&(rate, mix_name, _, backend), s) in grid.iter().zip(&summaries) {
        report.row([
            format!("{rate}"),
            mix_name.into(),
            backend.name().into(),
            fmt_time(s.ttft_p50),
            fmt_time(s.ttft_p99),
            fmt_time(s.tpot_p50),
            fmt_time(s.e2e_p99),
            format!("{:.1}", s.goodput_rps),
            format!("{}", s.completed),
            format!("{}", s.admission_rejects),
        ]);
        points.push(point_json(rate, mix_name, backend, s));
    }
    Value::Obj(vec![
        ("schema".into(), Value::Str(SCHEMA.into())),
        ("quick".into(), Value::Bool(quick)),
        ("seed".into(), Value::Num(SEED as f64)),
        ("iterations".into(), Value::Num(iterations as f64)),
        ("points".into(), Value::Arr(points)),
    ])
}

/// Validates a manifest against the `moentwine/serve_sweep/v1` schema:
/// schema tag, non-empty point list, required fields with the right types,
/// non-decreasing percentile ladders, and non-negative throughput.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, SCHEMA)?;
    v::require_run_params(manifest, &["seed", "iterations"])?;
    for (i, point) in v::require_points(manifest)?.iter().enumerate() {
        for key in ["mix", "backend"] {
            v::point_str(point, i, key)?;
        }
        v::check_point_common(
            point,
            i,
            &[
                "arrival_rate",
                "completed",
                "admission_rejects",
                "mean_queue_depth",
                "sim_seconds",
            ],
        )?;
    }
    Ok(())
}

/// Runs the serving sweep single-threaded (the `repro_all` entry point,
/// which parallelizes across figures instead).
pub fn run(quick: bool) -> Report {
    run_with_threads(quick, 1)
}

/// Runs the serving sweep with grid points spread over `threads` workers,
/// writes `target/figs/serve_sweep.json` (byte-identical for any thread
/// count), and returns the human-readable report.
pub fn run_with_threads(quick: bool, threads: usize) -> Report {
    // Decode advances one token per sequence per iteration, so completing
    // median chat/math outputs (256 / 2048 tokens) needs iteration counts
    // of the same order. Arrival rates are sized to this platform's
    // measured capacity (tiny-model iterations price in tens of
    // microseconds; sustained goodput saturates around ~9k requests per
    // simulated second): the sweep spans clearly-underloaded through
    // saturated, which is where the latency-throughput knee lives.
    let iterations = if quick { 1000 } else { 4000 };
    let rates: Vec<f64> = if quick {
        vec![4.0e3, 16.0e3]
    } else {
        vec![2.0e3, 8.0e3, 32.0e3]
    };
    let mixes = mixes();
    let backends = [
        CongestionBackend::Analytic,
        CongestionBackend::FlowSimCached,
        CongestionBackend::FlowSim,
    ];
    let mut report = Report::new(
        "serve_sweep",
        "Request-level serving: latency-throughput sweep",
    )
    .columns([
        "Rate (req/s)",
        "Mix",
        "Backend",
        "TTFT p50",
        "TTFT p99",
        "TPOT p50",
        "E2E p99",
        "Goodput (req/s)",
        "Completed",
        "Rejects",
    ]);
    let manifest = sweep_manifest(
        quick,
        &rates,
        &mixes,
        &backends,
        iterations,
        threads,
        &mut report,
    );
    match fs::create_dir_all("target/figs")
        .and_then(|_| fs::write(MANIFEST_PATH, manifest.pretty()))
    {
        Ok(()) => report.note(format!("machine-readable manifest: {MANIFEST_PATH}")),
        Err(e) => report.note(format!("WARNING: could not write {MANIFEST_PATH}: {e}")),
    }
    report.note(
        "deterministic: the same seed reproduces a byte-identical manifest \
         (schema moentwine/serve_sweep/v1)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_manifest_with_threads(threads: usize) -> (Value, Report) {
        let mut report = Report::new("serve_sweep_test", "t");
        let manifest = sweep_manifest(
            true,
            &[50.0e3, 100.0e3],
            &[(
                "privacy",
                WorkloadMix::Blend(vec![(Scenario::Privacy, 1.0)]),
            )],
            &[CongestionBackend::Analytic],
            400,
            threads,
            &mut report,
        );
        (manifest, report)
    }

    fn tiny_manifest() -> (Value, Report) {
        tiny_manifest_with_threads(1)
    }

    #[test]
    fn manifest_is_byte_identical_across_runs_and_validates() {
        let (a, _) = tiny_manifest();
        let (b, _) = tiny_manifest();
        assert_eq!(a.pretty(), b.pretty(), "sweep must be deterministic");
        validate(&a).expect("schema");
        // And the parser round-trips what the printer emits.
        let reparsed = Value::parse(&a.pretty()).expect("parse");
        validate(&reparsed).expect("schema after round-trip");
    }

    #[test]
    fn parallel_grid_matches_serial_byte_for_byte() {
        let (serial, serial_report) = tiny_manifest_with_threads(1);
        let (parallel, parallel_report) = tiny_manifest_with_threads(3);
        assert_eq!(serial.pretty(), parallel.pretty());
        assert_eq!(serial_report.to_markdown(), parallel_report.to_markdown());
    }

    #[test]
    fn validate_rejects_broken_manifests() {
        let (mut manifest, _) = tiny_manifest();
        assert!(validate(&Value::Obj(vec![])).is_err());
        assert!(validate(&Value::Obj(vec![(
            "schema".into(),
            Value::Str("other/v9".into())
        )]))
        .is_err());
        // Empty point list is a schema violation.
        if let Value::Obj(members) = &mut manifest {
            for (k, v) in members.iter_mut() {
                if k == "points" {
                    *v = Value::Arr(vec![]);
                }
            }
        }
        assert!(validate(&manifest).unwrap_err().contains("empty points"));
    }
}
