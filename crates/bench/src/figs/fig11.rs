//! Fig. 11: hot/cold link heatmaps of the attention all-reduce vs the MoE
//! all-to-all, and their complementarity.

use moentwine_core::heatmap::phase_heatmaps;

use crate::platforms::{wsc_plan, Platform, WscMapping};
use crate::Report;

/// Regenerates Fig. 11's heatmap statistics for the paper's three cases.
pub fn run(_quick: bool) -> Report {
    let mut report = Report::new(
        "fig11",
        "Hot/cold link complementarity of all-reduce vs all-to-all",
    )
    .columns([
        "Case",
        "Mapping",
        "AR hot links",
        "A2A hot links",
        "Hot-set overlap",
        "Complementarity",
    ]);

    // (label, wafer side, TP degree, mapping)
    let cases = [
        ("4x4 TP=4", 4u16, 4usize, WscMapping::Er),
        ("6x6 TP=4", 6, 4, WscMapping::Er),
        ("4x4 TP=2", 4, 2, WscMapping::Er),
        ("4x4 TP=4 (baseline)", 4, 4, WscMapping::Baseline),
    ];
    for (label, n, tp, mapping) in cases {
        let platform = Platform::wsc(n);
        let plan = wsc_plan(&platform, tp, mapping);
        let hm = phase_heatmaps(&platform.topo, &platform.table, &plan, 256, 8, 8192.0, 64);
        let num_links = platform.topo.num_links();
        let ar_hot = num_links - hm.cold_in_all_reduce().len();
        let a2a_hot = num_links - hm.cold_in_all_to_all().len();
        report.row([
            label.to_string(),
            format!("{}", plan.kind()),
            format!("{ar_hot}/{num_links}"),
            format!("{a2a_hot}/{num_links}"),
            format!("{:.2}", hm.overlap),
            format!("{:.2}", hm.complementarity()),
        ]);
    }
    report.note(
        "Paper claim: under ER-Mapping the hot links of the two phases are \
         complementary in all cases — AR heat sits on FTD-boundary ring legs, \
         A2A heat stays inside FTDs; migration can alternate between the \
         complementary cold sets.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn er_cases_are_complementary() {
        let r = super::run(true);
        for row in r.rows.iter().filter(|row| row[1] == "ER-Mapping") {
            let comp: f64 = row[5].parse().unwrap();
            assert!(comp > 0.5, "case {} complementarity {comp}", row[0]);
        }
    }
}
