//! Fig. 4: achievable EP per cluster and the compute/memory breakdown of
//! per-device MoE time.
//!
//! A pure roofline sweep: as EP grows, each device holds `E/EP` experts, so
//! the decode-time weight traffic per device shrinks while compute per
//! token is unchanged — per-device performance rises. `E/EP < 1` models the
//! sharded/fractional residency WSCs enable.

use moe_model::{CostModel, DeviceSpec, ModelConfig};

use crate::report::{fmt_ratio, fmt_time};
use crate::Report;

/// Tokens routed per device per iteration (a saturated large-batch decode,
/// matching the paper's premise that "sufficient input tokens are
/// available").
const TOKENS_PER_DEVICE: f64 = 4096.0;

/// Per-device MoE time breakdown at a given EP degree.
///
/// The paper's Fig. 4 stacks compute and memory-access time, i.e. it
/// composes them as a **sum** (no overlap) — we report the same
/// composition here.
pub fn breakdown(model: &ModelConfig, ep: usize) -> (f64, f64) {
    let cost = CostModel::new(DeviceSpec::b200());
    let resident = model.num_experts as f64 / ep as f64;
    // Activated residents: every resident expert is hit by some token in a
    // saturated decode batch (the paper's memory-access argument).
    let t = cost.moe_device_time(model, TOKENS_PER_DEVICE, resident);
    (t.compute_time, t.memory_time)
}

/// Regenerates Fig. 4.
pub fn run(_quick: bool) -> Report {
    let mut report = Report::new(
        "fig04",
        "EP scaling: per-device MoE performance and time breakdown",
    )
    .columns([
        "Model",
        "EP",
        "Platform",
        "Compute",
        "Memory",
        "Memory share",
        "Perf vs EP=8",
    ]);
    let eps: [(usize, &str); 5] = [
        (8, "DGX x1"),
        (16, "DGX x2"),
        (32, "DGX x4"),
        (72, "NVL72"),
        (256, "WSC"),
    ];
    for model in [ModelConfig::deepseek_v3(), ModelConfig::qwen3_235b()] {
        let (c8, m8) = breakdown(&model, 8);
        let base_perf = TOKENS_PER_DEVICE / (c8 + m8);
        for (ep, platform) in eps {
            let (c, m) = breakdown(&model, ep);
            let perf = TOKENS_PER_DEVICE / (c + m);
            report.row([
                model.name.clone(),
                ep.to_string(),
                platform.to_string(),
                fmt_time(c),
                fmt_time(m),
                format!("{:.0}%", m / (c + m) * 100.0),
                fmt_ratio(perf / base_perf),
            ]);
        }
    }
    report.note(
        "Paper shape: memory-access share falls monotonically with EP \
         (43.6% → 22.1% for DeepSeek-V3), so per-device performance rises; \
         NVL72 (EP=72) gains ≈35% over EP=32, WSC (EP=256) gains again.",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_share_falls_with_ep() {
        let m = ModelConfig::deepseek_v3();
        let shares: Vec<f64> = [8, 32, 256]
            .iter()
            .map(|&ep| {
                let (c, mem) = breakdown(&m, ep);
                mem / (c + mem)
            })
            .collect();
        assert!(shares[0] > shares[1]);
        assert!(shares[1] > shares[2]);
    }

    #[test]
    fn perf_rises_with_ep() {
        let m = ModelConfig::qwen3_235b();
        let perf = |ep| {
            let (c, mem) = breakdown(&m, ep);
            TOKENS_PER_DEVICE / (c + mem)
        };
        assert!(perf(256) > perf(72));
        assert!(perf(72) > perf(8));
    }

    #[test]
    fn report_has_ten_rows() {
        let r = run(true);
        assert_eq!(r.rows.len(), 10);
    }
}
