//! One module per paper table/figure. Each exposes
//! `pub fn run(quick: bool) -> Report`.

pub mod ablation;
pub mod disagg_sweep;
pub mod fig01;
pub mod fig04;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig13a;
pub mod fig13b;
pub mod fig13c;
pub mod fig13d;
pub mod fig14a;
pub mod fig14b;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fleet_sweep;
pub mod router_compare;
pub mod serve_sweep;
pub mod table1;
pub mod validate;
pub mod workload_mix;

use crate::Report;

/// An experiment entry point.
pub type Runner = fn(bool) -> Report;

/// Every experiment in paper order: `(id, runner)`.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("table1", table1::run as Runner),
        ("fig01", fig01::run),
        ("fig04", fig04::run),
        ("fig06", fig06::run),
        ("fig11", fig11::run),
        ("fig12", fig12::run),
        ("fig13a", fig13a::run),
        ("fig13b", fig13b::run),
        ("fig13c", fig13c::run),
        ("fig13d", fig13d::run),
        ("fig14a", fig14a::run),
        ("fig14b", fig14b::run),
        ("fig15", fig15::run),
        ("fig16", fig16::run),
        ("fig17", fig17::run),
        ("ablation", ablation::run),
        // Beyond the paper's figures: the request-level serving sweep
        // (latency-throughput curves; also emits target/figs/serve_sweep.json)
        // and the fleet-level scale-out sweep (replica x router policy x
        // arrival rate; emits target/figs/fleet_sweep.json).
        ("serve_sweep", serve_sweep::run),
        ("fleet_sweep", fleet_sweep::run),
        // Multi-tenant SLO attainment under bursty traffic (emits
        // target/figs/workload_mix.json).
        ("workload_mix", workload_mix::run),
        // Router policies: snapshot vs EWMA feedback vs speculative
        // dispatch (emits target/figs/router_compare.json).
        ("router_compare", router_compare::run),
    ]
}
