//! Fig. 13(c): ER-Mapping improvement across WSC scales and TP degrees.

use moe_model::ModelConfig;

use crate::platforms::{comm_latency, wsc_plan, Fidelity, Platform, WscMapping};
use crate::report::{fmt_improvement, fmt_time};
use crate::Report;

/// Regenerates Fig. 13(c): Qwen3 across 4×4 / 6×6 / 8×8 wafers and the
/// paper's TP sweep; improvement of ER-Mapping over the baseline mapping.
pub fn run(quick: bool) -> Report {
    let model = ModelConfig::qwen3_235b();
    let mut report = Report::new(
        "fig13c",
        "ER-Mapping improvement across scales and parallelism",
    )
    .columns([
        "Scale",
        "TP",
        "Baseline AR",
        "Baseline A2A",
        "ER AR",
        "ER A2A",
        "ER improvement",
    ]);

    let cases: Vec<(&str, u16, Vec<usize>)> = if quick {
        vec![("4x4", 4, vec![2, 4]), ("6x6", 6, vec![4])]
    } else {
        vec![
            ("4x4", 4, vec![2, 4, 8]),
            ("6x6", 6, vec![2, 4, 6, 18]),
            ("8x8", 8, vec![2, 4, 8, 16]),
        ]
    };

    let mut best: Option<(String, f64)> = None;
    for (name, n, tps) in cases {
        let platform = Platform::wsc(n);
        let fidelity = if platform.topo.num_devices() <= 36 && !quick {
            Fidelity::Des
        } else {
            Fidelity::Analytic
        };
        for tp in tps {
            let tokens = 256 * tp as u32 / 4; // paper: total tokens grow with TP
            let base = comm_latency(
                &platform,
                &wsc_plan(&platform, tp, WscMapping::Baseline),
                &model,
                tokens,
                fidelity,
            );
            let er = comm_latency(
                &platform,
                &wsc_plan(&platform, tp, WscMapping::Er),
                &model,
                tokens,
                fidelity,
            );
            let gain = (base.total() - er.total()) / base.total();
            let label = format!("{name} TP={tp}");
            if best.as_ref().is_none_or(|(_, g)| gain > *g) {
                best = Some((label.clone(), gain));
            }
            report.row([
                name.to_string(),
                tp.to_string(),
                fmt_time(base.all_reduce),
                fmt_time(base.all_to_all),
                fmt_time(er.all_reduce),
                fmt_time(er.all_to_all),
                fmt_improvement(base.total(), er.total()),
            ]);
        }
    }
    if let Some((label, gain)) = best {
        report.note(format!(
            "Paper shape: ER consistently beats the baseline (up to 46%), with a \
             sweet-spot configuration per wafer size; measured best: {label} at \
             {:.0}%.",
            gain * 100.0
        ));
    }
    report.note(
        "ER trades all-reduce time (multi-hop staggered rings) for much \
         cheaper all-to-all — visible in the AR/A2A columns.",
    );
    report
}

#[cfg(test)]
mod tests {
    #[test]
    fn er_never_loses_badly_and_usually_wins() {
        let r = super::run(true);
        let mut wins = 0;
        for row in &r.rows {
            let v: f64 = row[6].trim_end_matches('%').parse().unwrap();
            assert!(v > -30.0, "severe regression: {row:?}");
            if v > 0.0 {
                wins += 1;
            }
        }
        assert!(wins >= r.rows.len() - 1, "ER should win almost everywhere");
    }
}
