//! Benchmark harness reproducing every table and figure of the MoEntwine
//! paper.
//!
//! Each `figs::*` module computes one table/figure and returns a
//! [`Report`]; the `src/bin/*` binaries are thin wrappers so that any
//! experiment can be regenerated with
//! `cargo run --release -p moentwine-bench --bin <exp>`. The `repro_all`
//! binary runs the whole suite and writes `results/*.json` plus a combined
//! markdown summary for EXPERIMENTS.md.
//!
//! Pass `--quick` to any binary for a reduced-iteration smoke run.

pub mod figs;
pub mod golden;
pub mod perf;
pub mod platforms;
pub mod report;
pub mod scenario_run;

/// The hand-rolled JSON layer, hoisted into the `moentwine-json` leaf
/// crate so the spec layer and core can use it too; re-exported here
/// unchanged (`moentwine_bench::json::Value` keeps working).
pub use moentwine_json as json;

pub use report::Report;

/// Parses the common `--quick` flag.
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses the common `--threads N` flag (also `--threads=N`), defaulting to
/// the machine's available parallelism. The parallel binaries guarantee
/// byte-identical output for every thread count — `--threads 1` is the
/// serial program, more threads only shorten the wall clock.
///
/// # Panics
///
/// Panics on a malformed or zero thread count (a CLI usage error).
pub fn threads_from_args() -> usize {
    let mut args = std::env::args();
    while let Some(arg) = args.next() {
        let value = if arg == "--threads" {
            args.next()
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            Some(v.to_string())
        } else {
            continue;
        };
        let value = value.expect("--threads requires a count");
        let n: usize = value
            .parse()
            .unwrap_or_else(|_| panic!("invalid --threads value {value:?}"));
        assert!(n > 0, "--threads must be at least 1");
        return n;
    }
    perf::pool::WorkerPool::available()
}

/// Runs a figure function as a binary entry point: print and save.
pub fn run_binary(f: impl FnOnce(bool) -> Report) {
    let quick = quick_from_args();
    let report = f(quick);
    report.print();
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
