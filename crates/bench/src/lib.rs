//! Benchmark harness reproducing every table and figure of the MoEntwine
//! paper.
//!
//! Each `figs::*` module computes one table/figure and returns a
//! [`Report`]; the `src/bin/*` binaries are thin wrappers so that any
//! experiment can be regenerated with
//! `cargo run --release -p moentwine-bench --bin <exp>`. The `repro_all`
//! binary runs the whole suite and writes `results/*.json` plus a combined
//! markdown summary for EXPERIMENTS.md.
//!
//! Pass `--quick` to any binary for a reduced-iteration smoke run.

pub mod figs;
pub mod json;
pub mod perf;
pub mod platforms;
pub mod report;

pub use report::Report;

/// Parses the common `--quick` flag.
pub fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Runs a figure function as a binary entry point: print and save.
pub fn run_binary(f: impl FnOnce(bool) -> Report) {
    let quick = quick_from_args();
    let report = f(quick);
    report.print();
    if let Err(e) = report.save("results") {
        eprintln!("warning: could not save report: {e}");
    }
}
