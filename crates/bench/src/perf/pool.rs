//! A hand-rolled scoped worker pool for independent jobs.
//!
//! The container cannot reach crates.io, so instead of `rayon` this is a
//! minimal `std::thread::scope` pool: jobs are claimed from a shared atomic
//! counter, results land in their submission slot, and the output vector is
//! **always in submission order** regardless of which worker ran which job.
//! That slot discipline is what makes every parallel consumer in this crate
//! — fleet replica stepping, the `serve_sweep` / `fleet_sweep` grids, and
//! `repro_all` — byte-identical to its serial order: parallelism only
//! changes *when* a job runs, never how results are merged.
//!
//! With one thread the pool degenerates to an in-caller-thread loop (no
//! spawn, no locks beyond the same code path), so `--threads 1` is exactly
//! the serial program.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use moentwine_core::fleet::ReplicaPool;

/// A fixed-width scoped worker pool. See the [module docs](self).
#[derive(Copy, Clone, Debug)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool of `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// 1 when unknown).
    pub fn sized_to_machine() -> Self {
        Self::new(Self::available())
    }

    /// The machine's available parallelism (1 when unknown).
    pub fn available() -> usize {
        std::thread::available_parallelism().map_or(1, usize::from)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every job and returns the results **in submission order**.
    ///
    /// Jobs may borrow from the caller's stack (they only need to outlive
    /// this call, not `'static`). A panicking job propagates: the scope
    /// joins every worker, then the panic resumes on the caller thread.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        if self.threads == 1 || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let n = jobs.len();
        let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = slots[i]
                        .lock()
                        .expect("job slot poisoned")
                        .take()
                        .expect("each job claimed once");
                    let out = job();
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job ran")
            })
            .collect()
    }
}

/// Fleet replicas step on the same pool: unit jobs, completion-only
/// contract (see [`ReplicaPool`]).
impl ReplicaPool for WorkerPool {
    fn run<'s>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 's>>) {
        let _: Vec<()> = WorkerPool::run(self, jobs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<_> = (0..100u64)
            .map(|i| {
                move || {
                    // Uneven work so completion order scrambles.
                    let mut acc = i;
                    for k in 0..((i % 7) * 1000) {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    i
                }
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..100).collect::<Vec<u64>>());
    }

    #[test]
    fn single_thread_pool_is_serial() {
        let pool = WorkerPool::new(1);
        let order = Mutex::new(Vec::new());
        // Jobs borrow the caller's stack — allowed because the pool is
        // scoped — and with one thread they run in submission order.
        let jobs: Vec<_> = (0..5)
            .map(|i| {
                let order = &order;
                move || order.lock().unwrap().push(i)
            })
            .collect();
        pool.run(jobs);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        assert!(WorkerPool::available() >= 1);
    }

    #[test]
    fn jobs_can_borrow_caller_state() {
        let data: Vec<u64> = (0..1000).collect();
        let pool = WorkerPool::new(3);
        let chunks: Vec<&[u64]> = data.chunks(100).collect();
        let jobs: Vec<_> = chunks
            .iter()
            .map(|chunk| move || chunk.iter().sum::<u64>())
            .collect();
        let sums = pool.run(jobs);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn drives_fleet_replicas() {
        use moe_model::ModelConfig;
        use moe_workload::{RouterPolicy, Scenario, SchedulingMode, WorkloadMix};
        use moentwine_core::engine::{BatchMode, EngineConfig};
        use moentwine_core::fleet::{Fleet, FleetConfig};
        use moentwine_core::mapping::ErMapping;
        use wsc_topology::{Mesh, PlatformParams, RouteTable};

        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let table = RouteTable::build(&topo);
        let plan = ErMapping::with_tp_degree(topo.mesh_dims().unwrap(), 4)
            .unwrap()
            .plan();
        let model = ModelConfig::tiny();
        let mut engine = EngineConfig::new(model)
            .with_seed(9)
            .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
            .with_batch(BatchMode::Scheduled {
                mode: SchedulingMode::Hybrid,
                max_batch_tokens: 2048,
                max_active: 128,
                request_rate: 0.0,
                iteration_period: 0.02,
            });
        engine.kv_hbm_fraction = 1.0e-3;
        let run = |pool: &dyn moentwine_core::fleet::ReplicaPool| {
            let config = FleetConfig::new(3, RouterPolicy::LeastQueueDepth, 6.0e3, engine.clone());
            let mut fleet = Fleet::new(&topo, &table, &plan, config);
            fleet.run_with(60, pool);
            fleet.summary()
        };
        let serial = run(&moentwine_core::fleet::SerialReplicaPool);
        let pooled = run(&WorkerPool::new(4));
        assert_eq!(serial.routed, pooled.routed);
        assert_eq!(serial.per_replica, pooled.per_replica);
        assert_eq!(serial.aggregate, pooled.aggregate);
    }
}
