//! Wall-clock measurement of the congestion-backend hot paths, tracked
//! across PRs as `target/figs/bench_backend.json`.
//!
//! Two ratios of record (the perf contract of the incremental fair-share /
//! schedule-cache work, gated in CI by the `bench_backend` binary):
//!
//! * `incremental_speedup` — full-recompute (PR-1) DES over incremental DES
//!   on the contended EP-group dispatch workload (all-to-all within each
//!   expert-parallel device group, skewed per-pair sizes — the paper's
//!   load-imbalance scenario). Contention is group-local, so the
//!   incremental allocator reprices one group per completion while the
//!   full recompute re-waterfills every active flow; expected ≥ 5×.
//! * `cached_speedup` — uncached flow-sim over `flow-sim-cached` pricing
//!   the same engine-layer dispatch/combine transfer lists `repeats` times
//!   (what every layer of every engine iteration does); expected ≥ 5×
//!   (≥ 20× on a full, non-`--quick` run).
//!
//! The globally-coupled uniform all-to-all is also recorded
//! (`global_incremental_speedup`): its contention graph is one connected
//! component, so component scoping cannot fragment it — the residual
//! speedup there comes from eliminating per-event route cloning, full
//! drains, and per-round membership scans.

pub mod availability;
pub mod fleet;
pub mod pool;

use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

use moe_model::{ModelConfig, Precision};
use moentwine_core::comm::A2aModel;
use moentwine_core::mapping::ErMapping;
use moentwine_core::placement::ExpertPlacement;
use wsc_collectives::{all_to_all_concurrent, uniform_all_to_all_matrix};
use wsc_sim::{CongestionBackend, FlowSpec, NetworkSim};
use wsc_topology::{Mesh, PlatformParams, Topology};

use crate::json::Value;
use crate::platforms::balanced_gating;

/// EP-group dispatch workload: an all-to-all inside every 2×2 device group
/// with skewed (deterministically varied) per-pair payloads, modelling
/// expert-parallel dispatch under load imbalance. XY routes between group
/// members stay inside the group, so each group is an independent
/// contention component — clustered contention, the incremental
/// allocator's target case.
pub fn grouped_dispatch_flows(topo: &Topology, base_bytes: f64) -> Vec<FlowSpec> {
    let dims = topo
        .mesh_dims()
        .expect("grouped dispatch needs a mesh topology");
    let n = dims.n;
    let mut flows = Vec::new();
    for by in (0..n.saturating_sub(1)).step_by(2) {
        for bx in (0..n.saturating_sub(1)).step_by(2) {
            let group: Vec<_> = [(0u16, 0u16), (1, 0), (0, 1), (1, 1)]
                .iter()
                .filter_map(|&(dx, dy)| topo.device_at_xy(bx + dx, by + dy))
                .collect();
            for (i, &src) in group.iter().enumerate() {
                for (j, &dst) in group.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let skew = 1 + (i * 4 + j + (bx + by) as usize) % 7;
                    flows.push(FlowSpec::new(
                        topo.route(src, dst),
                        base_bytes * skew as f64,
                    ));
                }
            }
        }
    }
    flows
}

/// One measured backend-perf snapshot. All times are seconds per call
/// (median of `samples` timed calls).
#[derive(Clone, Debug)]
pub struct BackendPerf {
    /// Mesh side length of the DES workloads.
    pub mesh_n: u16,
    /// Flows in the EP-group dispatch workload.
    pub grouped_flows: usize,
    /// Full-recompute (reference) DES time on the EP-group dispatch.
    pub grouped_full_des_seconds: f64,
    /// Incremental DES time on the EP-group dispatch.
    pub grouped_incremental_des_seconds: f64,
    /// Headline ratio: `grouped_full / grouped_incremental`.
    pub incremental_speedup: f64,
    /// Flows in the globally-coupled uniform all-to-all.
    pub global_flows: usize,
    /// Full-recompute DES time on the uniform all-to-all.
    pub global_full_des_seconds: f64,
    /// Incremental DES time on the uniform all-to-all.
    pub global_incremental_des_seconds: f64,
    /// `global_full / global_incremental` (single-component workload).
    pub global_incremental_speedup: f64,
    /// Times the engine-layer dispatch/combine is priced per measurement.
    pub repeats: usize,
    /// Uncached flow-sim time for all `repeats` layer pricings.
    pub flow_sim_repeat_seconds: f64,
    /// `flow-sim-cached` time for all `repeats` layer pricings.
    pub cached_repeat_seconds: f64,
    /// Headline ratio: `flow_sim_repeat / cached_repeat`.
    pub cached_speedup: f64,
    /// Analytic time for the same layer pricings (ladder context).
    pub analytic_repeat_seconds: f64,
}

/// Median of `samples` timed executions of `f`, seconds.
fn median_seconds<T>(samples: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut times: Vec<f64> = (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Runs the measurement. `quick` shrinks the mesh and sample counts for CI
/// smoke runs; the speedup contract must hold in either mode.
pub fn measure_backend_perf(quick: bool) -> BackendPerf {
    let (n, samples, repeats) = if quick { (8u16, 3, 50) } else { (12u16, 5, 50) };
    let topo = Mesh::new(n, PlatformParams::dojo_like()).build();

    // Clustered contention: EP-group dispatch with skewed sizes.
    let grouped = grouped_dispatch_flows(&topo, 1.0e6);
    let grouped_full_des_seconds = median_seconds(samples, || {
        NetworkSim::new(&topo)
            .use_reference_allocator(true)
            .run_concurrent(&grouped)
    });
    let grouped_incremental_des_seconds =
        median_seconds(samples, || NetworkSim::new(&topo).run_concurrent(&grouped));

    // Globally-coupled contention: uniform all-to-all (one component). Kept
    // smaller — the full-recompute reference is quadratic-ish in flows.
    let global_topo = Mesh::new(6, PlatformParams::dojo_like()).build();
    let global = all_to_all_concurrent(
        &global_topo,
        &uniform_all_to_all_matrix(&global_topo, 1.0e6),
    );
    let global_flows = global.phases()[0].flows.len();
    let global_full_des_seconds = median_seconds(samples, || {
        NetworkSim::new(&global_topo)
            .use_reference_allocator(true)
            .run_concurrent(&global.phases()[0].flows)
    });
    let global_incremental_des_seconds = median_seconds(samples, || {
        NetworkSim::new(&global_topo).run_concurrent(&global.phases()[0].flows)
    });

    // Repeated engine-layer schedules: the same MoE dispatch/combine priced
    // once per layer per iteration. One backend instance per engine (as
    // `InferenceEngine` holds one), so the cached tier simulates the shape
    // once and replays it.
    let model = ModelConfig::qwen3_235b();
    let a2a_topo = Mesh::new(6, PlatformParams::dojo_like()).build();
    let table = wsc_topology::RouteTable::build(&a2a_topo);
    let plan = ErMapping::with_tp_degree(a2a_topo.mesh_dims().unwrap(), 4)
        .unwrap()
        .plan();
    let a2a = A2aModel::new(&a2a_topo, &table, &plan);
    let placement =
        ExpertPlacement::balanced(model.num_experts as usize, a2a_topo.num_devices(), 1);
    let gating = balanced_gating(
        a2a.num_groups(),
        model.num_experts as usize,
        256,
        model.experts_per_token,
    );
    let token_bytes = model.token_bytes(Precision::Fp16);
    let time_repeats = |backend: CongestionBackend| {
        median_seconds(samples, || {
            let pricer = backend.build(&a2a_topo);
            let mut acc = 0.0;
            for _ in 0..repeats {
                acc += a2a
                    .estimate_with(pricer.as_ref(), &gating, &placement, token_bytes, 256)
                    .total_time();
            }
            acc
        })
    };
    let flow_sim_repeat_seconds = time_repeats(CongestionBackend::FlowSim);
    let cached_repeat_seconds = time_repeats(CongestionBackend::FlowSimCached);
    let analytic_repeat_seconds = time_repeats(CongestionBackend::Analytic);

    BackendPerf {
        mesh_n: n,
        grouped_flows: grouped.len(),
        grouped_full_des_seconds,
        grouped_incremental_des_seconds,
        incremental_speedup: grouped_full_des_seconds / grouped_incremental_des_seconds,
        global_flows,
        global_full_des_seconds,
        global_incremental_des_seconds,
        global_incremental_speedup: global_full_des_seconds / global_incremental_des_seconds,
        repeats,
        flow_sim_repeat_seconds,
        cached_repeat_seconds,
        cached_speedup: flow_sim_repeat_seconds / cached_repeat_seconds,
        analytic_repeat_seconds,
    }
}

impl BackendPerf {
    /// The JSON manifest written to `target/figs/bench_backend.json`.
    pub fn to_json(&self, quick: bool) -> Value {
        let num = |v: f64| Value::Num(v);
        Value::Obj(vec![
            ("quick".into(), Value::Bool(quick)),
            ("mesh_n".into(), num(self.mesh_n as f64)),
            ("grouped_flows".into(), num(self.grouped_flows as f64)),
            (
                "grouped_full_des_seconds".into(),
                num(self.grouped_full_des_seconds),
            ),
            (
                "grouped_incremental_des_seconds".into(),
                num(self.grouped_incremental_des_seconds),
            ),
            ("incremental_speedup".into(), num(self.incremental_speedup)),
            ("global_flows".into(), num(self.global_flows as f64)),
            (
                "global_full_des_seconds".into(),
                num(self.global_full_des_seconds),
            ),
            (
                "global_incremental_des_seconds".into(),
                num(self.global_incremental_des_seconds),
            ),
            (
                "global_incremental_speedup".into(),
                num(self.global_incremental_speedup),
            ),
            ("repeats".into(), num(self.repeats as f64)),
            (
                "flow_sim_repeat_seconds".into(),
                num(self.flow_sim_repeat_seconds),
            ),
            (
                "cached_repeat_seconds".into(),
                num(self.cached_repeat_seconds),
            ),
            ("cached_speedup".into(), num(self.cached_speedup)),
            (
                "analytic_repeat_seconds".into(),
                num(self.analytic_repeat_seconds),
            ),
        ])
    }

    /// Writes the manifest, creating parent directories as needed.
    pub fn save(&self, path: impl AsRef<Path>, quick: bool) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_json(quick).pretty())
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        format!(
            "backend perf:\n\
             \x20 EP-group dispatch ({}x{}, {} flows)  full-recompute {:>9.3} ms  incremental {:>9.3} ms  speedup {:>6.1}x\n\
             \x20 uniform a2a (6x6, {} flows)          full-recompute {:>9.3} ms  incremental {:>9.3} ms  speedup {:>6.1}x\n\
             \x20 {}x engine-layer a2a pricings        flow-sim {:>15.3} ms  cached      {:>9.3} ms  speedup {:>6.1}x\n\
             \x20 analytic same pricings {:>37.3} ms",
            self.mesh_n,
            self.mesh_n,
            self.grouped_flows,
            self.grouped_full_des_seconds * 1e3,
            self.grouped_incremental_des_seconds * 1e3,
            self.incremental_speedup,
            self.global_flows,
            self.global_full_des_seconds * 1e3,
            self.global_incremental_des_seconds * 1e3,
            self.global_incremental_speedup,
            self.repeats,
            self.flow_sim_repeat_seconds * 1e3,
            self.cached_repeat_seconds * 1e3,
            self.cached_speedup,
            self.analytic_repeat_seconds * 1e3,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouped_dispatch_stays_group_local() {
        let topo = Mesh::new(4, PlatformParams::dojo_like()).build();
        let flows = grouped_dispatch_flows(&topo, 1.0e6);
        // 4 groups of 4 devices, 12 ordered pairs each.
        assert_eq!(flows.len(), 4 * 12);
        // Every route stays inside a 2×2 block: at most 2 hops.
        assert!(flows
            .iter()
            .all(|f| f.route.hops() <= 2 && !f.route.is_empty()));
    }

    #[test]
    fn manifest_has_the_gated_ratios() {
        let perf = BackendPerf {
            mesh_n: 8,
            grouped_flows: 192,
            grouped_full_des_seconds: 1.0,
            grouped_incremental_des_seconds: 0.1,
            incremental_speedup: 10.0,
            global_flows: 1260,
            global_full_des_seconds: 1.0,
            global_incremental_des_seconds: 0.5,
            global_incremental_speedup: 2.0,
            repeats: 50,
            flow_sim_repeat_seconds: 2.0,
            cached_repeat_seconds: 0.05,
            cached_speedup: 40.0,
            analytic_repeat_seconds: 0.01,
        };
        let json = perf.to_json(true);
        assert_eq!(
            json.get("incremental_speedup").and_then(Value::as_f64),
            Some(10.0)
        );
        assert_eq!(
            json.get("cached_speedup").and_then(Value::as_f64),
            Some(40.0)
        );
        assert!(perf.summary().contains("speedup"));
    }
}
