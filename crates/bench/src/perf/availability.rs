//! SLO-under-failure figure: TTFT/goodput degradation and recovery
//! through a crash/drain/scale-up/recover timeline, tracked across PRs as
//! `target/figs/fleet_availability.json` (schema
//! `moentwine/fleet_availability/v1`).
//!
//! The fleet runs a fixed chaos timeline (crash one replica mid-traffic,
//! gracefully drain another, scale up by one, then recover the crashed
//! replica) and checkpoints the cumulative fleet summary every few rounds.
//! The resulting curve shows goodput dipping when capacity is lost and
//! recovering as re-queued requests are re-prefilled elsewhere, alongside
//! the time-weighted available-replica fraction.
//!
//! Everything in the manifest is simulated (no wall-clock fields), so the
//! bytes are deterministic per seed. The same timeline is driven once per
//! round-driven scheduler (`lockstep` and `event-heap`); the manifest's
//! `schedulers_agree` flag records that both produced identical
//! checkpoints and availability accounting, and the `fleet_availability`
//! binary gates CI on it.

use std::fs;
use std::io;
use std::path::Path;

use moe_workload::{RouterPolicy, Scenario, SchedulingMode, WorkloadMix};
use moentwine_core::engine::{EngineConfig, SummaryMode};
use moentwine_core::fleet::{
    Fleet, FleetAvailability, FleetEvent, FleetEventKind, FleetScheduler, FleetSummary,
    ReplicaState,
};
use moentwine_spec::{BatchSpec, EngineSpec, FleetSpec, ModelSpec, ServingSpec};

use crate::json::Value;
use crate::platforms::{wsc_plan, Platform, WscMapping};

/// Schema identifier embedded in (and required of) the manifest.
pub const SCHEMA: &str = "moentwine/fleet_availability/v1";

/// Manifest output path, relative to the working directory.
pub const MANIFEST_PATH: &str = "target/figs/fleet_availability.json";

/// Master seed (replica streams are split from it by the fleet).
const SEED: u64 = 977;

/// Initial fleet width.
const REPLICAS: usize = 8;

/// Global arrival rate, requests/second across the fleet.
const RATE: f64 = 4.0e5;

/// Checkpoints sampled over the run (points in the figure).
const CHECKPOINTS: u64 = 8;

/// The chaos timeline: crash under load, graceful drain, elastic scale-up,
/// then recovery of the crashed replica. Times sit in the first ~0.7 ms of
/// simulated time so the whole arc fires well inside a `--quick` run
/// (fleet rounds advance the clock by a few microseconds each).
fn chaos_timeline() -> Vec<FleetEvent> {
    vec![
        FleetEvent {
            time: 2.0e-4,
            kind: FleetEventKind::Crash { replica: 1 },
        },
        FleetEvent {
            time: 3.5e-4,
            kind: FleetEventKind::Drain { replica: 2 },
        },
        FleetEvent {
            time: 5.0e-4,
            kind: FleetEventKind::ScaleUp { count: 1 },
        },
        FleetEvent {
            time: 6.5e-4,
            kind: FleetEventKind::Recover { replica: 1 },
        },
    ]
}

/// One cumulative checkpoint of the degradation/recovery curve.
#[derive(Clone, PartialEq, Debug)]
pub struct AvailabilityPoint {
    /// Synchronization rounds executed so far.
    pub round: u64,
    /// Fleet simulated time, seconds.
    pub sim_seconds: f64,
    /// Requests completed so far (fleet-wide).
    pub completed: u64,
    /// Cumulative goodput, requests/second of simulated time.
    pub goodput_rps: f64,
    /// TTFT percentiles over completions so far, seconds.
    pub ttft_p50: f64,
    /// 95th-percentile TTFT, seconds.
    pub ttft_p95: f64,
    /// 99th-percentile TTFT, seconds.
    pub ttft_p99: f64,
    /// Time-weighted available-replica fraction so far.
    pub available_fraction: f64,
    /// Timeline events applied so far.
    pub events_applied: u64,
    /// In-flight requests interrupted by crashes so far.
    pub crash_interruptions: u64,
    /// Σ (input + output) tokens across re-queued requests so far.
    pub requeued_tokens: u64,
    /// Replicas currently in the `Active` (admitting) state.
    pub active_replicas: u64,
}

/// The measured figure: checkpointed curve plus final availability report.
#[derive(Clone, Debug)]
pub struct AvailabilityFig {
    /// Initial replica count (the crash/drain/scale-up timeline moves the
    /// live count around it).
    pub replicas: usize,
    /// Global arrival rate, requests/second.
    pub request_rate: f64,
    /// Total synchronization rounds driven.
    pub rounds: u64,
    /// Whether the lock-step and event-heap drives produced identical
    /// checkpoints and availability accounting (the determinism contract).
    pub schedulers_agree: bool,
    /// The degradation/recovery curve (from the lock-step reference run).
    pub points: Vec<AvailabilityPoint>,
    /// Final fleet summary of the reference run.
    pub final_summary: FleetSummary,
}

/// The per-replica engine template: hybrid continuous batching on the tiny
/// model with a thin KV share (the `bench_fleet` shape) under streaming
/// summaries, so percentiles come from the O(1)-memory sketches.
fn engine_template() -> EngineConfig {
    let model = ModelSpec::preset("tiny").resolve().expect("tiny preset");
    EngineSpec::default()
        .with_seed(SEED)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchSpec::Serving(ServingSpec {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
            request_rate: 0.0,
            iteration_period: 0.02,
            summary: SummaryMode::Streaming,
            workload: None,
        }))
        .with_kv_hbm_fraction(1.0e-3)
        .engine_config(model)
        .expect("valid fleet template")
}

/// Drives the chaos fleet for `rounds` rounds under `scheduler`, sampling
/// [`CHECKPOINTS`] cumulative summaries along the way.
fn run_chaos(
    platform: &Platform,
    plan: &moentwine_core::MappingPlan,
    scheduler: FleetScheduler,
    rounds: u64,
) -> (Vec<AvailabilityPoint>, FleetSummary) {
    let config = FleetSpec::new(REPLICAS, RouterPolicy::LeastQueueDepth, RATE)
        .with_scheduler(scheduler)
        .with_events(chaos_timeline())
        .fleet_config(engine_template());
    let mut fleet = Fleet::new(&platform.topo, &platform.table, plan, config);
    let chunk = (rounds / CHECKPOINTS).max(1) as usize;
    let mut points = Vec::new();
    while fleet.rounds() < rounds {
        fleet.run(chunk.min((rounds - fleet.rounds()) as usize));
        let summary = fleet.summary();
        let active = fleet
            .states()
            .iter()
            .filter(|s| matches!(s, ReplicaState::Active))
            .count() as u64;
        points.push(AvailabilityPoint {
            round: fleet.rounds(),
            sim_seconds: summary.sim_seconds,
            completed: summary.aggregate.completed as u64,
            goodput_rps: summary.aggregate.goodput_rps,
            ttft_p50: summary.aggregate.ttft_p50,
            ttft_p95: summary.aggregate.ttft_p95,
            ttft_p99: summary.aggregate.ttft_p99,
            available_fraction: summary.availability.available_fraction,
            events_applied: summary.availability.events_applied,
            crash_interruptions: summary.availability.crash_interruptions,
            requeued_tokens: summary.availability.requeued_tokens,
            active_replicas: active,
        });
    }
    let summary = fleet.summary();
    (points, summary)
}

/// The availability section of the manifest (the final accounting). Also
/// reused by the scenario-run manifests for fleets with a timeline.
pub fn availability_json(a: &FleetAvailability) -> Value {
    let num = Value::Num;
    Value::Obj(vec![
        ("events_applied".into(), num(a.events_applied as f64)),
        (
            "crash_interruptions".into(),
            num(a.crash_interruptions as f64),
        ),
        ("drain_rerouted".into(), num(a.drain_rerouted as f64)),
        ("crash_rerouted".into(), num(a.crash_rerouted as f64)),
        ("requeued_tokens".into(), num(a.requeued_tokens as f64)),
        (
            "replayed_prefill_tokens".into(),
            num(a.replayed_prefill_tokens as f64),
        ),
        ("available_fraction".into(), num(a.available_fraction)),
        (
            "replica_states".into(),
            Value::strings(a.replica_states.iter().copied()),
        ),
        (
            "goodput_windows".into(),
            Value::Arr(
                a.goodput_windows
                    .iter()
                    .map(|w| {
                        Value::Obj(vec![
                            ("after".into(), Value::Str(w.after.clone())),
                            ("start".into(), num(w.start)),
                            ("end".into(), num(w.end)),
                            ("completed".into(), num(w.completed as f64)),
                            ("goodput_rps".into(), num(w.goodput_rps)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs the measurement. `quick` shrinks the round budget for CI smoke
/// runs; the full timeline (all four events) fires in either mode.
pub fn measure_availability(quick: bool) -> AvailabilityFig {
    let rounds: u64 = if quick { 400 } else { 1600 };
    let platform = Platform::wsc(4);
    let plan = wsc_plan(&platform, 4, WscMapping::Er);

    let (lockstep_points, lockstep_summary) =
        run_chaos(&platform, &plan, FleetScheduler::Lockstep, rounds);
    let (event_points, event_summary) =
        run_chaos(&platform, &plan, FleetScheduler::EventHeap, rounds);
    let schedulers_agree = lockstep_points == event_points
        && availability_json(&lockstep_summary.availability).pretty()
            == availability_json(&event_summary.availability).pretty();

    AvailabilityFig {
        replicas: REPLICAS,
        request_rate: RATE,
        rounds,
        schedulers_agree,
        points: lockstep_points,
        final_summary: lockstep_summary,
    }
}

impl AvailabilityFig {
    /// The JSON manifest written to [`MANIFEST_PATH`].
    pub fn to_json(&self, quick: bool) -> Value {
        let num = Value::Num;
        Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("quick".into(), Value::Bool(quick)),
            ("replicas".into(), num(self.replicas as f64)),
            ("request_rate".into(), num(self.request_rate)),
            ("rounds".into(), num(self.rounds as f64)),
            ("sim_seconds".into(), num(self.final_summary.sim_seconds)),
            (
                "completed".into(),
                num(self.final_summary.aggregate.completed as f64),
            ),
            (
                "schedulers_agree".into(),
                Value::Bool(self.schedulers_agree),
            ),
            (
                "availability".into(),
                availability_json(&self.final_summary.availability),
            ),
            (
                "points".into(),
                Value::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Value::Obj(vec![
                                ("round".into(), num(p.round as f64)),
                                ("sim_seconds".into(), num(p.sim_seconds)),
                                ("completed".into(), num(p.completed as f64)),
                                ("goodput_rps".into(), num(p.goodput_rps)),
                                ("ttft_p50".into(), num(p.ttft_p50)),
                                ("ttft_p95".into(), num(p.ttft_p95)),
                                ("ttft_p99".into(), num(p.ttft_p99)),
                                ("available_fraction".into(), num(p.available_fraction)),
                                ("events_applied".into(), num(p.events_applied as f64)),
                                (
                                    "crash_interruptions".into(),
                                    num(p.crash_interruptions as f64),
                                ),
                                ("requeued_tokens".into(), num(p.requeued_tokens as f64)),
                                ("active_replicas".into(), num(p.active_replicas as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes the manifest, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>, quick: bool) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_json(quick).pretty())
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        let a = &self.final_summary.availability;
        let mut lines = format!(
            "fleet availability ({} replicas, {:.0} req/s, {} rounds, \
             schedulers agree: {}):\n\
             \x20 events applied {}  crash interruptions {}  re-routed {} drain / {} crash\n\
             \x20 re-queued tokens {}  replayed prefill tokens {}  available fraction {:.4}\n\
             \x20 final states [{}]",
            self.replicas,
            self.request_rate,
            self.rounds,
            self.schedulers_agree,
            a.events_applied,
            a.crash_interruptions,
            a.drain_rerouted,
            a.crash_rerouted,
            a.requeued_tokens,
            a.replayed_prefill_tokens,
            a.available_fraction,
            a.replica_states.join(", "),
        );
        for w in &a.goodput_windows {
            lines.push_str(&format!(
                "\n\x20 after {:<14} [{:.6}, {:.6}) s  {:>5} completed  {:>10.1} req/s",
                w.after, w.start, w.end, w.completed, w.goodput_rps
            ));
        }
        lines
    }
}

/// Validates a manifest against the `moentwine/fleet_availability/v1`
/// schema: schema tag, run parameters, a non-empty monotone checkpoint
/// curve, an availability section that actually saw the crash
/// (`events_applied ≥ 1`, `crash_interruptions ≥ 1`, fraction strictly
/// inside (0, 1)), and scheduler agreement.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, SCHEMA)?;
    v::require_run_params(
        manifest,
        &[
            "replicas",
            "request_rate",
            "rounds",
            "sim_seconds",
            "completed",
        ],
    )?;
    if !matches!(manifest.get("schedulers_agree"), Some(Value::Bool(true))) {
        return Err("schedulers_agree must be true (lock-step vs event-heap drift)".into());
    }

    let points = v::require_points(manifest)?;
    let mut prev_round = 0.0;
    for (i, point) in points.iter().enumerate() {
        for key in [
            "round",
            "sim_seconds",
            "completed",
            "goodput_rps",
            "ttft_p50",
            "ttft_p95",
            "ttft_p99",
            "available_fraction",
            "events_applied",
            "crash_interruptions",
            "requeued_tokens",
            "active_replicas",
        ] {
            v::point_num(point, i, key)?;
        }
        let round = v::point_num(point, i, "round")?;
        if round <= prev_round && i > 0 {
            return Err(format!("point {i}: rounds not increasing ({round})"));
        }
        prev_round = round;
    }

    let avail = manifest
        .get("availability")
        .ok_or("missing availability section")?;
    let anum = |key: &str| {
        avail
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("availability: missing {key}"))
    };
    if anum("events_applied")? < 1.0 {
        return Err("availability: no timeline events applied".into());
    }
    if anum("crash_interruptions")? < 1.0 {
        return Err("availability: crash interrupted no in-flight requests".into());
    }
    let fraction = anum("available_fraction")?;
    if !(fraction > 0.0 && fraction < 1.0) {
        return Err(format!(
            "availability: available_fraction {fraction} not in (0, 1) — the \
             capacity loss never showed up in the time-weighted accounting"
        ));
    }
    let windows = avail
        .get("goodput_windows")
        .and_then(Value::as_array)
        .ok_or("availability: missing goodput_windows")?;
    if windows.len() < 2 {
        return Err(format!(
            "availability: {} goodput windows (expected one per applied event plus the start)",
            windows.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The measured quick figure itself: the chaos arc must fire, interrupt
    /// in-flight work, and agree across both round-driven scheduler drives
    /// — checked here so a determinism or timeline regression fails
    /// `cargo test` before it fails the CI chaos smoke.
    #[test]
    fn quick_figure_meets_the_contract() {
        let fig = measure_availability(true);
        let json = fig.to_json(true);
        validate(&json).expect("measured manifest validates");
        assert!(fig.schedulers_agree, "{}", fig.summary());
        let a = &fig.final_summary.availability;
        assert_eq!(a.events_applied, 4, "{}", fig.summary());
        assert!(a.crash_interruptions >= 1);
        assert!(a.requeued_tokens > 0);
        // The crash knocks availability below 1 until recovery; the drain
        // retires a replica permanently, so the final fraction stays < 1.
        assert!(a.available_fraction > 0.0 && a.available_fraction < 1.0);
        // 5 windows: start + one per event.
        assert_eq!(a.goodput_windows.len(), 5, "{}", fig.summary());
        assert_eq!(a.goodput_windows[0].after, "start");
        // Repeat runs are byte-identical (the manifest has no wall-clock
        // fields).
        let again = measure_availability(true);
        assert_eq!(json.pretty(), again.to_json(true).pretty());
    }

    #[test]
    fn validate_rejects_broken_manifests() {
        assert!(validate(&Value::Obj(vec![])).is_err());
        let fig = measure_availability(true);

        let mut broken = fig.clone();
        broken.schedulers_agree = false;
        let err = validate(&broken.to_json(true)).unwrap_err();
        assert!(err.contains("schedulers_agree"), "{err}");

        let mut broken = fig.clone();
        broken.final_summary.availability.crash_interruptions = 0;
        let err = validate(&broken.to_json(true)).unwrap_err();
        assert!(err.contains("crash interrupted no"), "{err}");

        let mut broken = fig;
        broken.final_summary.availability.available_fraction = 1.0;
        let err = validate(&broken.to_json(true)).unwrap_err();
        assert!(err.contains("not in (0, 1)"), "{err}");
    }
}
