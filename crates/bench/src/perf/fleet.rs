//! Fleet-scheduler perf: event-heap vs lock-step `run_until` on a wide,
//! partially-idle fleet, tracked across PRs as `target/figs/BENCH_fleet.json`
//! (schema `moentwine/bench_fleet/v1`).
//!
//! The ratio of record (gated in CI by the `bench_fleet` binary):
//!
//! * `heap_speedup` — lock-step wall-clock over event-heap wall-clock for
//!   the same time horizon on the same fleet. Lock-step prices one
//!   microsecond-scale iteration on *every* replica *every* round, idle or
//!   not; the event heap parks idle replicas and pays only for causal step
//!   events, so the gap widens with fleet width and idleness. Expected
//!   ≥ 2× on the quick grid, far more on wide production shapes.
//!
//! The manifest also records the memory story behind the 10M-request
//! scenario: retained request records under streaming summaries (O(replicas),
//! the peak-RSS proxy) against the exact-mode count (O(completions)).

use std::fs;
use std::io;
use std::path::Path;
use std::time::Instant;

use moe_workload::{RouterPolicy, Scenario, SchedulingMode, WorkloadMix};
use moentwine_core::engine::{EngineConfig, SummaryMode};
use moentwine_core::fleet::{Fleet, FleetScheduler, FleetSummary};
use moentwine_spec::{BatchSpec, EngineSpec, FleetSpec, ModelSpec, ServingSpec};

use crate::json::Value;
use crate::platforms::{wsc_plan, Platform, WscMapping};

/// Schema identifier embedded in (and required of) the manifest.
pub const SCHEMA: &str = "moentwine/bench_fleet/v1";

/// Manifest output path, relative to the working directory.
pub const MANIFEST_PATH: &str = "target/figs/BENCH_fleet.json";

/// Master seed (replica streams are split from it by the fleet).
const SEED: u64 = 977;

/// One measured fleet-scheduler snapshot for a `(replicas, rate, horizon)`
/// grid point.
#[derive(Clone, Debug)]
pub struct FleetPerf {
    /// Replica engines in the fleet.
    pub replicas: usize,
    /// Global arrival rate, requests/second.
    pub request_rate: f64,
    /// Simulated-time horizon both schedulers run to, seconds.
    pub horizon_seconds: f64,
    /// Lock-step wall-clock for the horizon, seconds.
    pub lockstep_wall_seconds: f64,
    /// Event-heap wall-clock for the same horizon, seconds.
    pub event_wall_seconds: f64,
    /// Headline ratio: `lockstep_wall / event_wall`.
    pub heap_speedup: f64,
    /// Priced replica-step events in the event-heap run.
    pub event_steps: u64,
    /// Synchronization rounds in the lock-step run.
    pub lockstep_rounds: u64,
    /// Requests routed by the event-heap run.
    pub routed: u64,
    /// Requests completed by the event-heap run.
    pub completed: u64,
    /// Event-heap wall-clock per simulated (routed) request, seconds.
    pub wall_per_request_seconds: f64,
    /// Request records retained under streaming summaries (peak-RSS proxy;
    /// stays O(replicas) regardless of traffic).
    pub retained_records_streaming: usize,
    /// Request records retained by the same run under exact summaries
    /// (grows with completions and priced iterations).
    pub retained_records_exact: usize,
}

/// The per-replica engine template: hybrid continuous batching on the tiny
/// model with a thin KV share (the `fleet_sweep` shape), under `summary`.
fn engine_template(summary: SummaryMode) -> EngineConfig {
    let model = ModelSpec::preset("tiny").resolve().expect("tiny preset");
    EngineSpec::default()
        .with_seed(SEED)
        .with_workload(WorkloadMix::Fixed(Scenario::Privacy))
        .with_batch(BatchSpec::Serving(ServingSpec {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens: 2048,
            max_active: 128,
            request_rate: 0.0,
            iteration_period: 0.02,
            summary,
            workload: None,
        }))
        .with_kv_hbm_fraction(1.0e-3)
        .engine_config(model)
        .expect("valid fleet template")
}

/// Runs one `(scheduler, summary)` configuration to `horizon` and returns
/// the wall-clock plus the finished fleet.
fn timed_run_until<'a>(
    platform: &'a Platform,
    plan: &'a moentwine_core::MappingPlan,
    replicas: usize,
    rate: f64,
    horizon: f64,
    scheduler: FleetScheduler,
    summary: SummaryMode,
) -> (f64, Fleet<'a>, FleetSummary) {
    let config = FleetSpec::new(replicas, RouterPolicy::PowerOfTwoChoices, rate)
        .with_scheduler(scheduler)
        .fleet_config(engine_template(summary));
    let mut fleet = Fleet::new(&platform.topo, &platform.table, plan, config);
    let t0 = Instant::now();
    fleet.run_until(horizon);
    let wall = t0.elapsed().as_secs_f64();
    let summary = fleet.summary();
    (wall, fleet, summary)
}

/// Runs the measurement. `quick` shrinks the horizon for CI smoke runs;
/// the ≥ 2× speedup contract must hold in either mode.
///
/// The grid is a wide, *underutilized* fleet — 64 replicas with arrivals
/// that keep only a fraction busy at any instant — which is exactly the
/// shape where a global barrier is wasteful and the paper-scale "millions
/// of users, bursty" deployment spends most of its life.
pub fn measure_fleet_perf(quick: bool) -> FleetPerf {
    let replicas = 64;
    let rate = 1.0e4;
    let horizon = if quick { 1.0e-3 } else { 8.0e-3 };
    let platform = Platform::wsc(4);
    let plan = wsc_plan(&platform, 4, WscMapping::Er);

    let (lockstep_wall_seconds, lockstep_fleet, _) = timed_run_until(
        &platform,
        &plan,
        replicas,
        rate,
        horizon,
        FleetScheduler::Lockstep,
        SummaryMode::Streaming,
    );
    let (event_wall_seconds, event_fleet, event_summary) = timed_run_until(
        &platform,
        &plan,
        replicas,
        rate,
        horizon,
        FleetScheduler::EventHeap,
        SummaryMode::Streaming,
    );
    // The exact-mode twin of the event run: same trajectory, but every
    // completion record and iteration snapshot is retained.
    let (_, exact_fleet, _) = timed_run_until(
        &platform,
        &plan,
        replicas,
        rate,
        horizon,
        FleetScheduler::EventHeap,
        SummaryMode::Exact,
    );

    let routed: u64 = event_summary.routed.iter().sum();
    FleetPerf {
        replicas,
        request_rate: rate,
        horizon_seconds: horizon,
        lockstep_wall_seconds,
        event_wall_seconds,
        heap_speedup: lockstep_wall_seconds / event_wall_seconds,
        event_steps: event_fleet.rounds(),
        lockstep_rounds: lockstep_fleet.rounds(),
        routed,
        completed: event_summary.aggregate.completed as u64,
        wall_per_request_seconds: event_wall_seconds / (routed.max(1) as f64),
        retained_records_streaming: event_fleet.retained_records(),
        retained_records_exact: exact_fleet.retained_records(),
    }
}

impl FleetPerf {
    /// The JSON manifest written to [`MANIFEST_PATH`].
    pub fn to_json(&self, quick: bool) -> Value {
        let num = Value::Num;
        Value::Obj(vec![
            ("schema".into(), Value::Str(SCHEMA.into())),
            ("quick".into(), Value::Bool(quick)),
            ("replicas".into(), num(self.replicas as f64)),
            ("request_rate".into(), num(self.request_rate)),
            ("horizon_seconds".into(), num(self.horizon_seconds)),
            (
                "lockstep_wall_seconds".into(),
                num(self.lockstep_wall_seconds),
            ),
            ("event_wall_seconds".into(), num(self.event_wall_seconds)),
            ("heap_speedup".into(), num(self.heap_speedup)),
            ("event_steps".into(), num(self.event_steps as f64)),
            ("lockstep_rounds".into(), num(self.lockstep_rounds as f64)),
            ("routed".into(), num(self.routed as f64)),
            ("completed".into(), num(self.completed as f64)),
            (
                "wall_per_request_seconds".into(),
                num(self.wall_per_request_seconds),
            ),
            (
                "retained_records_streaming".into(),
                num(self.retained_records_streaming as f64),
            ),
            (
                "retained_records_exact".into(),
                num(self.retained_records_exact as f64),
            ),
        ])
    }

    /// Writes the manifest, creating parent directories as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>, quick: bool) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(path, self.to_json(quick).pretty())
    }

    /// Human-readable one-screen summary.
    pub fn summary(&self) -> String {
        format!(
            "fleet scheduler perf ({} replicas, {:.0} req/s, horizon {:.1} ms):\n\
             \x20 lock-step  {:>9.3} ms wall  ({} rounds)\n\
             \x20 event-heap {:>9.3} ms wall  ({} step events)  speedup {:>6.1}x\n\
             \x20 {} routed / {} completed  ({:.1} ns wall per request)\n\
             \x20 retained records: {} streaming vs {} exact",
            self.replicas,
            self.request_rate,
            self.horizon_seconds * 1e3,
            self.lockstep_wall_seconds * 1e3,
            self.lockstep_rounds,
            self.event_wall_seconds * 1e3,
            self.event_steps,
            self.heap_speedup,
            self.routed,
            self.completed,
            self.wall_per_request_seconds * 1e9,
            self.retained_records_streaming,
            self.retained_records_exact,
        )
    }
}

/// Validates a manifest against the `moentwine/bench_fleet/v1` schema:
/// schema tag, the full numeric field set, a positive speedup ratio that
/// matches its numerator and denominator, and a streaming retained-record
/// count bounded by the replica count (the O(1)-memory contract).
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate(manifest: &Value) -> Result<(), String> {
    use crate::figs::validate as v;
    v::require_schema(manifest, SCHEMA)?;
    v::require_run_params(
        manifest,
        &[
            "replicas",
            "request_rate",
            "horizon_seconds",
            "lockstep_wall_seconds",
            "event_wall_seconds",
            "heap_speedup",
            "event_steps",
            "lockstep_rounds",
            "routed",
            "completed",
            "wall_per_request_seconds",
            "retained_records_streaming",
            "retained_records_exact",
        ],
    )?;
    let num = |key: &str| {
        manifest
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or(f64::NAN)
    };
    let speedup = num("heap_speedup");
    // NaN (missing / non-numeric) fails alongside zero and negatives.
    if speedup.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(format!("heap_speedup must be positive, got {speedup}"));
    }
    let implied = num("lockstep_wall_seconds") / num("event_wall_seconds");
    if (speedup - implied).abs() > 1e-9 * implied.abs() {
        return Err(format!(
            "heap_speedup {speedup} inconsistent with wall times (implied {implied})"
        ));
    }
    if num("retained_records_streaming") > num("replicas") {
        return Err(format!(
            "streaming retained {} records on {} replicas (expected O(replicas))",
            num("retained_records_streaming"),
            num("replicas")
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_perf() -> FleetPerf {
        FleetPerf {
            replicas: 64,
            request_rate: 1.0e4,
            horizon_seconds: 1.0e-3,
            lockstep_wall_seconds: 0.4,
            event_wall_seconds: 0.05,
            heap_speedup: 8.0,
            event_steps: 1200,
            lockstep_rounds: 300,
            routed: 10,
            completed: 8,
            wall_per_request_seconds: 0.005,
            retained_records_streaming: 64,
            retained_records_exact: 9000,
        }
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let json = sample_perf().to_json(true);
        validate(&json).expect("schema-valid manifest");
        assert_eq!(json.get("heap_speedup").and_then(Value::as_f64), Some(8.0));
        assert_eq!(json.get("schema").and_then(Value::as_str), Some(SCHEMA));
        assert!(sample_perf().summary().contains("speedup"));
    }

    #[test]
    fn validate_rejects_inconsistent_and_unbounded_manifests() {
        assert!(validate(&Value::Obj(vec![])).is_err());

        let mut perf = sample_perf();
        perf.heap_speedup = 3.0; // contradicts 0.4 / 0.05
        let err = validate(&perf.to_json(true)).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");

        let mut perf = sample_perf();
        perf.retained_records_streaming = 100_000;
        let err = validate(&perf.to_json(true)).unwrap_err();
        assert!(err.contains("O(replicas)"), "{err}");
    }

    /// The measured quick grid itself: the gate the CI bin enforces, plus
    /// the memory contract, checked here so a perf regression fails
    /// `cargo test` before it fails the bench smoke.
    #[test]
    fn quick_grid_meets_the_contract() {
        let perf = measure_fleet_perf(true);
        let json = perf.to_json(true);
        validate(&json).expect("measured manifest validates");
        assert!(
            perf.heap_speedup >= 1.0,
            "event heap slower than lock-step: {}",
            perf.summary()
        );
        assert!(perf.retained_records_streaming <= perf.replicas);
        assert!(perf.routed > 0, "no traffic simulated: {}", perf.summary());
    }
}
