//! Shared golden-snapshot harness for the regression suites.
//!
//! Both golden suites (`tests/golden_trace.rs` per congestion backend,
//! `tests/fleet_golden.rs` per router policy) flatten their summaries into
//! ordered `name → value` fields and delegate the compare/bless mechanics
//! here, so tolerance handling and diff formatting can never drift between
//! them:
//!
//! * With `GOLDEN_BLESS=1` in the environment, the snapshot file is
//!   (re)written and the check passes — the bless path.
//! * Otherwise the snapshot is loaded and every field compared at a
//!   relative tolerance; a drift fails with a per-field diff naming each
//!   divergent, missing, and no-longer-emitted value.

use std::fs;
use std::path::Path;

use crate::json::Value;

/// Relative drift tolerance shared by the golden suites: metrics are
/// deterministic f64 chains, so any real change lands far above this; the
/// margin only absorbs libm-level differences across toolchains.
pub const GOLDEN_TOLERANCE: f64 = 1e-9;

/// Renders flattened snapshot fields as a JSON object (insertion order
/// preserved).
pub fn fields_to_json(fields: &[(String, f64)]) -> Value {
    Value::Obj(
        fields
            .iter()
            .map(|(k, v)| (k.clone(), Value::Num(*v)))
            .collect(),
    )
}

/// Compares `got` against the snapshot at `path` (or rewrites it under
/// `GOLDEN_BLESS=1`). `label` names the scenario and `rebless_hint` the
/// command that regenerates the file — both only appear in failure output.
///
/// # Panics
///
/// Panics with a per-field diff when any value drifts beyond
/// [`GOLDEN_TOLERANCE`], when the snapshot is missing or malformed, or
/// when blessing cannot write the file.
pub fn check_or_bless(path: &Path, got: &[(String, f64)], label: &str, rebless_hint: &str) {
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).expect("create golden dir");
        }
        fs::write(path, fields_to_json(got).pretty()).expect("write golden snapshot");
        eprintln!("blessed {}", path.display());
        return;
    }

    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {}: {e}\nregenerate with `{rebless_hint}`",
            path.display()
        )
    });
    let expect = Value::parse(&text)
        .unwrap_or_else(|e| panic!("malformed golden snapshot {}: {e}", path.display()));

    // Readable diff: collect every divergent field before failing.
    let mut diffs: Vec<String> = Vec::new();
    for (name, actual) in got {
        match expect.get(name).and_then(Value::as_f64) {
            None => diffs.push(format!("  {name}: missing from snapshot (now {actual})")),
            Some(want) => {
                let scale = want.abs().max(actual.abs()).max(1e-30);
                if (want - actual).abs() > GOLDEN_TOLERANCE * scale {
                    diffs.push(format!(
                        "  {name}: golden {want} vs current {actual} (rel drift {:.3e})",
                        (want - actual).abs() / scale
                    ));
                }
            }
        }
    }
    if let Value::Obj(members) = &expect {
        for (name, _) in members {
            if !got.iter().any(|(k, _)| k == name) {
                diffs.push(format!("  {name}: in snapshot but no longer emitted"));
            }
        }
    }
    assert!(
        diffs.is_empty(),
        "golden trace drifted for {label} ({} field(s)):\n{}\n\
         if the change is intentional, re-bless with `{rebless_hint}` and commit {}",
        diffs.len(),
        diffs.join("\n"),
        path.display(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("moentwine-golden-harness");
        fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn matching_fields_pass_and_render() {
        let fields = vec![("a.x".to_string(), 1.5), ("a.y".to_string(), 0.0)];
        let path = tmp("match.json");
        fs::write(&path, fields_to_json(&fields).pretty()).unwrap();
        check_or_bless(&path, &fields, "test", "bless");
        // Within tolerance also passes.
        let nudged = vec![
            ("a.x".to_string(), 1.5 * (1.0 + 1e-12)),
            ("a.y".to_string(), 0.0),
        ];
        check_or_bless(&path, &nudged, "test", "bless");
    }

    #[test]
    #[should_panic(expected = "golden trace drifted")]
    fn drifting_field_fails_with_diff() {
        let fields = vec![("a.x".to_string(), 1.5)];
        let path = tmp("drift.json");
        fs::write(&path, fields_to_json(&fields).pretty()).unwrap();
        check_or_bless(&path, &[("a.x".to_string(), 2.5)], "test", "bless");
    }

    #[test]
    #[should_panic(expected = "no longer emitted")]
    fn dropped_field_fails() {
        let fields = vec![("a.x".to_string(), 1.5), ("a.y".to_string(), 2.0)];
        let path = tmp("dropped.json");
        fs::write(&path, fields_to_json(&fields).pretty()).unwrap();
        check_or_bless(&path, &[("a.x".to_string(), 1.5)], "test", "bless");
    }
}
