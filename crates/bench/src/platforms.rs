//! Platform constructors and communication measurement helpers shared by
//! the figure experiments.

use moe_model::{ModelConfig, Precision};
use moe_workload::LayerGating;
use moentwine_core::comm::{A2aModel, ParallelLayout};
use moentwine_core::mapping::MappingPlan;
use moentwine_core::placement::ExpertPlacement;
use moentwine_spec::{MappingSpec, PlatformSpec};
use wsc_collectives::{all_to_all_concurrent, Transfer};
use wsc_sim::AnalyticModel;
use wsc_topology::{RouteTable, Topology};

/// A topology plus its precomputed route table. All constructors go
/// through the declarative [`PlatformSpec`] layer, so every figure uses
/// exactly the platforms a scenario file can name.
pub struct Platform {
    /// The interconnect.
    pub topo: Topology,
    /// All-pairs routes.
    pub table: RouteTable,
}

impl Platform {
    /// Materializes a [`PlatformSpec`].
    ///
    /// # Panics
    ///
    /// Panics on a degenerate spec (zero extents) — a programming error in
    /// a figure.
    pub fn from_spec(spec: &PlatformSpec) -> Self {
        let (topo, table) = spec.materialize().expect("valid platform spec");
        Platform { topo, table }
    }

    /// Single wafer `n × n`.
    pub fn wsc(n: u16) -> Self {
        Self::from_spec(&PlatformSpec::wsc(n))
    }

    /// Multi-wafer grid.
    pub fn multi_wsc(wafers_x: u16, wafers_y: u16, n: u16) -> Self {
        Self::from_spec(&PlatformSpec::multi_wsc(wafers_x, wafers_y, n))
    }

    /// DGX cluster of `nodes` 8-GPU boxes.
    pub fn dgx(nodes: u16) -> Self {
        Self::from_spec(&PlatformSpec::dgx(nodes))
    }

    /// NVL72 supernode.
    pub fn nvl72() -> Self {
        Self::from_spec(&PlatformSpec::Nvl72)
    }

    /// Flat supernode of `k` devices.
    pub fn flat(k: u16) -> Self {
        Self::from_spec(&PlatformSpec::Flat { devices: k })
    }
}

/// Which WSC mapping to construct.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WscMapping {
    /// Corner-block baseline.
    Baseline,
    /// Entwined Ring Mapping.
    Er,
    /// Hierarchical ER (multi-wafer).
    Her,
}

/// Builds a mapping plan for a WSC platform with total TP degree `tp`,
/// through the declarative [`MappingSpec`] layer.
///
/// # Panics
///
/// Panics if the TP degree does not tile the platform.
pub fn wsc_plan(platform: &Platform, tp: usize, mapping: WscMapping) -> MappingPlan {
    let spec = match mapping {
        WscMapping::Baseline => MappingSpec::Baseline { tp },
        WscMapping::Er => MappingSpec::Er { tp },
        WscMapping::Her => MappingSpec::Her { tp },
    };
    match spec.layout(&platform.topo).expect("TP tiles platform") {
        moentwine_spec::Layout::Plan(plan) => plan,
        moentwine_spec::Layout::Cluster(_) => unreachable!("WSC mappings produce plans"),
    }
}

/// A balanced gating outcome: every expert receives an equal share of each
/// group's `tokens × top_k` selections (remainders spread round-robin).
pub fn balanced_gating(groups: usize, experts: usize, tokens: u32, top_k: u32) -> LayerGating {
    let selections = tokens as u64 * top_k as u64;
    let base = (selections / experts as u64) as u32;
    let rem = (selections % experts as u64) as usize;
    let counts = (0..groups)
        .map(|_| {
            (0..experts)
                .map(|e| base + u32::from(e < rem))
                .collect::<Vec<_>>()
        })
        .collect();
    LayerGating { counts }
}

/// Fidelity of a communication measurement.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Fidelity {
    /// Flow-level discrete-event simulation (exact congestion).
    Des,
    /// Analytical bottleneck model (fast, validated against DES).
    Analytic,
}

/// Attention all-reduce + MoE all-to-all latency for one layer under
/// balanced gating.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct CommLatency {
    /// All-reduce time, seconds.
    pub all_reduce: f64,
    /// Dispatch + combine time, seconds.
    pub all_to_all: f64,
    /// Per-hop link latency share of the all-to-all (decode-relevant).
    pub link_latency_share: f64,
}

impl CommLatency {
    /// Total communication time.
    pub fn total(&self) -> f64 {
        self.all_reduce + self.all_to_all
    }
}

/// Measures one layer's communication for any layout (WSC mapping or GPU
/// cluster) with balanced gating of `tokens_per_group` tokens per group.
pub fn comm_latency(
    platform: &Platform,
    layout: &dyn ParallelLayout,
    model: &ModelConfig,
    tokens_per_group: u32,
    fidelity: Fidelity,
) -> CommLatency {
    let topo = &platform.topo;
    let token_bytes = model.token_bytes(Precision::Fp16);
    let ar_bytes = tokens_per_group as f64 * token_bytes;

    let ar_schedule = layout.all_reduce_schedule(topo, ar_bytes);
    let all_reduce = match fidelity {
        Fidelity::Des => ar_schedule.run(topo).total_time,
        Fidelity::Analytic => {
            AnalyticModel::new(topo)
                .estimate_schedule(&ar_schedule)
                .total_time
        }
    };

    let placement = ExpertPlacement::balanced(model.num_experts as usize, topo.num_devices(), 1);
    let gating = balanced_gating(
        layout.num_groups(),
        model.num_experts as usize,
        tokens_per_group,
        model.experts_per_token,
    );
    let a2a_model = A2aModel::new(topo, &platform.table, layout);
    let est = a2a_model.estimate(&gating, &placement, token_bytes, tokens_per_group);
    let (all_to_all, latency_part) = match fidelity {
        Fidelity::Analytic => (
            est.dispatch.total_time + est.combine.total_time,
            est.dispatch.latency_time + est.combine.latency_time,
        ),
        Fidelity::Des => {
            let transfers: Vec<Transfer> = a2a_model
                .dispatch_transfers(&gating, &placement, token_bytes)
                .into_iter()
                .map(|(s, d, b)| Transfer::new(s, d, b))
                .collect();
            let dispatch = all_to_all_concurrent(topo, &transfers).run(topo).total_time;
            let reversed: Vec<Transfer> = transfers
                .iter()
                .map(|t| Transfer::new(t.dst, t.src, t.bytes))
                .collect();
            let combine = all_to_all_concurrent(topo, &reversed).run(topo).total_time;
            (
                dispatch + combine,
                est.dispatch.latency_time + est.combine.latency_time,
            )
        }
    };
    CommLatency {
        all_reduce,
        all_to_all,
        link_latency_share: if all_to_all > 0.0 {
            latency_part / all_to_all
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moentwine_core::comm::ClusterLayout;

    #[test]
    fn balanced_gating_conserves_selections() {
        let g = balanced_gating(3, 7, 100, 4);
        for group in &g.counts {
            let sum: u64 = group.iter().map(|&c| c as u64).sum();
            assert_eq!(sum, 400);
        }
    }

    #[test]
    fn des_and_analytic_agree_on_small_mesh() {
        let platform = Platform::wsc(4);
        let plan = wsc_plan(&platform, 4, WscMapping::Er);
        let model = ModelConfig::qwen3_235b();
        let des = comm_latency(&platform, &plan, &model, 256, Fidelity::Des);
        let analytic = comm_latency(&platform, &plan, &model, 256, Fidelity::Analytic);
        // AR is phase-synchronous: exact agreement. A2A: analytic is a
        // bottleneck bound; allow a 2x band.
        assert!((des.all_reduce - analytic.all_reduce).abs() / des.all_reduce < 1e-6);
        let ratio = des.all_to_all / analytic.all_to_all;
        assert!((0.5..=2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn wsc_beats_dgx_at_same_scale() {
        // Fig. 13's headline: the unified wafer network beats DGX clusters.
        let wsc = Platform::wsc(6);
        let plan = wsc_plan(&wsc, 4, WscMapping::Baseline);
        let model = ModelConfig::qwen3_235b();
        let wsc_comm = comm_latency(&wsc, &plan, &model, 256, Fidelity::Analytic);

        let dgx = Platform::dgx(4);
        let layout = ClusterLayout::new(&dgx.topo, 8);
        let dgx_comm = comm_latency(&dgx, &layout, &model, 256, Fidelity::Analytic);
        assert!(
            wsc_comm.total() < dgx_comm.total(),
            "wsc {} vs dgx {}",
            wsc_comm.total(),
            dgx_comm.total()
        );
    }
}
