//! Property test: spec → JSON → spec is an identity across the whole knob
//! space (the lossless-round-trip contract of `moentwine/scenario/v1`).

use moe_workload::{RouterPolicy, Scenario as WorkloadScenario, SchedulingMode, WorkloadMix};
use moentwine_core::balancer::BalancerKind;
use moentwine_core::engine::SummaryMode;
use moentwine_core::fleet::FleetScheduler;
use moentwine_spec::{
    ArrivalSourceSpec, BatchSpec, EngineSpec, FleetSpec, MappingSpec, ModelSpec, PlatformSpec,
    ScenarioSpec, ServingSpec, SweepSpec, WorkloadSpec,
};
use proptest::proptest;
use wsc_sim::CongestionBackend;

fn backend_of(tag: u8) -> CongestionBackend {
    CongestionBackend::all()[tag as usize % 3]
}

fn policy_of(tag: u8) -> RouterPolicy {
    RouterPolicy::all()[tag as usize % 4]
}

fn scenario_of(tag: u8) -> WorkloadScenario {
    WorkloadScenario::all()[tag as usize % 4]
}

fn platform_of(tag: u8, n: u16) -> PlatformSpec {
    match tag % 5 {
        0 => PlatformSpec::Wsc { n },
        1 => PlatformSpec::MultiWsc {
            wafers_x: 1 + (n % 3),
            wafers_y: 1 + (n % 2),
            n,
        },
        2 => PlatformSpec::Dgx { nodes: 1 + n },
        3 => PlatformSpec::Nvl72,
        _ => PlatformSpec::Flat { devices: 8 + n },
    }
}

fn mapping_of(tag: u8, tp: usize) -> MappingSpec {
    match tag % 4 {
        0 => MappingSpec::Baseline { tp },
        1 => MappingSpec::Er { tp },
        2 => MappingSpec::Her { tp },
        _ => MappingSpec::Cluster { tp },
    }
}

fn workload_of(tag: u8, period: f64, weight: f64) -> WorkloadMix {
    match tag % 3 {
        0 => WorkloadMix::Fixed(scenario_of(tag)),
        1 => WorkloadMix::Cycling {
            period,
            scenarios: vec![scenario_of(tag), scenario_of(tag.wrapping_add(1))],
        },
        _ => WorkloadMix::Blend(vec![
            (scenario_of(tag), weight),
            (scenario_of(tag.wrapping_add(2)), 1.0),
        ]),
    }
}

fn workload_spec_of(tag: u8, x: f64) -> Option<WorkloadSpec> {
    use moe_workload::{ClassSpec, Phase};
    let arrivals = match tag % 7 {
        0 => return None,
        1 => ArrivalSourceSpec::Diurnal {
            amplitude: (x / 1.0e6).clamp(0.0, 0.99),
            period: 60.0 + x / 100.0,
        },
        2 => ArrivalSourceSpec::Burst {
            period: 120.0 + x / 100.0,
            burst_duration: 10.0,
            quiet_factor: 0.25,
            burst_factor: 1.0 + x / 1.0e4,
        },
        3 => ArrivalSourceSpec::Spike {
            quiet_duration: 30.0,
            spike_duration: 1.0 + x / 1.0e4,
            spike_factor: 8.0,
        },
        4 => ArrivalSourceSpec::Ramp {
            steps: 1 + (x as usize % 7),
            step_duration: 15.0,
            start_factor: 0.5,
            end_factor: 3.0,
        },
        5 => ArrivalSourceSpec::Phases(vec![
            Phase {
                duration: 5.0 + x / 1.0e4,
                rate_factor: 0.5,
            },
            Phase {
                duration: 20.0,
                rate_factor: 2.0,
            },
        ]),
        _ => ArrivalSourceSpec::Trace {
            path: format!("examples/traces/prop_{}.json", tag),
        },
    };
    let classes = if tag.is_multiple_of(2) {
        vec![
            ClassSpec::interactive()
                .with_weight(1.0 + x / 1.0e4)
                .with_shed_after(0.5),
            ClassSpec::batch(),
        ]
    } else {
        Vec::new()
    };
    Some(WorkloadSpec { arrivals, classes })
}

fn batch_of(tag: u8, wl_tag: u8, tokens: u32, rate: f64) -> BatchSpec {
    match tag % 3 {
        0 => BatchSpec::Fixed {
            tokens_per_group: tokens,
            avg_context: 128.0 + rate,
            phase: if tag.is_multiple_of(2) {
                moe_model::InferencePhase::Decode
            } else {
                moe_model::InferencePhase::Prefill
            },
        },
        1 => BatchSpec::Serving(ServingSpec::hybrid(tokens, 1 + tag as usize, rate)),
        _ => BatchSpec::Serving(ServingSpec {
            mode: match tag % 2 {
                0 => SchedulingMode::PrefillOnly,
                _ => SchedulingMode::DecodeOnly,
            },
            max_batch_tokens: tokens,
            max_active: 1 + tag as usize,
            request_rate: rate,
            iteration_period: 0.005 + rate / 1.0e9,
            summary: match tag % 2 {
                0 => SummaryMode::Exact,
                _ => SummaryMode::Streaming,
            },
            workload: workload_spec_of(wl_tag, rate),
        }),
    }
}

fn balancer_of(tag: u8) -> BalancerKind {
    match tag % 4 {
        0 => BalancerKind::None,
        1 => BalancerKind::Greedy,
        2 => BalancerKind::TopologyAware,
        _ => BalancerKind::NonInvasive,
    }
}

proptest! {
    /// The identity `from_json(to_json(spec)) == spec` over randomized
    /// platform shapes, mappings, workloads, batch modes, engine knobs,
    /// fleet shapes, and sweep axes — including seeds above 2^53, which
    /// the codec carries as decimal strings to stay lossless.
    #[test]
    fn spec_json_roundtrip_is_identity(
        seed in 0u64..u64::MAX,
        n in 2u16..6,
        tp in 1usize..4,
        platform_tag in 0u8..5,
        mapping_tag in 0u8..4,
        workload_tag in 0u8..3,
        batch_tag in 0u8..3,
        wl_tag in 0u8..14,
        backend_tag in 0u8..3,
        balancer_tag in 0u8..4,
        policy_tag in 0u8..4,
        tokens in 1u32..4096,
        rate in 1.0f64..50_000.0,
        ema in 0.01f64..1.0,
        kv in 0.0001f64..1.0,
        stride in 1usize..8,
        microbatches in 1usize..8,
        replicas in 1usize..6,
        iterations in 1usize..5000,
        fleet_on in 0u8..2,
        sweep_on in 0u8..2,
        preset_tag in 0u8..7,
    ) {
        let model = if preset_tag == 6 {
            ModelSpec::Custom(moe_model::ModelConfig::tiny())
        } else {
            ModelSpec::preset(ModelSpec::preset_names()[preset_tag as usize])
        };
        let mut engine = EngineSpec::default()
            .with_seed(seed)
            .with_backend(backend_of(backend_tag))
            .with_balancer(balancer_of(balancer_tag))
            .with_workload(workload_of(workload_tag, 10.0 + rate, 0.5 + ema))
            .with_batch(batch_of(batch_tag, wl_tag, tokens, rate))
            .with_comm_layer_stride(stride)
            .with_kv_hbm_fraction(kv);
        engine.pipeline_microbatches = microbatches;
        engine.load_ema = ema;
        engine.trigger_beta = seed % 100;
        engine.uniform_gating = seed % 2 == 0;

        let mut spec = ScenarioSpec::new(
            format!("prop-{seed}"),
            platform_of(platform_tag, n),
        )
        .with_mapping(mapping_of(mapping_tag, tp))
        .with_model(model)
        .with_engine(engine)
        .with_iterations(iterations);
        if fleet_on == 1 {
            spec = spec.with_fleet(
                FleetSpec::new(replicas, policy_of(policy_tag), rate)
                    .with_backend_overrides(vec![backend_of(backend_tag)])
                    .with_scheduler(match policy_tag % 2 {
                        0 => FleetScheduler::Lockstep,
                        _ => FleetScheduler::EventHeap,
                    }),
            );
        }
        if sweep_on == 1 {
            spec = spec.with_sweep(
                SweepSpec::default()
                    .with_rates(vec![rate, rate * 2.0])
                    .with_policies(vec![policy_of(policy_tag)])
                    .with_replicas(vec![replicas]),
            );
        }

        // The identity, through the tree and through the text layer.
        let json = spec.to_json();
        let back = ScenarioSpec::from_json(&json).expect("parse emitted tree");
        assert_eq!(back, spec);
        let text = spec.to_json_text();
        let back = ScenarioSpec::from_json_text(&text).expect("parse emitted text");
        assert_eq!(back, spec);
    }
}
