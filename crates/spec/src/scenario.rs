//! The scenario root: the typed spec tree and its materialized runner.

use moe_model::ModelConfig;
use moentwine_core::comm::{ClusterLayout, ParallelLayout};
use moentwine_core::engine::{EngineConfig, InferenceEngine, RunSummary, ServingSummary};
use moentwine_core::fleet::{Fleet, FleetSummary, PlatformRefs};
use moentwine_core::mapping::MappingPlan;
use moentwine_core::ConfigError;
use wsc_topology::{RouteTable, Topology};

use crate::engine::{BatchSpec, EngineSpec};
use crate::fleet::FleetSpec;
use crate::model::ModelSpec;
use crate::platform::{MappingSpec, PlatformSpec};
use crate::sweep::SweepSpec;

/// The typed root of the declarative scenario tree. See the
/// [crate docs](crate) for the JSON encoding and the
/// [`Scenario`] runner for materialization.
#[derive(Clone, PartialEq, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (used for manifests and file stems).
    pub name: String,
    /// Which interconnect to build.
    pub platform: PlatformSpec,
    /// How TP groups tile the platform.
    pub mapping: MappingSpec,
    /// Which model to serve.
    pub model: ModelSpec,
    /// Every engine knob.
    pub engine: EngineSpec,
    /// Scale-out shape; `None` runs a single engine.
    pub fleet: Option<FleetSpec>,
    /// Axes to expand into a scenario grid; `None`/empty runs one point.
    pub sweep: Option<SweepSpec>,
    /// Engine iterations (or fleet synchronization rounds).
    pub iterations: usize,
}

impl ScenarioSpec {
    /// A scenario named `name` on `platform`, with ER mapping at TP=4, the
    /// tiny model, default engine knobs, and 100 iterations — override
    /// everything builder-style.
    pub fn new(name: impl Into<String>, platform: PlatformSpec) -> Self {
        ScenarioSpec {
            name: name.into(),
            platform,
            mapping: MappingSpec::er(4),
            model: ModelSpec::preset("tiny"),
            engine: EngineSpec::default(),
            fleet: None,
            sweep: None,
            iterations: 100,
        }
    }

    /// Sets the mapping (builder style).
    pub fn with_mapping(mut self, mapping: MappingSpec) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the model (builder style).
    pub fn with_model(mut self, model: ModelSpec) -> Self {
        self.model = model;
        self
    }

    /// Sets the engine spec (builder style).
    pub fn with_engine(mut self, engine: EngineSpec) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the fleet shape (builder style).
    pub fn with_fleet(mut self, fleet: FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Sets the sweep axes (builder style).
    pub fn with_sweep(mut self, sweep: SweepSpec) -> Self {
        self.sweep = Some(sweep);
        self
    }

    /// Sets the iteration (or fleet round) count (builder style).
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Expands the sweep axes into concrete single-point scenarios
    /// `(label, spec)`, in row-major axis order (rate slowest, replicas
    /// fastest). Without a sweep the base scenario is the single point
    /// (labelled by its name). Expanded specs have `sweep: None`.
    ///
    /// # Errors
    ///
    /// Returns a spec error when the `policies` or `replicas` axis is
    /// populated on a scenario with no fleet (those axes would otherwise
    /// be silent no-ops producing identical points under distinct labels).
    pub fn expand_sweep(&self) -> Result<Vec<(String, ScenarioSpec)>, ConfigError> {
        let sweep = match &self.sweep {
            Some(s) if !s.is_empty() => s.clone(),
            _ => {
                let mut base = self.clone();
                base.sweep = None;
                return Ok(vec![(self.name.clone(), base)]);
            }
        };
        if self.fleet.is_none() {
            if !sweep.policies.is_empty() {
                return Err(ConfigError::spec(
                    "sweep.policies",
                    "a policy axis needs a fleet section (router policies \
                     apply to fleet dispatch)",
                ));
            }
            if !sweep.replicas.is_empty() {
                return Err(ConfigError::spec(
                    "sweep.replicas",
                    "a replica axis needs a fleet section",
                ));
            }
            if !sweep.rates.is_empty() && matches!(self.engine.batch, BatchSpec::Fixed { .. }) {
                return Err(ConfigError::spec(
                    "sweep.rates",
                    "a rate axis needs an arrival stream: a serving batch \
                     spec or a fleet section (fixed batches have no \
                     request rate)",
                ));
            }
        }
        if !sweep.rates.is_empty() {
            if let BatchSpec::Serving(serving) = &self.engine.batch {
                if serving.workload.as_ref().is_some_and(|w| {
                    matches!(w.arrivals, crate::workload::ArrivalSourceSpec::Trace { .. })
                }) {
                    return Err(ConfigError::spec(
                        "sweep.rates",
                        "a rate axis cannot sweep a trace-replay workload: \
                         the trace owns every arrival instant and ignores \
                         the request rate",
                    ));
                }
            }
        }
        if let Some(fleet) = &self.fleet {
            if !sweep.backends.is_empty() && !fleet.backend_overrides.is_empty() {
                return Err(ConfigError::spec(
                    "sweep.backends",
                    "fleet.backend_overrides would shadow the swept \
                     template backend on every replica; drop one of the two",
                ));
            }
        }
        // Empty axes contribute one "inherit the base" point each.
        let rates: Vec<Option<f64>> = opt_axis(&sweep.rates);
        let backends = opt_axis(&sweep.backends);
        let policies = opt_axis(&sweep.policies);
        let replicas = opt_axis(&sweep.replicas);
        let mut points = Vec::with_capacity(sweep.num_points());
        for &rate in &rates {
            for &backend in &backends {
                for &policy in &policies {
                    for &n in &replicas {
                        let mut spec = self.clone();
                        spec.sweep = None;
                        let mut label = self.name.clone();
                        if let Some(rate) = rate {
                            label.push_str(&format!("/rate={rate}"));
                            spec.set_rate(rate);
                        }
                        if let Some(backend) = backend {
                            label.push_str(&format!("/backend={}", backend.name()));
                            spec.engine.backend = backend;
                        }
                        if let Some(policy) = policy {
                            label.push_str(&format!("/policy={}", policy.name()));
                            if let Some(fleet) = &mut spec.fleet {
                                fleet.policy = policy;
                            }
                        }
                        if let Some(n) = n {
                            label.push_str(&format!("/replicas={n}"));
                            if let Some(fleet) = &mut spec.fleet {
                                fleet.replicas = n;
                            }
                        }
                        spec.name = label.clone();
                        points.push((label, spec));
                    }
                }
            }
        }
        Ok(points)
    }

    /// Applies a swept arrival rate to whichever layer owns arrivals.
    fn set_rate(&mut self, rate: f64) {
        if let Some(fleet) = &mut self.fleet {
            fleet.request_rate = rate;
        } else if let BatchSpec::Serving(serving) = &mut self.engine.batch {
            serving.request_rate = rate;
        }
    }

    /// Materializes the platform, route table, layout, and model into a
    /// runnable [`Scenario`]. Cheap spec-level validation (unknown preset,
    /// mapping mismatch, engine knobs, fleet shape) all happens here, so
    /// [`Scenario::run`] can only fail on the engine/fleet constructors
    /// re-checking the same invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found anywhere in the tree. A
    /// populated sweep section is rejected here: a [`Scenario`] is one
    /// point — call [`ScenarioSpec::expand_sweep`] and build each expanded
    /// spec (the `scenario` bench bin does this automatically).
    pub fn build(&self) -> Result<Scenario, ConfigError> {
        if self.sweep.as_ref().is_some_and(|s| !s.is_empty()) {
            return Err(ConfigError::spec(
                "sweep",
                "sweep axes present: expand_sweep() and build each point \
                 (the `scenario` bin does this automatically)",
            ));
        }
        let (topo, table) = self.platform.materialize()?;
        let layout = self.mapping.layout(&topo)?;
        let model = self.model.resolve()?;
        // Validate the engine knobs (and the fleet shape) up front.
        self.engine.engine_config(model.clone())?;
        let mut decode = None;
        if let Some(fleet) = &self.fleet {
            if fleet.replicas == 0 {
                return Err(ConfigError::ReplicasZero);
            }
            if matches!(self.engine.batch, BatchSpec::Fixed { .. }) {
                return Err(ConfigError::FleetNeedsServingBatch);
            }
            // Re-check here because a sweep may have rewritten `replicas`
            // after the codec validated the roles/timeline at parse time.
            fleet.validate_shape()?;
            if let (Some(platform), Some(mapping)) = (&fleet.decode_platform, &fleet.decode_mapping)
            {
                let (decode_topo, decode_table) = platform.materialize()?;
                let decode_layout = mapping.layout(&decode_topo)?;
                decode = Some((decode_topo, decode_table, decode_layout));
            }
        }
        Ok(Scenario {
            spec: self.clone(),
            model,
            topo,
            table,
            layout,
            decode,
        })
    }
}

fn opt_axis<T: Copy>(axis: &[T]) -> Vec<Option<T>> {
    if axis.is_empty() {
        vec![None]
    } else {
        axis.iter().copied().map(Some).collect()
    }
}

/// A materialized layout: a WSC mapping plan or a switch-cluster layout.
#[derive(Clone, Debug)]
pub enum Layout {
    /// A mesh mapping plan (baseline / ER / HER).
    Plan(MappingPlan),
    /// Contiguous TP groups on a switch platform.
    Cluster(ClusterLayout),
}

impl Layout {
    /// The layout as the engine's [`ParallelLayout`] trait object.
    pub fn as_parallel(&self) -> &dyn ParallelLayout {
        match self {
            Layout::Plan(plan) => plan,
            Layout::Cluster(cluster) => cluster,
        }
    }

    /// The mapping plan, when this is a mesh layout.
    pub fn as_plan(&self) -> Option<&MappingPlan> {
        match self {
            Layout::Plan(plan) => Some(plan),
            Layout::Cluster(_) => None,
        }
    }
}

/// What a scenario run produced: the engine's own summary types,
/// unchanged.
#[derive(Clone, PartialEq, Debug)]
pub enum ScenarioOutcome {
    /// A single-engine run.
    Engine {
        /// Per-iteration aggregate.
        run: RunSummary,
        /// Request-level serving statistics (zeroed in fixed-batch mode;
        /// boxed to keep the variants close in size).
        serving: Box<ServingSummary>,
    },
    /// A fleet run (boxed: a `FleetSummary` dwarfs the other fields).
    Fleet(Box<FleetSummary>),
}

impl ScenarioOutcome {
    /// The engine summaries, when this was a single-engine run.
    pub fn as_engine(&self) -> Option<(&RunSummary, &ServingSummary)> {
        match self {
            ScenarioOutcome::Engine { run, serving } => Some((run, serving.as_ref())),
            ScenarioOutcome::Fleet(_) => None,
        }
    }

    /// The fleet summary, when this was a fleet run.
    pub fn as_fleet(&self) -> Option<&FleetSummary> {
        match self {
            ScenarioOutcome::Fleet(summary) => Some(summary.as_ref()),
            ScenarioOutcome::Engine { .. } => None,
        }
    }
}

/// A materialized scenario: the topology, route table, layout, and model
/// built once from a [`ScenarioSpec`], ready to run (possibly repeatedly —
/// every [`Scenario::run`] starts from a fresh engine/fleet, so runs are
/// independent and deterministic).
#[derive(Debug)]
pub struct Scenario {
    spec: ScenarioSpec,
    model: ModelConfig,
    topo: Topology,
    table: RouteTable,
    layout: Layout,
    /// Decode-tier platform for disaggregated fleets (`None` runs every
    /// role on the primary platform).
    decode: Option<(Topology, RouteTable, Layout)>,
}

impl Scenario {
    /// The spec this scenario was built from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The resolved model.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The materialized topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The materialized route table.
    pub fn route_table(&self) -> &RouteTable {
        &self.table
    }

    /// The materialized layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// The validated engine config the run will use (the fleet path uses
    /// it as the replica template).
    ///
    /// # Errors
    ///
    /// Returns whatever [`EngineConfig::validate`] rejects.
    pub fn engine_config(&self) -> Result<EngineConfig, ConfigError> {
        self.spec.engine.engine_config(self.model.clone())
    }

    /// Runs the scenario: `iterations` engine steps, or `iterations` fleet
    /// synchronization rounds when a [`FleetSpec`] is present. Returns the
    /// engine's existing summary types.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] of the engine/fleet constructor (the
    /// same checks [`ScenarioSpec::build`] already ran).
    pub fn run(&self) -> Result<ScenarioOutcome, ConfigError> {
        let config = self.engine_config()?;
        match &self.spec.fleet {
            None => {
                let mut engine = InferenceEngine::try_new(
                    &self.topo,
                    &self.table,
                    self.layout.as_parallel(),
                    config,
                )?;
                let run = engine.run(self.spec.iterations);
                let serving = Box::new(engine.serving_summary());
                Ok(ScenarioOutcome::Engine { run, serving })
            }
            Some(fleet_spec) => {
                // `try_new_disaggregated` with `decode: None` is exactly
                // `try_new`, so the colocated path is bit-identical.
                let prefill = PlatformRefs {
                    topo: &self.topo,
                    table: &self.table,
                    layout: self.layout.as_parallel(),
                };
                let decode = self
                    .decode
                    .as_ref()
                    .map(|(topo, table, layout)| PlatformRefs {
                        topo,
                        table,
                        layout: layout.as_parallel(),
                    });
                let mut fleet =
                    Fleet::try_new_disaggregated(prefill, decode, fleet_spec.fleet_config(config))?;
                fleet.run(self.spec.iterations);
                Ok(ScenarioOutcome::Fleet(Box::new(fleet.summary())))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServingSpec;
    use moe_workload::RouterPolicy;
    use wsc_sim::CongestionBackend;

    fn serving_spec() -> ScenarioSpec {
        let engine = EngineSpec::default()
            .with_seed(11)
            .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 4.0e3)))
            .with_kv_hbm_fraction(1.0e-3);
        ScenarioSpec::new("unit", PlatformSpec::wsc(4))
            .with_engine(engine)
            .with_iterations(30)
    }

    #[test]
    fn engine_scenario_runs() {
        let outcome = serving_spec().build().unwrap().run().unwrap();
        let (run, serving) = outcome.as_engine().unwrap();
        assert_eq!(run.iterations, 30);
        assert!(serving.sim_seconds > 0.0);
    }

    #[test]
    fn fleet_scenario_runs_and_fixed_batch_fleet_is_rejected() {
        let spec = serving_spec()
            .with_fleet(FleetSpec::new(2, RouterPolicy::RoundRobin, 4.0e3))
            .with_iterations(20);
        let outcome = spec.build().unwrap().run().unwrap();
        let summary = outcome.as_fleet().unwrap();
        assert_eq!(summary.replicas, 2);
        assert_eq!(summary.rounds, 20);

        let bad = ScenarioSpec::new("bad", PlatformSpec::wsc(4)).with_fleet(FleetSpec::new(
            2,
            RouterPolicy::RoundRobin,
            4.0e3,
        ));
        assert_eq!(
            bad.build().unwrap_err(),
            ConfigError::FleetNeedsServingBatch
        );
    }

    #[test]
    fn chaos_fleet_scenario_runs_and_bad_timelines_fail_at_build() {
        use moentwine_core::fleet::{FleetEvent, FleetEventKind};
        let events = vec![
            FleetEvent {
                time: 3.0e-4,
                kind: FleetEventKind::Crash { replica: 1 },
            },
            FleetEvent {
                time: 6.0e-4,
                kind: FleetEventKind::Recover { replica: 1 },
            },
        ];
        let spec = serving_spec()
            .with_fleet(
                FleetSpec::new(2, RouterPolicy::LeastQueueDepth, 1.0e5).with_events(events.clone()),
            )
            .with_iterations(250);
        let outcome = spec.build().unwrap().run().unwrap();
        let summary = outcome.as_fleet().unwrap();
        assert_eq!(summary.availability.events_applied, 2);
        assert_eq!(summary.availability.replica_states, vec!["active"; 2]);
        assert!(summary.availability.available_fraction < 1.0);

        // A sweep shrinking the fleet below a timeline's replica indices
        // fails at build time with the typed timeline error.
        let swept = serving_spec()
            .with_fleet(FleetSpec::new(2, RouterPolicy::RoundRobin, 1.0e3).with_events(events))
            .with_sweep(SweepSpec::default().with_replicas(vec![1]));
        let (_, point) = swept.expand_sweep().unwrap().pop().unwrap();
        assert!(matches!(
            point.build().unwrap_err(),
            ConfigError::FleetEventReplicaOutOfRange { .. }
        ));
    }

    #[test]
    fn disaggregated_scenario_prices_kv_transfers_on_the_decode_platform() {
        use crate::platform::{MappingSpec, PlatformSpec};
        use moentwine_core::fleet::ReplicaRole;
        let roles = vec![
            ReplicaRole::Prefill,
            ReplicaRole::Prefill,
            ReplicaRole::Decode,
            ReplicaRole::Decode,
        ];
        let spec = serving_spec()
            .with_fleet(
                FleetSpec::new(4, RouterPolicy::LeastQueueDepth, 2.0e4)
                    .with_roles(roles.clone())
                    .with_decode_platform(PlatformSpec::dgx(1), MappingSpec::cluster(8)),
            )
            .with_iterations(250);
        let outcome = spec.build().unwrap().run().unwrap();
        let summary = outcome.as_fleet().unwrap();
        assert!(summary.handoff.kv_transfers > 0);
        assert!(summary.handoff.kv_transfer_seconds > 0.0);

        // The same shape without the heterogeneous decode platform also
        // runs (decode replicas share the primary wafer).
        let homogeneous = serving_spec()
            .with_fleet(FleetSpec::new(4, RouterPolicy::LeastQueueDepth, 2.0e4).with_roles(roles))
            .with_iterations(250);
        let outcome = homogeneous.build().unwrap().run().unwrap();
        assert!(outcome.as_fleet().unwrap().handoff.kv_transfers > 0);

        // Shape errors fail at build, before any engine is constructed.
        let bad = serving_spec().with_fleet(
            FleetSpec::new(2, RouterPolicy::RoundRobin, 1.0e3)
                .with_roles(vec![ReplicaRole::Prefill; 2]),
        );
        assert_eq!(bad.build().unwrap_err(), ConfigError::FleetNoDecodeCapacity);
    }

    #[test]
    fn sweep_expansion_is_row_major_and_rewrites_axes() {
        let spec = serving_spec()
            .with_fleet(FleetSpec::new(1, RouterPolicy::RoundRobin, 1.0e3))
            .with_sweep(
                SweepSpec::default()
                    .with_rates(vec![1.0e3, 2.0e3])
                    .with_policies(vec![
                        RouterPolicy::RoundRobin,
                        RouterPolicy::PowerOfTwoChoices,
                    ])
                    .with_replicas(vec![1, 2]),
            );
        let points = spec.expand_sweep().unwrap();
        assert_eq!(points.len(), 8);
        // Replicas vary fastest, rate slowest.
        assert_eq!(points[0].1.fleet.as_ref().unwrap().replicas, 1);
        assert_eq!(points[1].1.fleet.as_ref().unwrap().replicas, 2);
        assert_eq!(points[0].1.fleet.as_ref().unwrap().request_rate, 1.0e3);
        assert_eq!(points[7].1.fleet.as_ref().unwrap().request_rate, 2.0e3);
        assert_eq!(
            points[7].1.fleet.as_ref().unwrap().policy,
            RouterPolicy::PowerOfTwoChoices
        );
        assert!(points.iter().all(|(_, s)| s.sweep.is_none()));
        assert_eq!(points[3].0, "unit/rate=1000/policy=power-of-two/replicas=2");

        // Engine-only sweeps rewrite the serving rate instead.
        let engine_sweep = serving_spec().with_sweep(
            SweepSpec::default()
                .with_rates(vec![9.0e3])
                .with_backends(vec![CongestionBackend::FlowSimCached]),
        );
        let points = engine_sweep.expand_sweep().unwrap();
        assert_eq!(points.len(), 1);
        let BatchSpec::Serving(s) = &points[0].1.engine.batch else {
            panic!("serving batch expected")
        };
        assert_eq!(s.request_rate, 9.0e3);
        assert_eq!(points[0].1.engine.backend, CongestionBackend::FlowSimCached);

        // No sweep: the base scenario is the single point.
        assert_eq!(serving_spec().expand_sweep().unwrap().len(), 1);

        // Fleet-only axes on an engine-only scenario are typed errors, not
        // silent no-ops.
        let bad = serving_spec()
            .with_sweep(SweepSpec::default().with_policies(vec![RouterPolicy::RoundRobin]));
        assert!(matches!(
            bad.expand_sweep().unwrap_err(),
            ConfigError::Spec { .. }
        ));
        let bad = serving_spec().with_sweep(SweepSpec::default().with_replicas(vec![2]));
        assert!(bad.expand_sweep().is_err());
        // A rate axis needs an arrival stream somewhere.
        let bad = ScenarioSpec::new("fixed", PlatformSpec::wsc(4))
            .with_sweep(SweepSpec::default().with_rates(vec![1.0e3]));
        assert!(matches!(
            bad.expand_sweep().unwrap_err(),
            ConfigError::Spec { .. }
        ));
        // A backends axis is shadowed by fleet backend_overrides.
        let bad = serving_spec()
            .with_fleet(
                FleetSpec::new(2, RouterPolicy::RoundRobin, 1.0e3)
                    .with_backend_overrides(vec![CongestionBackend::Analytic]),
            )
            .with_sweep(SweepSpec::default().with_backends(vec![CongestionBackend::FlowSim]));
        assert!(matches!(
            bad.expand_sweep().unwrap_err(),
            ConfigError::Spec { .. }
        ));

        // And a populated sweep cannot be built directly: a Scenario is
        // one point.
        let swept = serving_spec().with_sweep(SweepSpec::default().with_rates(vec![1.0e3]));
        assert!(matches!(
            swept.build().unwrap_err(),
            ConfigError::Spec { .. }
        ));
    }

    #[test]
    fn spec_runs_match_hand_construction_exactly() {
        // The same scenario, spec-driven and hand-wired: identical
        // summaries (the equivalence the golden suite pins platform-wide).
        let spec = serving_spec();
        let outcome = spec.build().unwrap().run().unwrap();
        let (spec_run, spec_serving) = outcome.as_engine().unwrap();

        let (topo, table) = PlatformSpec::wsc(4).materialize().unwrap();
        let layout = MappingSpec::er(4).layout(&topo).unwrap();
        let config = spec.engine.engine_config(ModelConfig::tiny()).unwrap();
        let mut engine = InferenceEngine::new(&topo, &table, layout.as_parallel(), config);
        let run = engine.run(30);
        assert_eq!(*spec_run, run);
        assert_eq!(*spec_serving, engine.serving_summary());
    }
}
