//! Sweep specifications: axes that expand one scenario into a grid.

use moe_workload::RouterPolicy;
use wsc_sim::CongestionBackend;

/// Axes to sweep over a base scenario. Every non-empty axis replaces the
/// corresponding base field; the cartesian product of all non-empty axes
/// becomes the expanded scenario list (see
/// [`ScenarioSpec::expand_sweep`](crate::ScenarioSpec::expand_sweep)).
/// An empty (default) sweep leaves the base scenario as the single point.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SweepSpec {
    /// Arrival rates (requests/second). Applies to the serving batch spec,
    /// or to the fleet's global rate in fleet scenarios.
    pub rates: Vec<f64>,
    /// Communication-pricing backends for the engine (template). A fleet
    /// scenario with non-empty `FleetSpec::backend_overrides` rejects this
    /// axis (the overrides would shadow the swept template on every
    /// replica, making the axis a silent no-op).
    pub backends: Vec<CongestionBackend>,
    /// Router policies (fleet scenarios only; an engine-only scenario
    /// with this axis populated fails `expand_sweep`).
    pub policies: Vec<RouterPolicy>,
    /// Replica counts (fleet scenarios only; an engine-only scenario
    /// with this axis populated fails `expand_sweep`).
    pub replicas: Vec<usize>,
}

impl SweepSpec {
    /// Sweeps arrival rates (builder style).
    pub fn with_rates(mut self, rates: Vec<f64>) -> Self {
        self.rates = rates;
        self
    }

    /// Sweeps pricing backends (builder style).
    pub fn with_backends(mut self, backends: Vec<CongestionBackend>) -> Self {
        self.backends = backends;
        self
    }

    /// Sweeps router policies (builder style).
    pub fn with_policies(mut self, policies: Vec<RouterPolicy>) -> Self {
        self.policies = policies;
        self
    }

    /// Sweeps replica counts (builder style).
    pub fn with_replicas(mut self, replicas: Vec<usize>) -> Self {
        self.replicas = replicas;
        self
    }

    /// True when no axis is populated (the base scenario is the only
    /// point).
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
            && self.backends.is_empty()
            && self.policies.is_empty()
            && self.replicas.is_empty()
    }

    /// Number of grid points the sweep expands to (1 when empty).
    pub fn num_points(&self) -> usize {
        let axis = |n: usize| n.max(1);
        axis(self.rates.len())
            * axis(self.backends.len())
            * axis(self.policies.len())
            * axis(self.replicas.len())
    }
}
