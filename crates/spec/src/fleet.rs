//! Fleet specifications: replicas behind a front-end router.

use moe_workload::RouterPolicy;
use moentwine_core::engine::EngineConfig;
use moentwine_core::fleet::{
    validate_fleet_events_for_roles, FleetConfig, FleetEvent, FleetScheduler, ReplicaRole,
};
use moentwine_core::ConfigError;
use wsc_sim::CongestionBackend;

use crate::platform::{MappingSpec, PlatformSpec};

/// Scale-out shape: N replica engines dispatched by a router policy under
/// a global arrival stream (the spec mirror of [`FleetConfig`]).
#[derive(Clone, PartialEq, Debug)]
pub struct FleetSpec {
    /// Number of replica engines.
    pub replicas: usize,
    /// Front-end dispatch policy.
    pub policy: RouterPolicy,
    /// Global arrival rate (requests/second across the whole fleet).
    pub request_rate: f64,
    /// Per-replica congestion-backend overrides (empty uses the engine
    /// template's backend everywhere; otherwise replica `i` gets
    /// `overrides[i % len]`).
    pub backend_overrides: Vec<CongestionBackend>,
    /// Replica stepping discipline: event-heap (default) or lock-step.
    pub scheduler: FleetScheduler,
    /// Elasticity/failure timeline, sorted by time (empty = the immortal
    /// fixed fleet). Validated against `replicas` by
    /// [`validate_fleet_events`](moentwine_core::fleet::validate_fleet_events)
    /// both at parse time and when the fleet is built.
    pub events: Vec<FleetEvent>,
    /// Per-replica roles for disaggregated serving (empty = every replica
    /// [`ReplicaRole::Colocated`], the classic homogeneous fleet; otherwise
    /// must match `replicas` in length). Validated at parse time and by
    /// [`Fleet::try_new_disaggregated`](moentwine_core::fleet::Fleet::try_new_disaggregated).
    pub roles: Vec<ReplicaRole>,
    /// Platform for [`ReplicaRole::Decode`] replicas (`None` puts every
    /// role on the scenario's primary platform). Only meaningful when
    /// `roles` contains a decode replica.
    pub decode_platform: Option<PlatformSpec>,
    /// Mapping for the decode platform (required when `decode_platform`
    /// is set; ignored otherwise).
    pub decode_mapping: Option<MappingSpec>,
}

impl FleetSpec {
    /// A fleet of `replicas` engines dispatched by `policy` at
    /// `request_rate` requests/second.
    pub fn new(replicas: usize, policy: RouterPolicy, request_rate: f64) -> Self {
        FleetSpec {
            replicas,
            policy,
            request_rate,
            backend_overrides: Vec::new(),
            scheduler: FleetScheduler::default(),
            events: Vec::new(),
            roles: Vec::new(),
            decode_platform: None,
            decode_mapping: None,
        }
    }

    /// Sets per-replica backend overrides (builder style).
    pub fn with_backend_overrides(mut self, overrides: Vec<CongestionBackend>) -> Self {
        self.backend_overrides = overrides;
        self
    }

    /// Sets the replica stepping discipline (builder style).
    pub fn with_scheduler(mut self, scheduler: FleetScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the elasticity/failure timeline (builder style).
    pub fn with_events(mut self, events: Vec<FleetEvent>) -> Self {
        self.events = events;
        self
    }

    /// Sets per-replica roles for disaggregated serving (builder style).
    pub fn with_roles(mut self, roles: Vec<ReplicaRole>) -> Self {
        self.roles = roles;
        self
    }

    /// Sets the decode-tier platform and mapping (builder style).
    pub fn with_decode_platform(mut self, platform: PlatformSpec, mapping: MappingSpec) -> Self {
        self.decode_platform = Some(platform);
        self.decode_mapping = Some(mapping);
        self
    }

    /// Validates the disaggregation shape: decode-platform/mapping
    /// pairing, role-list length, prefill/decode capacity, unused decode
    /// platforms, and the elasticity timeline under the resolved roles —
    /// the same typed errors
    /// [`Fleet::try_new_disaggregated`](moentwine_core::fleet::Fleet::try_new_disaggregated)
    /// raises, so bad specs fail at parse/build time instead of at run
    /// time.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] violated by the shape.
    pub fn validate_shape(&self) -> Result<(), ConfigError> {
        if self.decode_platform.is_some() != self.decode_mapping.is_some() {
            return Err(ConfigError::spec(
                "fleet.decode_platform",
                "decode_platform and decode_mapping must be set together",
            ));
        }
        if !self.roles.is_empty() && self.roles.len() != self.replicas {
            return Err(ConfigError::FleetRolesLengthMismatch {
                roles: self.roles.len(),
                replicas: self.replicas,
            });
        }
        let mut resolved = self.roles.clone();
        resolved.resize(self.replicas, ReplicaRole::Colocated);
        if resolved.iter().any(|r| *r != ReplicaRole::Colocated) {
            if !resolved.iter().any(|r| r.prefill_capable()) {
                return Err(ConfigError::FleetNoPrefillCapacity);
            }
            if !resolved.iter().any(|r| r.decode_capable()) {
                return Err(ConfigError::FleetNoDecodeCapacity);
            }
        }
        if self.decode_platform.is_some() && !resolved.contains(&ReplicaRole::Decode) {
            return Err(ConfigError::FleetDecodePlatformUnused);
        }
        validate_fleet_events_for_roles(&resolved, &self.events)
    }

    /// Combines the fleet shape with a replica engine template into the
    /// core [`FleetConfig`] (validation happens in
    /// [`Fleet::try_new`](moentwine_core::fleet::Fleet::try_new)).
    pub fn fleet_config(&self, engine: EngineConfig) -> FleetConfig {
        FleetConfig::new(self.replicas, self.policy, self.request_rate, engine)
            .with_backend_overrides(self.backend_overrides.clone())
            .with_scheduler(self.scheduler)
            .with_events(self.events.clone())
            .with_roles(self.roles.clone())
    }
}
