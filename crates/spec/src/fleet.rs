//! Fleet specifications: replicas behind a front-end router.

use moe_workload::RouterPolicy;
use moentwine_core::engine::EngineConfig;
use moentwine_core::fleet::{FleetConfig, FleetEvent, FleetScheduler};
use wsc_sim::CongestionBackend;

/// Scale-out shape: N replica engines dispatched by a router policy under
/// a global arrival stream (the spec mirror of [`FleetConfig`]).
#[derive(Clone, PartialEq, Debug)]
pub struct FleetSpec {
    /// Number of replica engines.
    pub replicas: usize,
    /// Front-end dispatch policy.
    pub policy: RouterPolicy,
    /// Global arrival rate (requests/second across the whole fleet).
    pub request_rate: f64,
    /// Per-replica congestion-backend overrides (empty uses the engine
    /// template's backend everywhere; otherwise replica `i` gets
    /// `overrides[i % len]`).
    pub backend_overrides: Vec<CongestionBackend>,
    /// Replica stepping discipline: event-heap (default) or lock-step.
    pub scheduler: FleetScheduler,
    /// Elasticity/failure timeline, sorted by time (empty = the immortal
    /// fixed fleet). Validated against `replicas` by
    /// [`validate_fleet_events`](moentwine_core::fleet::validate_fleet_events)
    /// both at parse time and when the fleet is built.
    pub events: Vec<FleetEvent>,
}

impl FleetSpec {
    /// A fleet of `replicas` engines dispatched by `policy` at
    /// `request_rate` requests/second.
    pub fn new(replicas: usize, policy: RouterPolicy, request_rate: f64) -> Self {
        FleetSpec {
            replicas,
            policy,
            request_rate,
            backend_overrides: Vec::new(),
            scheduler: FleetScheduler::default(),
            events: Vec::new(),
        }
    }

    /// Sets per-replica backend overrides (builder style).
    pub fn with_backend_overrides(mut self, overrides: Vec<CongestionBackend>) -> Self {
        self.backend_overrides = overrides;
        self
    }

    /// Sets the replica stepping discipline (builder style).
    pub fn with_scheduler(mut self, scheduler: FleetScheduler) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the elasticity/failure timeline (builder style).
    pub fn with_events(mut self, events: Vec<FleetEvent>) -> Self {
        self.events = events;
        self
    }

    /// Combines the fleet shape with a replica engine template into the
    /// core [`FleetConfig`] (validation happens in
    /// [`Fleet::try_new`](moentwine_core::fleet::Fleet::try_new)).
    pub fn fleet_config(&self, engine: EngineConfig) -> FleetConfig {
        FleetConfig::new(self.replicas, self.policy, self.request_rate, engine)
            .with_backend_overrides(self.backend_overrides.clone())
            .with_scheduler(self.scheduler)
            .with_events(self.events.clone())
    }
}
