//! Workload realism specifications: arrival sources (diurnal, shaped
//! bursts, trace replay) and multi-tenant SLO classes.
//!
//! [`WorkloadSpec`] is the spec mirror of
//! [`moe_workload::WorkloadProfile`]: it rides as the optional
//! `"workload"` member of a serving batch spec
//! ([`ServingSpec`](crate::ServingSpec)) and materializes through
//! [`WorkloadSpec::to_profile`]. The shape generators (`burst` / `spike` /
//! `ramp`) are spec-level sugar: they expand to the engine's validated
//! piecewise-constant [`Phase`] schedules, so the engine layer only knows
//! three arrival sources (diurnal, phases, trace).
//!
//! Trace replay reads checked-in timestamped request files (schema
//! [`TRACE_SCHEMA`], `moentwine/trace/v1`; see `examples/traces/`); the
//! path is resolved relative to the working directory, which is the repo
//! root for every bench bin and CI job. Numeric validation happens at
//! codec parse time; the file itself is only read when the profile is
//! materialized, so parsing a scenario document never touches the
//! filesystem.

use moe_workload::profile::{validate_classes, validate_phases};
use moe_workload::{ArrivalSpec, ClassSpec, Phase, RequestClass, TraceRequest, WorkloadProfile};
use moentwine_core::ConfigError;
use moentwine_json::Value;

/// Schema identifier embedded in (and required of) every trace-replay
/// request file.
pub const TRACE_SCHEMA: &str = "moentwine/trace/v1";

/// Where arrivals come from — the spec mirror (plus sugar) of
/// [`ArrivalSpec`].
#[derive(Clone, PartialEq, Debug)]
pub enum ArrivalSourceSpec {
    /// Time-varying Poisson `rate × (1 + amplitude·sin(2πt/period))` —
    /// the parameterised form of the legacy hard-coded diurnal stream.
    Diurnal {
        /// Diurnal amplitude in `[0, 1)`.
        amplitude: f64,
        /// Cycle period, seconds.
        period: f64,
    },
    /// A repeating quiet/burst cycle: `period - burst_duration` seconds at
    /// `quiet_factor × rate`, then `burst_duration` seconds at
    /// `burst_factor × rate`.
    Burst {
        /// Full cycle length, seconds.
        period: f64,
        /// Burst length within each cycle, seconds.
        burst_duration: f64,
        /// Rate multiplier outside the burst.
        quiet_factor: f64,
        /// Rate multiplier inside the burst.
        burst_factor: f64,
    },
    /// A base-rate stream interrupted by periodic spikes:
    /// `quiet_duration` seconds at the base rate, then `spike_duration`
    /// seconds at `spike_factor × rate`.
    Spike {
        /// Seconds at the base rate before each spike.
        quiet_duration: f64,
        /// Spike length, seconds.
        spike_duration: f64,
        /// Rate multiplier inside the spike.
        spike_factor: f64,
    },
    /// A staircase from `start_factor × rate` to `end_factor × rate` over
    /// `steps` equal steps of `step_duration` seconds (then the cycle
    /// repeats).
    Ramp {
        /// Number of staircase steps (≥ 1).
        steps: usize,
        /// Seconds per step.
        step_duration: f64,
        /// Rate multiplier of the first step.
        start_factor: f64,
        /// Rate multiplier of the last step.
        end_factor: f64,
    },
    /// An explicit piecewise-constant phase schedule (what the shape sugar
    /// expands to).
    Phases(Vec<Phase>),
    /// Replay of a checked-in timestamped request file (schema
    /// [`TRACE_SCHEMA`]). The configured request rate is ignored — the
    /// trace owns every arrival instant.
    Trace {
        /// Path of the trace file, relative to the working directory.
        path: String,
    },
}

impl ArrivalSourceSpec {
    /// The default diurnal source (the legacy hard-coded cycle).
    pub fn diurnal_default() -> Self {
        ArrivalSourceSpec::Diurnal {
            amplitude: moe_workload::DEFAULT_DIURNAL_AMPLITUDE,
            period: moe_workload::DEFAULT_DIURNAL_PERIOD_SECS,
        }
    }

    /// Expands a shape generator to its phase list (`None` for the
    /// diurnal and trace sources, which do not go through phases).
    fn to_phases(&self) -> Option<Vec<Phase>> {
        match *self {
            ArrivalSourceSpec::Diurnal { .. } | ArrivalSourceSpec::Trace { .. } => None,
            ArrivalSourceSpec::Burst {
                period,
                burst_duration,
                quiet_factor,
                burst_factor,
            } => Some(vec![
                Phase {
                    duration: period - burst_duration,
                    rate_factor: quiet_factor,
                },
                Phase {
                    duration: burst_duration,
                    rate_factor: burst_factor,
                },
            ]),
            ArrivalSourceSpec::Spike {
                quiet_duration,
                spike_duration,
                spike_factor,
            } => Some(vec![
                Phase {
                    duration: quiet_duration,
                    rate_factor: 1.0,
                },
                Phase {
                    duration: spike_duration,
                    rate_factor: spike_factor,
                },
            ]),
            ArrivalSourceSpec::Ramp {
                steps,
                step_duration,
                start_factor,
                end_factor,
            } => {
                let n = steps.max(1);
                Some(
                    (0..n)
                        .map(|i| {
                            let t = if n == 1 {
                                0.0
                            } else {
                                i as f64 / (n - 1) as f64
                            };
                            Phase {
                                duration: step_duration,
                                rate_factor: start_factor + t * (end_factor - start_factor),
                            }
                        })
                        .collect(),
                )
            }
            ArrivalSourceSpec::Phases(ref phases) => Some(phases.clone()),
        }
    }

    /// Numeric validation (no file I/O): the checks the codec runs at
    /// parse time so a malformed document fails before anything is built.
    ///
    /// # Errors
    ///
    /// Returns the profile layer's typed [`ConfigError::Workload`]
    /// variants.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            ArrivalSourceSpec::Diurnal { amplitude, period } => ArrivalSpec::Diurnal {
                amplitude: *amplitude,
                period: *period,
            }
            .validate()?,
            ArrivalSourceSpec::Trace { path } => {
                if path.is_empty() {
                    return Err(ConfigError::spec(
                        "workload.arrivals.path",
                        "trace path must be non-empty",
                    ));
                }
            }
            ArrivalSourceSpec::Ramp { steps, .. } if *steps == 0 => {
                return Err(ConfigError::spec(
                    "workload.arrivals.steps",
                    "a ramp needs at least one step",
                ));
            }
            _ => validate_phases(&self.to_phases().expect("shape sources expand to phases"))?,
        }
        Ok(())
    }
}

impl Default for ArrivalSourceSpec {
    fn default() -> Self {
        Self::diurnal_default()
    }
}

/// The serving workload shape as data: an arrival source plus per-tenant
/// request classes with SLO targets. An empty class list means the
/// profile's default single interactive tenant.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct WorkloadSpec {
    /// Where arrivals come from.
    pub arrivals: ArrivalSourceSpec,
    /// Tenant classes (traffic shares, SLO targets, shed deadlines);
    /// empty means the default single interactive tenant.
    pub classes: Vec<ClassSpec>,
}

impl WorkloadSpec {
    /// A workload over `arrivals` with the default single tenant.
    pub fn new(arrivals: ArrivalSourceSpec) -> Self {
        WorkloadSpec {
            arrivals,
            classes: Vec::new(),
        }
    }

    /// Sets the tenant classes (builder style).
    pub fn with_classes(mut self, classes: Vec<ClassSpec>) -> Self {
        self.classes = classes;
        self
    }

    /// Numeric validation (no file I/O) — what the codec runs at parse
    /// time.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] for any out-of-range knob.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.arrivals.validate()?;
        if !self.classes.is_empty() {
            validate_classes(&self.classes)?;
        }
        Ok(())
    }

    /// Materializes the profile the engine consumes, reading the trace
    /// file for [`ArrivalSourceSpec::Trace`] sources.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ConfigError`] for out-of-range knobs, an
    /// unreadable or malformed trace file, or an invalid trace.
    pub fn to_profile(&self) -> Result<WorkloadProfile, ConfigError> {
        self.validate()?;
        let arrivals = match &self.arrivals {
            ArrivalSourceSpec::Diurnal { amplitude, period } => ArrivalSpec::Diurnal {
                amplitude: *amplitude,
                period: *period,
            },
            ArrivalSourceSpec::Trace { path } => ArrivalSpec::Trace(load_trace(path)?),
            shaped => ArrivalSpec::Phases(shaped.to_phases().expect("shape sources expand")),
        };
        let classes = if self.classes.is_empty() {
            WorkloadProfile::default().classes
        } else {
            self.classes.clone()
        };
        let profile = WorkloadProfile { arrivals, classes };
        profile.validate()?;
        Ok(profile)
    }
}

/// Parses a trace-replay request file (schema [`TRACE_SCHEMA`]): a
/// `"requests"` array of `[arrival, scenario, input_len, output_len,
/// class]` rows in non-decreasing arrival order.
///
/// # Errors
///
/// Returns a typed [`ConfigError`] for a wrong schema tag or any
/// malformed row; ordering and length violations surface as the profile
/// layer's [`ConfigError::Workload`] variants when the profile validates.
pub fn parse_trace(value: &Value) -> Result<Vec<TraceRequest>, ConfigError> {
    let found = value
        .get("schema")
        .and_then(Value::as_str)
        .unwrap_or_default();
    if found != TRACE_SCHEMA {
        return Err(ConfigError::SchemaMismatch {
            found: found.to_string(),
            expected: TRACE_SCHEMA.to_string(),
        });
    }
    let rows = value
        .get("requests")
        .and_then(Value::as_array)
        .ok_or_else(|| ConfigError::spec("trace.requests", "expected an array of rows"))?;
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            let ctx = format!("trace.requests[{i}]");
            let items = row.as_array().filter(|a| a.len() == 5).ok_or_else(|| {
                ConfigError::spec(
                    ctx.clone(),
                    "expected [arrival, scenario, input_len, output_len, class] rows",
                )
            })?;
            let arrival = items[0]
                .as_f64()
                .ok_or_else(|| ConfigError::spec(ctx.clone(), "arrival must be a number"))?;
            let scenario = items[1]
                .as_str()
                .ok_or_else(|| ConfigError::spec(ctx.clone(), "scenario must be a string"))?
                .parse::<moe_workload::Scenario>()
                .map_err(|e| ConfigError::spec(ctx.clone(), e))?;
            let len = |v: &Value, what: &str| {
                v.as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0 && *n <= u32::MAX as f64)
                    .map(|n| n as u32)
                    .ok_or_else(|| {
                        ConfigError::spec(ctx.clone(), format!("{what} must be a token count"))
                    })
            };
            let input_len = len(&items[2], "input_len")?;
            let output_len = len(&items[3], "output_len")?;
            let class = items[4]
                .as_str()
                .ok_or_else(|| ConfigError::spec(ctx.clone(), "class must be a string"))?
                .parse::<RequestClass>()
                .map_err(|e| ConfigError::spec(ctx.clone(), e))?;
            Ok(TraceRequest {
                arrival,
                scenario,
                input_len,
                output_len,
                class,
            })
        })
        .collect()
}

/// Serializes trace rows to the [`TRACE_SCHEMA`] document (what
/// `examples/gen_traces.rs` writes and [`parse_trace`] reads back).
pub fn trace_to_json(name: &str, rows: &[TraceRequest]) -> Value {
    Value::Obj(vec![
        ("schema".into(), Value::Str(TRACE_SCHEMA.into())),
        ("name".into(), Value::Str(name.into())),
        (
            "requests".into(),
            Value::Arr(
                rows.iter()
                    .map(|r| {
                        Value::Arr(vec![
                            Value::Num(r.arrival),
                            Value::Str(r.scenario.name().into()),
                            Value::Num(r.input_len as f64),
                            Value::Num(r.output_len as f64),
                            Value::Str(r.class.name().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Loads and parses a trace-replay request file from `path`.
///
/// # Errors
///
/// Returns a typed [`ConfigError`] naming the path for I/O failures and
/// whatever [`parse_trace`] rejects about the document.
pub fn load_trace(path: &str) -> Result<Vec<TraceRequest>, ConfigError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        ConfigError::spec(
            "workload.arrivals.path",
            format!("cannot read {path:?}: {e}"),
        )
    })?;
    parse_trace(&Value::parse(&text)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moe_workload::Scenario;

    #[test]
    fn shapes_expand_to_validated_phase_lists() {
        let burst = ArrivalSourceSpec::Burst {
            period: 60.0,
            burst_duration: 10.0,
            quiet_factor: 0.2,
            burst_factor: 5.0,
        };
        burst.validate().unwrap();
        let phases = burst.to_phases().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].duration, 50.0);
        assert_eq!(phases[1].rate_factor, 5.0);

        let ramp = ArrivalSourceSpec::Ramp {
            steps: 5,
            step_duration: 10.0,
            start_factor: 0.5,
            end_factor: 2.5,
        };
        ramp.validate().unwrap();
        let phases = ramp.to_phases().unwrap();
        assert_eq!(phases.len(), 5);
        assert_eq!(phases[0].rate_factor, 0.5);
        assert_eq!(phases[4].rate_factor, 2.5);

        let spike = ArrivalSourceSpec::Spike {
            quiet_duration: 100.0,
            spike_duration: 5.0,
            spike_factor: 10.0,
        };
        assert_eq!(spike.to_phases().unwrap()[0].rate_factor, 1.0);
    }

    #[test]
    fn invalid_shapes_are_typed_errors() {
        // A burst longer than its period expands to a negative quiet phase.
        let bad = ArrivalSourceSpec::Burst {
            period: 5.0,
            burst_duration: 10.0,
            quiet_factor: 1.0,
            burst_factor: 2.0,
        };
        assert!(matches!(
            bad.validate().unwrap_err(),
            ConfigError::Workload(_)
        ));
        let bad = ArrivalSourceSpec::Ramp {
            steps: 0,
            step_duration: 1.0,
            start_factor: 1.0,
            end_factor: 2.0,
        };
        assert!(bad.validate().is_err());
        let bad = ArrivalSourceSpec::Diurnal {
            amplitude: 1.0,
            period: 600.0,
        };
        assert!(matches!(
            bad.validate().unwrap_err(),
            ConfigError::Workload(moe_workload::WorkloadError::AmplitudeOutOfRange { .. })
        ));
        assert!(ArrivalSourceSpec::Trace {
            path: String::new()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn default_workload_spec_materializes_the_default_profile() {
        let profile = WorkloadSpec::default().to_profile().unwrap();
        assert!(profile.is_default());
    }

    #[test]
    fn trace_documents_roundtrip() {
        let rows = vec![
            TraceRequest {
                arrival: 0.0,
                scenario: Scenario::Chat,
                input_len: 128,
                output_len: 32,
                class: RequestClass::Interactive,
            },
            TraceRequest {
                arrival: 0.5,
                scenario: Scenario::Math,
                input_len: 512,
                output_len: 256,
                class: RequestClass::Batch,
            },
        ];
        let json = trace_to_json("unit", &rows);
        assert_eq!(parse_trace(&json).unwrap(), rows);
        // Through the text layer and the file loader.
        let path = std::env::temp_dir().join("moentwine_trace_unit.json");
        std::fs::write(&path, json.pretty()).unwrap();
        let spec = WorkloadSpec::new(ArrivalSourceSpec::Trace {
            path: path.to_str().unwrap().to_string(),
        });
        let profile = spec.to_profile().unwrap();
        assert_eq!(profile.arrivals, ArrivalSpec::Trace(rows));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_schema_and_rows_are_checked() {
        let err = parse_trace(&Value::parse("{}").unwrap()).unwrap_err();
        assert!(matches!(err, ConfigError::SchemaMismatch { .. }), "{err}");
        let doc = format!(r#"{{"schema": "{TRACE_SCHEMA}", "requests": [[0.0, "chat", 128]]}}"#);
        let err = parse_trace(&Value::parse(&doc).unwrap()).unwrap_err();
        assert!(err.to_string().contains("trace.requests[0]"), "{err}");
        let doc = format!(
            r#"{{"schema": "{TRACE_SCHEMA}", "requests": [[0.0, "chat", 128, 32, "vip"]]}}"#
        );
        assert!(parse_trace(&Value::parse(&doc).unwrap()).is_err());
        // An unsorted trace is caught when the profile validates.
        let rows = vec![
            TraceRequest {
                arrival: 1.0,
                scenario: Scenario::Chat,
                input_len: 1,
                output_len: 1,
                class: RequestClass::Interactive,
            },
            TraceRequest {
                arrival: 0.5,
                scenario: Scenario::Chat,
                input_len: 1,
                output_len: 1,
                class: RequestClass::Interactive,
            },
        ];
        let path = std::env::temp_dir().join("moentwine_trace_unsorted.json");
        std::fs::write(&path, trace_to_json("unsorted", &rows).pretty()).unwrap();
        let spec = WorkloadSpec::new(ArrivalSourceSpec::Trace {
            path: path.to_str().unwrap().to_string(),
        });
        assert!(matches!(
            spec.to_profile().unwrap_err(),
            ConfigError::Workload(moe_workload::WorkloadError::TraceUnsorted { index: 1 })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_trace_file_names_the_path() {
        let spec = WorkloadSpec::new(ArrivalSourceSpec::Trace {
            path: "examples/traces/no_such_trace.json".into(),
        });
        let err = spec.to_profile().unwrap_err();
        assert!(err.to_string().contains("no_such_trace"), "{err}");
    }

    #[test]
    fn classes_thread_into_the_profile() {
        let spec = WorkloadSpec::default().with_classes(vec![
            ClassSpec::interactive()
                .with_weight(3.0)
                .with_shed_after(0.5),
            ClassSpec::batch(),
        ]);
        let profile = spec.to_profile().unwrap();
        assert!(!profile.is_default());
        assert_eq!(profile.classes.len(), 2);
        // Duplicate classes are typed errors.
        let dup = WorkloadSpec::default()
            .with_classes(vec![ClassSpec::interactive(), ClassSpec::interactive()]);
        assert!(matches!(
            dup.validate().unwrap_err(),
            ConfigError::Workload(moe_workload::WorkloadError::DuplicateClass { .. })
        ));
    }
}
