//! Model specifications: Table I presets or fully custom architectures.

use moe_model::ModelConfig;
use moentwine_core::ConfigError;

/// Which MoE model a scenario serves.
#[derive(Clone, PartialEq, Debug)]
pub enum ModelSpec {
    /// A named preset from the registry: the paper's Table I models plus
    /// the `"tiny"` test fixture. See [`ModelSpec::preset_names`].
    Preset(String),
    /// A fully custom architecture, spelled out field by field.
    Custom(ModelConfig),
}

impl ModelSpec {
    /// Preset shorthand (`ModelSpec::preset("tiny")`).
    pub fn preset(name: impl Into<String>) -> Self {
        ModelSpec::Preset(name.into())
    }

    /// The registry of preset names, in Table I order (plus the test
    /// fixture first).
    pub fn preset_names() -> [&'static str; 6] {
        [
            "tiny",
            "deepseek-v3",
            "qwen3-235b",
            "deepseek-v2",
            "dbrx",
            "mixtral-8x22b",
        ]
    }

    /// Resolves the spec into a concrete [`ModelConfig`].
    ///
    /// # Errors
    ///
    /// Returns a spec error naming the registry when a preset is unknown.
    pub fn resolve(&self) -> Result<ModelConfig, ConfigError> {
        match self {
            ModelSpec::Custom(config) => Ok(config.clone()),
            ModelSpec::Preset(name) => match name.as_str() {
                "tiny" => Ok(ModelConfig::tiny()),
                "deepseek-v3" => Ok(ModelConfig::deepseek_v3()),
                "qwen3-235b" => Ok(ModelConfig::qwen3_235b()),
                "deepseek-v2" => Ok(ModelConfig::deepseek_v2()),
                "dbrx" => Ok(ModelConfig::dbrx()),
                "mixtral-8x22b" => Ok(ModelConfig::mixtral_8x22b()),
                other => Err(ConfigError::spec(
                    "model.preset",
                    format!(
                        "unknown preset {other:?} (expected one of {:?})",
                        Self::preset_names()
                    ),
                )),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_resolves() {
        for name in ModelSpec::preset_names() {
            let model = ModelSpec::preset(name).resolve().unwrap();
            assert!(model.num_experts > 0, "{name}");
        }
        assert_eq!(
            ModelSpec::preset("tiny").resolve().unwrap(),
            ModelConfig::tiny()
        );
    }

    #[test]
    fn unknown_preset_is_a_typed_error() {
        let err = ModelSpec::preset("gpt-5").resolve().unwrap_err();
        assert!(matches!(err, ConfigError::Spec { .. }));
        assert!(err.to_string().contains("gpt-5"));
    }

    #[test]
    fn custom_passes_through() {
        let custom = ModelConfig::tiny();
        assert_eq!(ModelSpec::Custom(custom.clone()).resolve().unwrap(), custom);
    }
}
