//! Engine knob specifications: batch production, serving parameters, and
//! every [`EngineConfig`] field expressible as data.

use crate::workload::WorkloadSpec;
use moe_model::{InferencePhase, ModelConfig};
use moe_workload::{SchedulingMode, WorkloadMix};
use moentwine_core::balancer::BalancerKind;
use moentwine_core::engine::{BatchMode, EngineConfig, SummaryMode};
use moentwine_core::ConfigError;
use wsc_sim::CongestionBackend;

/// Request-level serving parameters (the engine's
/// [`BatchMode::Scheduled`] knobs).
#[derive(Clone, PartialEq, Debug)]
pub struct ServingSpec {
    /// Serving discipline.
    pub mode: SchedulingMode,
    /// Token budget per group per iteration.
    pub max_batch_tokens: u32,
    /// Concurrent decode sequences per group.
    pub max_active: usize,
    /// Request arrival rate (requests/second, whole system). Ignored by
    /// fleet scenarios, where [`FleetSpec`](crate::FleetSpec) owns the
    /// global arrival stream.
    pub request_rate: f64,
    /// Wall-clock estimate of one iteration (drives arrival admission).
    pub iteration_period: f64,
    /// How serving summaries are maintained: exact record retention (the
    /// golden oracle, default) or streaming P² sketches in O(1) memory.
    pub summary: SummaryMode,
    /// Arrival source and tenant classes. `None` (the default) keeps the
    /// legacy hard-coded diurnal stream with a single anonymous tenant —
    /// and its exact RNG stream, so existing scenarios stay byte-identical.
    pub workload: Option<WorkloadSpec>,
}

impl ServingSpec {
    /// Hybrid continuous batching at `request_rate`, with the workspace's
    /// conventional 0.02 s iteration period and exact summaries.
    pub fn hybrid(max_batch_tokens: u32, max_active: usize, request_rate: f64) -> Self {
        ServingSpec {
            mode: SchedulingMode::Hybrid,
            max_batch_tokens,
            max_active,
            request_rate,
            iteration_period: 0.02,
            summary: SummaryMode::Exact,
            workload: None,
        }
    }

    /// Sets the serving discipline (builder style).
    pub fn with_mode(mut self, mode: SchedulingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the arrival rate (builder style).
    pub fn with_request_rate(mut self, request_rate: f64) -> Self {
        self.request_rate = request_rate;
        self
    }

    /// Sets the summary maintenance mode (builder style).
    pub fn with_summary(mut self, summary: SummaryMode) -> Self {
        self.summary = summary;
        self
    }

    /// Sets the workload realism spec (builder style).
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }
}

/// How iteration batches are produced — the spec mirror of [`BatchMode`].
#[derive(Clone, PartialEq, Debug)]
pub enum BatchSpec {
    /// A fixed batch every iteration (the communication experiments).
    Fixed {
        /// Tokens per TP group per iteration.
        tokens_per_group: u32,
        /// Average attended context length.
        avg_context: f64,
        /// Roofline phase.
        phase: InferencePhase,
    },
    /// Request-pool driven serving ([`BatchMode::Scheduled`]; fleet
    /// scenarios convert it to [`BatchMode::External`] per replica).
    Serving(ServingSpec),
}

impl BatchSpec {
    /// Fixed decode batches of `tokens_per_group` tokens over a 4096-token
    /// context — the communication-experiment default.
    pub fn fixed_decode(tokens_per_group: u32) -> Self {
        BatchSpec::Fixed {
            tokens_per_group,
            avg_context: 4096.0,
            phase: InferencePhase::Decode,
        }
    }

    /// Converts to the engine's [`BatchMode`].
    pub fn to_batch_mode(&self) -> BatchMode {
        match self {
            BatchSpec::Fixed {
                tokens_per_group,
                avg_context,
                phase,
            } => BatchMode::Fixed {
                tokens_per_group: *tokens_per_group,
                avg_context: *avg_context,
                phase: *phase,
            },
            BatchSpec::Serving(s) => BatchMode::Scheduled {
                mode: s.mode,
                max_batch_tokens: s.max_batch_tokens,
                max_active: s.max_active,
                request_rate: s.request_rate,
                iteration_period: s.iteration_period,
            },
        }
    }
}

impl Default for BatchSpec {
    /// The [`EngineConfig::new`] default: fixed 256-token decode batches.
    fn default() -> Self {
        BatchSpec::fixed_decode(256)
    }
}

/// Every engine knob as data. Field defaults mirror [`EngineConfig::new`]
/// exactly, so a default `EngineSpec` materializes the default engine and
/// spec-driven runs are byte-identical to hand-constructed ones.
///
/// The device cost model is not part of the spec: every scenario prices on
/// the paper's B200-equivalent device (§VI-A1), like every hand-written
/// experiment in the workspace.
#[derive(Clone, PartialEq, Debug)]
pub struct EngineSpec {
    /// Master seed.
    pub seed: u64,
    /// Communication-pricing fidelity tier.
    pub backend: CongestionBackend,
    /// Balancing strategy.
    pub balancer: BalancerKind,
    /// Scenario mixture driving expert selection (and request lengths in
    /// serving modes).
    pub workload: WorkloadMix,
    /// Batch production mode.
    pub batch: BatchSpec,
    /// Eq. 2 `α`, specified per layer.
    pub trigger_alpha_per_layer: f64,
    /// Eq. 2 `β` in iterations.
    pub trigger_beta: u64,
    /// Shadow slots per device.
    pub slots_per_device: usize,
    /// Cap on replications per layer per balancing event.
    pub max_actions_per_layer: usize,
    /// Estimate the all-to-all on every `k`-th layer.
    pub comm_layer_stride: usize,
    /// Micro-batches for communication/compute overlap.
    pub pipeline_microbatches: usize,
    /// Force uniform gating.
    pub uniform_gating: bool,
    /// Bandwidth available to non-invasive migration, bytes/s.
    pub cold_bandwidth: f64,
    /// EMA factor for historical expert loads in `(0, 1]`.
    pub load_ema: f64,
    /// Fraction of aggregate device HBM available to the KV cache.
    pub kv_hbm_fraction: f64,
    /// Entry bound of the memoizing schedule cache.
    pub cache_entries: usize,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            seed: 7,
            backend: CongestionBackend::Analytic,
            balancer: BalancerKind::None,
            workload: WorkloadMix::mixed(500.0),
            batch: BatchSpec::default(),
            trigger_alpha_per_layer: 0.25,
            trigger_beta: 10,
            slots_per_device: 1,
            max_actions_per_layer: 4,
            comm_layer_stride: 1,
            pipeline_microbatches: 4,
            uniform_gating: false,
            cold_bandwidth: 4.0e12,
            load_ema: 0.3,
            kv_hbm_fraction: 0.3,
            cache_entries: wsc_sim::DEFAULT_CACHE_ENTRIES,
        }
    }
}

impl EngineSpec {
    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the pricing backend (builder style).
    pub fn with_backend(mut self, backend: CongestionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the balancer kind (builder style).
    pub fn with_balancer(mut self, balancer: BalancerKind) -> Self {
        self.balancer = balancer;
        self
    }

    /// Sets the workload mix (builder style).
    pub fn with_workload(mut self, workload: WorkloadMix) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the batch production mode (builder style).
    pub fn with_batch(mut self, batch: BatchSpec) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the all-to-all estimation stride (builder style).
    pub fn with_comm_layer_stride(mut self, stride: usize) -> Self {
        self.comm_layer_stride = stride;
        self
    }

    /// Sets the shadow-slot count (builder style).
    pub fn with_slots_per_device(mut self, slots: usize) -> Self {
        self.slots_per_device = slots;
        self
    }

    /// Sets the per-event replication cap (builder style).
    pub fn with_max_actions_per_layer(mut self, max_actions: usize) -> Self {
        self.max_actions_per_layer = max_actions;
        self
    }

    /// Sets the KV-cache HBM share (builder style).
    pub fn with_kv_hbm_fraction(mut self, fraction: f64) -> Self {
        self.kv_hbm_fraction = fraction;
        self
    }

    /// Sets the cold-link migration bandwidth (builder style).
    pub fn with_cold_bandwidth(mut self, bandwidth: f64) -> Self {
        self.cold_bandwidth = bandwidth;
        self
    }

    /// Materializes a validated [`EngineConfig`] for `model`.
    ///
    /// # Errors
    ///
    /// Returns whatever [`EngineConfig::validate`] rejects.
    pub fn engine_config(&self, model: ModelConfig) -> Result<EngineConfig, ConfigError> {
        let mut config = EngineConfig::new(model)
            .with_seed(self.seed)
            .with_backend(self.backend)
            .with_balancer(self.balancer)
            .with_workload(self.workload.clone())
            .with_batch(self.batch.to_batch_mode())
            .with_cache_entries(self.cache_entries);
        if let BatchSpec::Serving(serving) = &self.batch {
            config.summary = serving.summary;
            if let Some(workload) = &serving.workload {
                config.workload_profile = workload.to_profile()?;
            }
        }
        config.trigger_alpha_per_layer = self.trigger_alpha_per_layer;
        config.trigger_beta = self.trigger_beta;
        config.slots_per_device = self.slots_per_device;
        config.max_actions_per_layer = self.max_actions_per_layer;
        config.comm_layer_stride = self.comm_layer_stride;
        config.pipeline_microbatches = self.pipeline_microbatches;
        config.uniform_gating = self.uniform_gating;
        config.cold_bandwidth = self.cold_bandwidth;
        config.load_ema = self.load_ema;
        config.kv_hbm_fraction = self.kv_hbm_fraction;
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The load-bearing equivalence: a default spec materializes exactly
    /// the default engine config (spec-driven runs must be byte-identical
    /// to hand-constructed ones).
    #[test]
    fn default_spec_matches_default_engine_config() {
        let model = ModelConfig::tiny();
        let from_spec = EngineSpec::default().engine_config(model.clone()).unwrap();
        let by_hand = EngineConfig::new(model);
        // EngineConfig is not PartialEq (it carries a CostModel); compare
        // the spec-controlled fields one by one.
        assert_eq!(from_spec.seed, by_hand.seed);
        assert_eq!(from_spec.backend, by_hand.backend);
        assert_eq!(from_spec.balancer, by_hand.balancer);
        assert_eq!(from_spec.workload, by_hand.workload);
        assert_eq!(
            from_spec.trigger_alpha_per_layer,
            by_hand.trigger_alpha_per_layer
        );
        assert_eq!(from_spec.trigger_beta, by_hand.trigger_beta);
        assert_eq!(from_spec.slots_per_device, by_hand.slots_per_device);
        assert_eq!(
            from_spec.max_actions_per_layer,
            by_hand.max_actions_per_layer
        );
        assert_eq!(from_spec.comm_layer_stride, by_hand.comm_layer_stride);
        assert_eq!(
            from_spec.pipeline_microbatches,
            by_hand.pipeline_microbatches
        );
        assert_eq!(from_spec.uniform_gating, by_hand.uniform_gating);
        assert_eq!(from_spec.cold_bandwidth, by_hand.cold_bandwidth);
        assert_eq!(from_spec.load_ema, by_hand.load_ema);
        assert_eq!(from_spec.kv_hbm_fraction, by_hand.kv_hbm_fraction);
        assert_eq!(from_spec.cache_entries, by_hand.cache_entries);
        assert_eq!(from_spec.summary, by_hand.summary);
        assert!(matches!(
            (from_spec.batch, by_hand.batch),
            (
                BatchMode::Fixed {
                    tokens_per_group: 256,
                    ..
                },
                BatchMode::Fixed {
                    tokens_per_group: 256,
                    ..
                }
            )
        ));
    }

    #[test]
    fn invalid_knobs_surface_typed_errors() {
        let spec = EngineSpec {
            comm_layer_stride: 0,
            ..EngineSpec::default()
        };
        assert_eq!(
            spec.engine_config(ModelConfig::tiny()).unwrap_err(),
            ConfigError::CommLayerStrideZero
        );
        let spec = EngineSpec::default().with_kv_hbm_fraction(0.0);
        assert_eq!(
            spec.engine_config(ModelConfig::tiny()).unwrap_err(),
            ConfigError::KvHbmFractionOutOfRange { value: 0.0 }
        );
    }
}
