//! Platform and mapping specifications.

use moentwine_core::comm::ClusterLayout;
use moentwine_core::mapping::{BaselineMapping, ErMapping, HierarchicalErMapping};
use moentwine_core::ConfigError;
use wsc_topology::{
    DgxCluster, FlatSwitch, Mesh, MultiWafer, PlatformParams, RouteTable, Topology,
};

use crate::scenario::Layout;

/// Which interconnect a scenario runs on (the paper's §VI-A1 platforms).
///
/// Bandwidth/latency parameters are the paper's fixed per-kind presets
/// ([`PlatformParams::dojo_like`] and friends); the spec selects the
/// *shape*, which is what the evaluation space sweeps.
#[derive(Clone, PartialEq, Debug)]
pub enum PlatformSpec {
    /// Single wafer, `n × n` dies.
    Wsc {
        /// Mesh side length.
        n: u16,
    },
    /// Multi-wafer grid of `wafers_x × wafers_y` wafers, each `n × n`.
    MultiWsc {
        /// Wafers along x.
        wafers_x: u16,
        /// Wafers along y.
        wafers_y: u16,
        /// Per-wafer mesh side length.
        n: u16,
    },
    /// DGX cluster of `nodes` 8-GPU boxes.
    Dgx {
        /// Number of nodes.
        nodes: u16,
    },
    /// NVL72 supernode (72 devices behind one switch fabric).
    Nvl72,
    /// Flat supernode of `devices` devices behind one switch.
    Flat {
        /// Device count.
        devices: u16,
    },
}

impl PlatformSpec {
    /// Single wafer `n × n` (builder shorthand).
    pub fn wsc(n: u16) -> Self {
        PlatformSpec::Wsc { n }
    }

    /// Multi-wafer grid (builder shorthand).
    pub fn multi_wsc(wafers_x: u16, wafers_y: u16, n: u16) -> Self {
        PlatformSpec::MultiWsc {
            wafers_x,
            wafers_y,
            n,
        }
    }

    /// DGX cluster (builder shorthand).
    pub fn dgx(nodes: u16) -> Self {
        PlatformSpec::Dgx { nodes }
    }

    /// Stable lowercase kind tag used by the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            PlatformSpec::Wsc { .. } => "wsc",
            PlatformSpec::MultiWsc { .. } => "multi-wsc",
            PlatformSpec::Dgx { .. } => "dgx",
            PlatformSpec::Nvl72 => "nvl72",
            PlatformSpec::Flat { .. } => "flat",
        }
    }

    /// Builds the topology.
    ///
    /// # Errors
    ///
    /// Returns a spec error for degenerate shapes (zero extents).
    pub fn build_topology(&self) -> Result<Topology, ConfigError> {
        let nonzero = |value: u16, field: &str| {
            if value == 0 {
                Err(ConfigError::spec(
                    format!("platform.{field}"),
                    "must be ≥ 1",
                ))
            } else {
                Ok(value)
            }
        };
        Ok(match *self {
            PlatformSpec::Wsc { n } => {
                Mesh::new(nonzero(n, "n")?, PlatformParams::dojo_like()).build()
            }
            PlatformSpec::MultiWsc {
                wafers_x,
                wafers_y,
                n,
            } => MultiWafer::grid(
                nonzero(wafers_x, "wafers_x")?,
                nonzero(wafers_y, "wafers_y")?,
                nonzero(n, "n")?,
                PlatformParams::dojo_like(),
            )
            .build(),
            PlatformSpec::Dgx { nodes } => {
                DgxCluster::new(nonzero(nodes, "nodes")?, PlatformParams::dgx_b200()).build()
            }
            PlatformSpec::Nvl72 => FlatSwitch::nvl72(PlatformParams::nvl72()).build(),
            PlatformSpec::Flat { devices } => {
                FlatSwitch::new(nonzero(devices, "devices")?, PlatformParams::nvl72()).build()
            }
        })
    }

    /// Builds the topology plus its all-pairs route table.
    ///
    /// # Errors
    ///
    /// Returns a spec error for degenerate shapes (zero extents).
    pub fn materialize(&self) -> Result<(Topology, RouteTable), ConfigError> {
        let topo = self.build_topology()?;
        let table = RouteTable::build(&topo);
        Ok((topo, table))
    }
}

/// How tensor-parallel groups tile the platform: one of the paper's WSC
/// mappings, or contiguous switch-cluster groups for GPU platforms.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MappingSpec {
    /// Corner-block baseline mapping (WSC platforms).
    Baseline {
        /// Total TP degree.
        tp: usize,
    },
    /// Entwined Ring Mapping (WSC platforms).
    Er {
        /// Total TP degree.
        tp: usize,
    },
    /// Hierarchical ER mapping (multi-wafer platforms).
    Her {
        /// Per-wafer TP degree.
        tp: usize,
    },
    /// Contiguous TP groups on a switch-based cluster (DGX / NVL72 / flat).
    Cluster {
        /// TP degree (must divide the device count).
        tp: usize,
    },
}

impl MappingSpec {
    /// ER mapping with total TP degree `tp` (builder shorthand).
    pub fn er(tp: usize) -> Self {
        MappingSpec::Er { tp }
    }

    /// Hierarchical ER mapping (builder shorthand).
    pub fn her(tp: usize) -> Self {
        MappingSpec::Her { tp }
    }

    /// Cluster layout with TP degree `tp` (builder shorthand).
    pub fn cluster(tp: usize) -> Self {
        MappingSpec::Cluster { tp }
    }

    /// Stable lowercase kind tag used by the JSON encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            MappingSpec::Baseline { .. } => "baseline",
            MappingSpec::Er { .. } => "er",
            MappingSpec::Her { .. } => "her",
            MappingSpec::Cluster { .. } => "cluster",
        }
    }

    /// The TP degree carried by the spec.
    pub fn tp(&self) -> usize {
        match *self {
            MappingSpec::Baseline { tp }
            | MappingSpec::Er { tp }
            | MappingSpec::Her { tp }
            | MappingSpec::Cluster { tp } => tp,
        }
    }

    /// Materializes the layout over `topo`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Mapping`] when the TP degree does not tile
    /// the platform, and a spec error when a WSC mapping is requested on a
    /// switch platform (no mesh dimensions) or a cluster layout's TP degree
    /// does not divide the device count.
    pub fn layout(&self, topo: &Topology) -> Result<Layout, ConfigError> {
        let mesh_dims = || {
            topo.mesh_dims().ok_or_else(|| {
                ConfigError::spec(
                    "mapping.kind",
                    format!(
                        "{:?} mapping needs a mesh platform (wsc / multi-wsc)",
                        self.kind()
                    ),
                )
            })
        };
        Ok(match *self {
            MappingSpec::Baseline { tp } => {
                Layout::Plan(BaselineMapping::with_tp_degree(mesh_dims()?, tp)?.plan())
            }
            MappingSpec::Er { tp } => {
                Layout::Plan(ErMapping::with_tp_degree(mesh_dims()?, tp)?.plan())
            }
            MappingSpec::Her { tp } => {
                Layout::Plan(HierarchicalErMapping::with_tp_degree(mesh_dims()?, tp)?.plan())
            }
            MappingSpec::Cluster { tp } => {
                if tp == 0 || !topo.num_devices().is_multiple_of(tp) {
                    return Err(ConfigError::spec(
                        "mapping.tp",
                        format!(
                            "TP={tp} must divide the {} cluster devices",
                            topo.num_devices()
                        ),
                    ));
                }
                Layout::Cluster(ClusterLayout::new(topo, tp))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platforms_materialize() {
        let (topo, table) = PlatformSpec::wsc(4).materialize().unwrap();
        assert_eq!(topo.num_devices(), 16);
        assert!(table.hops(wsc_topology::DeviceId(0), wsc_topology::DeviceId(15)) > 0);
        let (topo, _) = PlatformSpec::multi_wsc(2, 1, 4).materialize().unwrap();
        assert_eq!(topo.num_devices(), 32);
        let (topo, _) = PlatformSpec::dgx(2).materialize().unwrap();
        assert!(topo.num_devices() >= 16);
        let (topo, _) = PlatformSpec::Nvl72.materialize().unwrap();
        assert_eq!(topo.num_devices(), 72);
    }

    #[test]
    fn degenerate_shapes_are_spec_errors() {
        let err = PlatformSpec::wsc(0).materialize().unwrap_err();
        assert!(matches!(err, ConfigError::Spec { .. }), "{err}");
    }

    #[test]
    fn mappings_materialize_and_mismatches_are_typed() {
        let (topo, _) = PlatformSpec::wsc(4).materialize().unwrap();
        assert!(matches!(
            MappingSpec::er(4).layout(&topo).unwrap(),
            Layout::Plan(_)
        ));
        // A TP degree that cannot tile the wafer is a mapping error.
        assert!(matches!(
            MappingSpec::er(5).layout(&topo).unwrap_err(),
            ConfigError::Mapping(_)
        ));
        // WSC mappings need mesh dims; NVL72 has none.
        let (nvl, _) = PlatformSpec::Nvl72.materialize().unwrap();
        assert!(matches!(
            MappingSpec::er(4).layout(&nvl).unwrap_err(),
            ConfigError::Spec { .. }
        ));
        assert!(matches!(
            MappingSpec::cluster(8).layout(&nvl).unwrap(),
            Layout::Cluster(_)
        ));
        assert!(matches!(
            MappingSpec::cluster(7).layout(&nvl).unwrap_err(),
            ConfigError::Spec { .. }
        ));
    }
}
