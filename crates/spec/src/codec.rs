//! Lossless JSON encoding of the scenario tree (schema
//! `moentwine/scenario/v1`).
//!
//! The workspace builds offline against a no-op `serde` shim, so the codec
//! is hand-rolled over [`moentwine_json::Value`]: every enum encodes as an
//! object with a `"kind"` tag, every knob is emitted explicitly (no
//! defaulting on output), and parsing accepts missing optional sections
//! (`fleet`, `sweep`) but requires every engine knob it emits — which is
//! what makes `from_json(to_json(spec)) == spec` an identity
//! (`tests/roundtrip.rs` pins it under proptest).
//!
//! Integers (seeds, counts) ride in JSON numbers, which are `f64`: exact
//! up to 2^53. The `u64`-typed knobs (seed, trigger_beta) above 2^53 are
//! emitted as decimal strings instead — and accepted back — so the full
//! `u64` domain round-trips losslessly even for programmatically chosen
//! seeds. Unknown members of objects with optional keys (the scenario
//! root, `fleet`, `sweep`) are rejected, so a typo'd section name is a
//! typed error, not a silent semantic change.

use moe_model::{InferencePhase, ModelConfig};
use moe_workload::{RouterPolicy, Scenario as WorkloadScenario, WorkloadMix};
use moentwine_core::ConfigError;
use moentwine_json::Value;
use wsc_sim::CongestionBackend;

use crate::engine::{BatchSpec, EngineSpec, ServingSpec};
use crate::fleet::FleetSpec;
use crate::model::ModelSpec;
use crate::platform::{MappingSpec, PlatformSpec};
use crate::scenario::ScenarioSpec;
use crate::sweep::SweepSpec;
use crate::workload::{ArrivalSourceSpec, WorkloadSpec};
use crate::SCHEMA;
use moe_workload::{ClassSpec, Phase, RequestClass};
use moentwine_core::engine::SummaryMode;
use moentwine_core::fleet::{FleetEvent, FleetEventKind, FleetScheduler, ReplicaRole};

// ---------------------------------------------------------------------------
// Small field accessors (all failures become typed `ConfigError::Spec`s).

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

fn num(n: f64) -> Value {
    Value::Num(n)
}

fn get<'a>(value: &'a Value, ctx: &str, key: &str) -> Result<&'a Value, ConfigError> {
    value
        .get(key)
        .ok_or_else(|| ConfigError::spec(format!("{ctx}.{key}"), "missing field"))
}

fn get_str<'a>(value: &'a Value, ctx: &str, key: &str) -> Result<&'a str, ConfigError> {
    get(value, ctx, key)?
        .as_str()
        .ok_or_else(|| ConfigError::spec(format!("{ctx}.{key}"), "expected a string"))
}

fn get_f64(value: &Value, ctx: &str, key: &str) -> Result<f64, ConfigError> {
    get(value, ctx, key)?
        .as_f64()
        .ok_or_else(|| ConfigError::spec(format!("{ctx}.{key}"), "expected a number"))
}

fn get_bool(value: &Value, ctx: &str, key: &str) -> Result<bool, ConfigError> {
    match get(value, ctx, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(ConfigError::spec(
            format!("{ctx}.{key}"),
            "expected a boolean",
        )),
    }
}

/// A non-negative integer field (counts, seeds, dimensions). Values above
/// 2^53 (the f64 mantissa) ride as decimal strings — see [`uint_value`] —
/// so the full `u64` domain round-trips losslessly.
fn get_uint(value: &Value, ctx: &str, key: &str) -> Result<u64, ConfigError> {
    if let Some(text) = get(value, ctx, key)?.as_str() {
        return text.parse::<u64>().map_err(|_| {
            ConfigError::spec(
                format!("{ctx}.{key}"),
                format!("expected a non-negative integer, got {text:?}"),
            )
        });
    }
    let n = get_f64(value, ctx, key)?;
    if n < 0.0 || n.fract() != 0.0 || n > 2f64.powi(53) {
        return Err(ConfigError::spec(
            format!("{ctx}.{key}"),
            format!("expected a non-negative integer, got {n}"),
        ));
    }
    Ok(n as u64)
}

/// Emits a `u64` exactly: a JSON number up to 2^53, a decimal string
/// above (f64 numbers would silently round there, breaking the lossless
/// round-trip for programmatically chosen seeds).
fn uint_value(n: u64) -> Value {
    if n <= 1u64 << 53 {
        Value::Num(n as f64)
    } else {
        Value::Str(n.to_string())
    }
}

/// Rejects unknown members of an object whose non-required keys could
/// otherwise make a typo a silent semantic change (a misspelled `fleet`
/// or `sweep` section, a misspelled sweep axis).
fn reject_unknown(value: &Value, ctx: &str, allowed: &[&str]) -> Result<(), ConfigError> {
    if let Value::Obj(members) = value {
        for (key, _) in members {
            if !allowed.contains(&key.as_str()) {
                return Err(ConfigError::spec(
                    format!("{ctx}.{key}"),
                    format!("unknown field (expected one of {allowed:?})"),
                ));
            }
        }
    }
    Ok(())
}

fn get_u16(value: &Value, ctx: &str, key: &str) -> Result<u16, ConfigError> {
    let n = get_uint(value, ctx, key)?;
    u16::try_from(n)
        .map_err(|_| ConfigError::spec(format!("{ctx}.{key}"), format!("{n} exceeds u16")))
}

fn get_u32(value: &Value, ctx: &str, key: &str) -> Result<u32, ConfigError> {
    let n = get_uint(value, ctx, key)?;
    u32::try_from(n)
        .map_err(|_| ConfigError::spec(format!("{ctx}.{key}"), format!("{n} exceeds u32")))
}

fn get_usize(value: &Value, ctx: &str, key: &str) -> Result<usize, ConfigError> {
    Ok(get_uint(value, ctx, key)? as usize)
}

fn parse_tag<T: std::str::FromStr<Err = String>>(text: &str, ctx: &str) -> Result<T, ConfigError> {
    text.parse::<T>()
        .map_err(|e| ConfigError::spec(ctx.to_string(), e))
}

// ---------------------------------------------------------------------------
// Platform / mapping.

impl PlatformSpec {
    fn to_json_value(&self) -> Value {
        match *self {
            PlatformSpec::Wsc { n } => obj(vec![
                ("kind", Value::Str("wsc".into())),
                ("n", num(n as f64)),
            ]),
            PlatformSpec::MultiWsc {
                wafers_x,
                wafers_y,
                n,
            } => obj(vec![
                ("kind", Value::Str("multi-wsc".into())),
                ("wafers_x", num(wafers_x as f64)),
                ("wafers_y", num(wafers_y as f64)),
                ("n", num(n as f64)),
            ]),
            PlatformSpec::Dgx { nodes } => obj(vec![
                ("kind", Value::Str("dgx".into())),
                ("nodes", num(nodes as f64)),
            ]),
            PlatformSpec::Nvl72 => obj(vec![("kind", Value::Str("nvl72".into()))]),
            PlatformSpec::Flat { devices } => obj(vec![
                ("kind", Value::Str("flat".into())),
                ("devices", num(devices as f64)),
            ]),
        }
    }

    fn from_json_value(value: &Value) -> Result<Self, ConfigError> {
        let ctx = "platform";
        Ok(match get_str(value, ctx, "kind")? {
            "wsc" => PlatformSpec::Wsc {
                n: get_u16(value, ctx, "n")?,
            },
            "multi-wsc" => PlatformSpec::MultiWsc {
                wafers_x: get_u16(value, ctx, "wafers_x")?,
                wafers_y: get_u16(value, ctx, "wafers_y")?,
                n: get_u16(value, ctx, "n")?,
            },
            "dgx" => PlatformSpec::Dgx {
                nodes: get_u16(value, ctx, "nodes")?,
            },
            "nvl72" => PlatformSpec::Nvl72,
            "flat" => PlatformSpec::Flat {
                devices: get_u16(value, ctx, "devices")?,
            },
            other => {
                return Err(ConfigError::spec(
                    "platform.kind",
                    format!(
                        "unknown kind {other:?} (expected \"wsc\", \"multi-wsc\", \
                         \"dgx\", \"nvl72\", or \"flat\")"
                    ),
                ))
            }
        })
    }
}

impl MappingSpec {
    fn to_json_value(self) -> Value {
        obj(vec![
            ("kind", Value::Str(self.kind().into())),
            ("tp", num(self.tp() as f64)),
        ])
    }

    fn from_json_value(value: &Value) -> Result<Self, ConfigError> {
        let ctx = "mapping";
        let tp = get_usize(value, ctx, "tp")?;
        Ok(match get_str(value, ctx, "kind")? {
            "baseline" => MappingSpec::Baseline { tp },
            "er" => MappingSpec::Er { tp },
            "her" => MappingSpec::Her { tp },
            "cluster" => MappingSpec::Cluster { tp },
            other => {
                return Err(ConfigError::spec(
                    "mapping.kind",
                    format!(
                        "unknown kind {other:?} (expected \"baseline\", \"er\", \
                         \"her\", or \"cluster\")"
                    ),
                ))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Model.

fn model_config_to_json(m: &ModelConfig) -> Value {
    obj(vec![
        ("name", Value::Str(m.name.clone())),
        ("total_params_b", num(m.total_params_b)),
        ("num_layers", num(m.num_layers as f64)),
        ("num_sparse_layers", num(m.num_sparse_layers as f64)),
        ("hidden_size", num(m.hidden_size as f64)),
        ("moe_intermediate_size", num(m.moe_intermediate_size as f64)),
        ("num_experts", num(m.num_experts as f64)),
        ("experts_per_token", num(m.experts_per_token as f64)),
        ("num_shared_experts", num(m.num_shared_experts as f64)),
        ("num_attention_heads", num(m.num_attention_heads as f64)),
        ("num_kv_heads", num(m.num_kv_heads as f64)),
        ("head_dim", num(m.head_dim as f64)),
    ])
}

fn model_config_from_json(value: &Value) -> Result<ModelConfig, ConfigError> {
    let ctx = "model.custom";
    Ok(ModelConfig {
        name: get_str(value, ctx, "name")?.to_string(),
        total_params_b: get_f64(value, ctx, "total_params_b")?,
        num_layers: get_u32(value, ctx, "num_layers")?,
        num_sparse_layers: get_u32(value, ctx, "num_sparse_layers")?,
        hidden_size: get_u32(value, ctx, "hidden_size")?,
        moe_intermediate_size: get_u32(value, ctx, "moe_intermediate_size")?,
        num_experts: get_u32(value, ctx, "num_experts")?,
        experts_per_token: get_u32(value, ctx, "experts_per_token")?,
        num_shared_experts: get_u32(value, ctx, "num_shared_experts")?,
        num_attention_heads: get_u32(value, ctx, "num_attention_heads")?,
        num_kv_heads: get_u32(value, ctx, "num_kv_heads")?,
        head_dim: get_u32(value, ctx, "head_dim")?,
    })
}

impl ModelSpec {
    fn to_json_value(&self) -> Value {
        match self {
            ModelSpec::Preset(name) => obj(vec![("preset", Value::Str(name.clone()))]),
            ModelSpec::Custom(config) => obj(vec![("custom", model_config_to_json(config))]),
        }
    }

    fn from_json_value(value: &Value) -> Result<Self, ConfigError> {
        if let Some(preset) = value.get("preset") {
            let name = preset
                .as_str()
                .ok_or_else(|| ConfigError::spec("model.preset", "expected a string"))?;
            return Ok(ModelSpec::Preset(name.to_string()));
        }
        if let Some(custom) = value.get("custom") {
            return Ok(ModelSpec::Custom(model_config_from_json(custom)?));
        }
        Err(ConfigError::spec(
            "model",
            "expected a {\"preset\": ...} or {\"custom\": {...}} object",
        ))
    }
}

// ---------------------------------------------------------------------------
// Workload / batch / engine.

fn scenario_tag(s: WorkloadScenario) -> Value {
    Value::Str(s.name().into())
}

fn scenario_from(value: &Value, ctx: &str) -> Result<WorkloadScenario, ConfigError> {
    let text = value
        .as_str()
        .ok_or_else(|| ConfigError::spec(ctx.to_string(), "expected a scenario name string"))?;
    parse_tag(text, ctx)
}

fn workload_to_json(mix: &WorkloadMix) -> Value {
    match mix {
        WorkloadMix::Fixed(s) => obj(vec![
            ("kind", Value::Str("fixed".into())),
            ("scenario", scenario_tag(*s)),
        ]),
        WorkloadMix::Cycling { period, scenarios } => obj(vec![
            ("kind", Value::Str("cycling".into())),
            ("period", num(*period)),
            (
                "scenarios",
                Value::Arr(scenarios.iter().map(|&s| scenario_tag(s)).collect()),
            ),
        ]),
        WorkloadMix::Blend(weights) => obj(vec![
            ("kind", Value::Str("blend".into())),
            (
                "weights",
                Value::Arr(
                    weights
                        .iter()
                        .map(|&(s, w)| Value::Arr(vec![scenario_tag(s), num(w)]))
                        .collect(),
                ),
            ),
        ]),
    }
}

fn workload_from_json(value: &Value) -> Result<WorkloadMix, ConfigError> {
    let ctx = "engine.workload";
    Ok(match get_str(value, ctx, "kind")? {
        "fixed" => WorkloadMix::Fixed(scenario_from(
            get(value, ctx, "scenario")?,
            "engine.workload.scenario",
        )?),
        "cycling" => {
            let scenarios = get(value, ctx, "scenarios")?
                .as_array()
                .ok_or_else(|| ConfigError::spec("engine.workload.scenarios", "expected an array"))?
                .iter()
                .map(|v| scenario_from(v, "engine.workload.scenarios"))
                .collect::<Result<Vec<_>, _>>()?;
            WorkloadMix::Cycling {
                period: get_f64(value, ctx, "period")?,
                scenarios,
            }
        }
        "blend" => {
            let weights = get(value, ctx, "weights")?
                .as_array()
                .ok_or_else(|| ConfigError::spec("engine.workload.weights", "expected an array"))?
                .iter()
                .map(|pair| {
                    let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                        ConfigError::spec(
                            "engine.workload.weights",
                            "expected [scenario, weight] pairs",
                        )
                    })?;
                    let scenario = scenario_from(&items[0], "engine.workload.weights")?;
                    let weight = items[1].as_f64().ok_or_else(|| {
                        ConfigError::spec("engine.workload.weights", "weight must be a number")
                    })?;
                    Ok((scenario, weight))
                })
                .collect::<Result<Vec<_>, ConfigError>>()?;
            WorkloadMix::Blend(weights)
        }
        other => {
            return Err(ConfigError::spec(
                "engine.workload.kind",
                format!("unknown kind {other:?} (expected \"fixed\", \"cycling\", or \"blend\")"),
            ))
        }
    })
}

fn arrivals_to_json(arrivals: &ArrivalSourceSpec) -> Value {
    match arrivals {
        ArrivalSourceSpec::Diurnal { amplitude, period } => obj(vec![
            ("kind", Value::Str("diurnal".into())),
            ("amplitude", num(*amplitude)),
            ("period", num(*period)),
        ]),
        ArrivalSourceSpec::Burst {
            period,
            burst_duration,
            quiet_factor,
            burst_factor,
        } => obj(vec![
            ("kind", Value::Str("burst".into())),
            ("period", num(*period)),
            ("burst_duration", num(*burst_duration)),
            ("quiet_factor", num(*quiet_factor)),
            ("burst_factor", num(*burst_factor)),
        ]),
        ArrivalSourceSpec::Spike {
            quiet_duration,
            spike_duration,
            spike_factor,
        } => obj(vec![
            ("kind", Value::Str("spike".into())),
            ("quiet_duration", num(*quiet_duration)),
            ("spike_duration", num(*spike_duration)),
            ("spike_factor", num(*spike_factor)),
        ]),
        ArrivalSourceSpec::Ramp {
            steps,
            step_duration,
            start_factor,
            end_factor,
        } => obj(vec![
            ("kind", Value::Str("ramp".into())),
            ("steps", num(*steps as f64)),
            ("step_duration", num(*step_duration)),
            ("start_factor", num(*start_factor)),
            ("end_factor", num(*end_factor)),
        ]),
        ArrivalSourceSpec::Phases(phases) => obj(vec![
            ("kind", Value::Str("phases".into())),
            (
                "phases",
                Value::Arr(
                    phases
                        .iter()
                        .map(|p| Value::Arr(vec![num(p.duration), num(p.rate_factor)]))
                        .collect(),
                ),
            ),
        ]),
        ArrivalSourceSpec::Trace { path } => obj(vec![
            ("kind", Value::Str("trace".into())),
            ("path", Value::Str(path.clone())),
        ]),
    }
}

fn arrivals_from_json(value: &Value) -> Result<ArrivalSourceSpec, ConfigError> {
    let ctx = "engine.batch.workload.arrivals";
    let arrivals = match get_str(value, ctx, "kind")? {
        "diurnal" => {
            reject_unknown(value, ctx, &["kind", "amplitude", "period"])?;
            ArrivalSourceSpec::Diurnal {
                amplitude: get_f64(value, ctx, "amplitude")?,
                period: get_f64(value, ctx, "period")?,
            }
        }
        "burst" => {
            reject_unknown(
                value,
                ctx,
                &[
                    "kind",
                    "period",
                    "burst_duration",
                    "quiet_factor",
                    "burst_factor",
                ],
            )?;
            ArrivalSourceSpec::Burst {
                period: get_f64(value, ctx, "period")?,
                burst_duration: get_f64(value, ctx, "burst_duration")?,
                quiet_factor: get_f64(value, ctx, "quiet_factor")?,
                burst_factor: get_f64(value, ctx, "burst_factor")?,
            }
        }
        "spike" => {
            reject_unknown(
                value,
                ctx,
                &["kind", "quiet_duration", "spike_duration", "spike_factor"],
            )?;
            ArrivalSourceSpec::Spike {
                quiet_duration: get_f64(value, ctx, "quiet_duration")?,
                spike_duration: get_f64(value, ctx, "spike_duration")?,
                spike_factor: get_f64(value, ctx, "spike_factor")?,
            }
        }
        "ramp" => {
            reject_unknown(
                value,
                ctx,
                &[
                    "kind",
                    "steps",
                    "step_duration",
                    "start_factor",
                    "end_factor",
                ],
            )?;
            ArrivalSourceSpec::Ramp {
                steps: get_usize(value, ctx, "steps")?,
                step_duration: get_f64(value, ctx, "step_duration")?,
                start_factor: get_f64(value, ctx, "start_factor")?,
                end_factor: get_f64(value, ctx, "end_factor")?,
            }
        }
        "phases" => {
            reject_unknown(value, ctx, &["kind", "phases"])?;
            let phases = get(value, ctx, "phases")?
                .as_array()
                .ok_or_else(|| ConfigError::spec(format!("{ctx}.phases"), "expected an array"))?
                .iter()
                .map(|pair| {
                    let items = pair.as_array().filter(|a| a.len() == 2).ok_or_else(|| {
                        ConfigError::spec(
                            format!("{ctx}.phases"),
                            "expected [duration, rate_factor] pairs",
                        )
                    })?;
                    let field = |v: &Value, what: &str| {
                        v.as_f64().ok_or_else(|| {
                            ConfigError::spec(
                                format!("{ctx}.phases"),
                                format!("{what} must be a number"),
                            )
                        })
                    };
                    Ok(Phase {
                        duration: field(&items[0], "duration")?,
                        rate_factor: field(&items[1], "rate_factor")?,
                    })
                })
                .collect::<Result<Vec<_>, ConfigError>>()?;
            ArrivalSourceSpec::Phases(phases)
        }
        "trace" => {
            reject_unknown(value, ctx, &["kind", "path"])?;
            ArrivalSourceSpec::Trace {
                path: get_str(value, ctx, "path")?.to_string(),
            }
        }
        other => {
            return Err(ConfigError::spec(
                format!("{ctx}.kind"),
                format!(
                    "unknown kind {other:?} (expected \"diurnal\", \"burst\", \"spike\", \
                     \"ramp\", \"phases\", or \"trace\")"
                ),
            ))
        }
    };
    Ok(arrivals)
}

fn class_to_json(c: &ClassSpec) -> Value {
    let mut fields = vec![
        ("class", Value::Str(c.class.name().into())),
        ("weight", num(c.weight)),
        ("ttft_slo", num(c.ttft_slo)),
        ("tpot_slo", num(c.tpot_slo)),
    ];
    // Omitted when unset so class lists stay byte-stable.
    if let Some(deadline) = c.shed_after {
        fields.push(("shed_after", num(deadline)));
    }
    obj(fields)
}

fn class_from_json(value: &Value) -> Result<ClassSpec, ConfigError> {
    let ctx = "engine.batch.workload.classes";
    reject_unknown(
        value,
        ctx,
        &["class", "weight", "ttft_slo", "tpot_slo", "shed_after"],
    )?;
    let class = parse_tag::<RequestClass>(get_str(value, ctx, "class")?, ctx)?;
    let shed_after =
        match value.get("shed_after") {
            None => None,
            Some(v) => Some(v.as_f64().ok_or_else(|| {
                ConfigError::spec(format!("{ctx}.shed_after"), "expected a number")
            })?),
        };
    Ok(ClassSpec {
        class,
        weight: get_f64(value, ctx, "weight")?,
        ttft_slo: get_f64(value, ctx, "ttft_slo")?,
        tpot_slo: get_f64(value, ctx, "tpot_slo")?,
        shed_after,
    })
}

fn workload_spec_to_json(workload: &WorkloadSpec) -> Value {
    let mut fields = vec![("arrivals", arrivals_to_json(&workload.arrivals))];
    if !workload.classes.is_empty() {
        fields.push((
            "classes",
            Value::Arr(workload.classes.iter().map(class_to_json).collect()),
        ));
    }
    obj(fields)
}

fn workload_spec_from_json(value: &Value) -> Result<WorkloadSpec, ConfigError> {
    let ctx = "engine.batch.workload";
    reject_unknown(value, ctx, &["arrivals", "classes"])?;
    let classes = match value.get("classes") {
        None => Vec::new(),
        Some(v) => v
            .as_array()
            .ok_or_else(|| ConfigError::spec(format!("{ctx}.classes"), "expected an array"))?
            .iter()
            .map(class_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    };
    let workload = WorkloadSpec {
        arrivals: arrivals_from_json(get(value, ctx, "arrivals")?)?,
        classes,
    };
    // Numeric validation only — trace files are read when the scenario
    // builds, never at parse time.
    workload.validate()?;
    Ok(workload)
}

fn phase_name(phase: InferencePhase) -> &'static str {
    match phase {
        InferencePhase::Prefill => "prefill",
        InferencePhase::Decode => "decode",
    }
}

fn phase_from(text: &str, ctx: &str) -> Result<InferencePhase, ConfigError> {
    match text {
        "prefill" => Ok(InferencePhase::Prefill),
        "decode" => Ok(InferencePhase::Decode),
        other => Err(ConfigError::spec(
            ctx.to_string(),
            format!("unknown phase {other:?} (expected \"prefill\" or \"decode\")"),
        )),
    }
}

fn batch_to_json(batch: &BatchSpec) -> Value {
    match batch {
        BatchSpec::Fixed {
            tokens_per_group,
            avg_context,
            phase,
        } => obj(vec![
            ("kind", Value::Str("fixed".into())),
            ("tokens_per_group", num(*tokens_per_group as f64)),
            ("avg_context", num(*avg_context)),
            ("phase", Value::Str(phase_name(*phase).into())),
        ]),
        BatchSpec::Serving(s) => {
            let mut fields = vec![
                ("kind", Value::Str("serving".into())),
                ("mode", Value::Str(s.mode.name().into())),
                ("max_batch_tokens", num(s.max_batch_tokens as f64)),
                ("max_active", num(s.max_active as f64)),
                ("request_rate", num(s.request_rate)),
                ("iteration_period", num(s.iteration_period)),
                ("summary", Value::Str(s.summary.name().into())),
            ];
            // Omitted when absent so workload-free scenario documents stay
            // byte-identical to their pre-workload encodings.
            if let Some(workload) = &s.workload {
                fields.push(("workload", workload_spec_to_json(workload)));
            }
            obj(fields)
        }
    }
}

fn batch_from_json(value: &Value) -> Result<BatchSpec, ConfigError> {
    let ctx = "engine.batch";
    Ok(match get_str(value, ctx, "kind")? {
        "fixed" => BatchSpec::Fixed {
            tokens_per_group: get_u32(value, ctx, "tokens_per_group")?,
            avg_context: get_f64(value, ctx, "avg_context")?,
            phase: phase_from(get_str(value, ctx, "phase")?, "engine.batch.phase")?,
        },
        "serving" => {
            // `summary` is optional (older specs predate it), so a typo
            // would silently fall back to exact mode; reject unknown
            // members.
            reject_unknown(
                value,
                ctx,
                &[
                    "kind",
                    "mode",
                    "max_batch_tokens",
                    "max_active",
                    "request_rate",
                    "iteration_period",
                    "summary",
                    "workload",
                ],
            )?;
            let summary = match value.get("summary") {
                None => SummaryMode::Exact,
                Some(v) => {
                    let text = v.as_str().ok_or_else(|| {
                        ConfigError::spec("engine.batch.summary", "expected a string")
                    })?;
                    parse_tag::<SummaryMode>(text, "engine.batch.summary")?
                }
            };
            let workload = match value.get("workload") {
                None => None,
                Some(v) => Some(workload_spec_from_json(v)?),
            };
            BatchSpec::Serving(ServingSpec {
                mode: parse_tag(get_str(value, ctx, "mode")?, "engine.batch.mode")?,
                max_batch_tokens: get_u32(value, ctx, "max_batch_tokens")?,
                max_active: get_usize(value, ctx, "max_active")?,
                request_rate: get_f64(value, ctx, "request_rate")?,
                iteration_period: get_f64(value, ctx, "iteration_period")?,
                summary,
                workload,
            })
        }
        other => {
            return Err(ConfigError::spec(
                "engine.batch.kind",
                format!("unknown kind {other:?} (expected \"fixed\" or \"serving\")"),
            ))
        }
    })
}

impl EngineSpec {
    fn to_json_value(&self) -> Value {
        obj(vec![
            ("seed", uint_value(self.seed)),
            ("backend", Value::Str(self.backend.name().into())),
            ("balancer", Value::Str(self.balancer.name().into())),
            ("workload", workload_to_json(&self.workload)),
            ("batch", batch_to_json(&self.batch)),
            ("trigger_alpha_per_layer", num(self.trigger_alpha_per_layer)),
            ("trigger_beta", uint_value(self.trigger_beta)),
            ("slots_per_device", num(self.slots_per_device as f64)),
            (
                "max_actions_per_layer",
                num(self.max_actions_per_layer as f64),
            ),
            ("comm_layer_stride", num(self.comm_layer_stride as f64)),
            (
                "pipeline_microbatches",
                num(self.pipeline_microbatches as f64),
            ),
            ("uniform_gating", Value::Bool(self.uniform_gating)),
            ("cold_bandwidth", num(self.cold_bandwidth)),
            ("load_ema", num(self.load_ema)),
            ("kv_hbm_fraction", num(self.kv_hbm_fraction)),
            ("cache_entries", num(self.cache_entries as f64)),
        ])
    }

    fn from_json_value(value: &Value) -> Result<Self, ConfigError> {
        let ctx = "engine";
        Ok(EngineSpec {
            seed: get_uint(value, ctx, "seed")?,
            backend: parse_tag(get_str(value, ctx, "backend")?, "engine.backend")?,
            balancer: parse_tag(get_str(value, ctx, "balancer")?, "engine.balancer")?,
            workload: workload_from_json(get(value, ctx, "workload")?)?,
            batch: batch_from_json(get(value, ctx, "batch")?)?,
            trigger_alpha_per_layer: get_f64(value, ctx, "trigger_alpha_per_layer")?,
            trigger_beta: get_uint(value, ctx, "trigger_beta")?,
            slots_per_device: get_usize(value, ctx, "slots_per_device")?,
            max_actions_per_layer: get_usize(value, ctx, "max_actions_per_layer")?,
            comm_layer_stride: get_usize(value, ctx, "comm_layer_stride")?,
            pipeline_microbatches: get_usize(value, ctx, "pipeline_microbatches")?,
            uniform_gating: get_bool(value, ctx, "uniform_gating")?,
            cold_bandwidth: get_f64(value, ctx, "cold_bandwidth")?,
            load_ema: get_f64(value, ctx, "load_ema")?,
            kv_hbm_fraction: get_f64(value, ctx, "kv_hbm_fraction")?,
            cache_entries: get_usize(value, ctx, "cache_entries")?,
        })
    }
}

// ---------------------------------------------------------------------------
// Fleet / sweep.

/// One timeline event: `{"kind": ..., "time": ...}` plus the kind's own
/// operand (`count` for scale-ups, `replica` otherwise).
fn fleet_event_to_json(event: &FleetEvent) -> Value {
    let mut fields = vec![
        ("kind", Value::Str(event.kind.name().into())),
        ("time", num(event.time)),
    ];
    match event.kind {
        FleetEventKind::ScaleUp { count } => fields.push(("count", num(count as f64))),
        FleetEventKind::Drain { replica }
        | FleetEventKind::Crash { replica }
        | FleetEventKind::Recover { replica } => fields.push(("replica", num(replica as f64))),
    }
    obj(fields)
}

fn fleet_event_from_json(value: &Value, index: usize) -> Result<FleetEvent, ConfigError> {
    let ctx = format!("fleet.events[{index}]");
    let kind = match get_str(value, &ctx, "kind")? {
        "scale-up" => {
            reject_unknown(value, &ctx, &["kind", "time", "count"])?;
            FleetEventKind::ScaleUp {
                count: get_usize(value, &ctx, "count")?,
            }
        }
        "drain" => {
            reject_unknown(value, &ctx, &["kind", "time", "replica"])?;
            FleetEventKind::Drain {
                replica: get_usize(value, &ctx, "replica")?,
            }
        }
        "crash" => {
            reject_unknown(value, &ctx, &["kind", "time", "replica"])?;
            FleetEventKind::Crash {
                replica: get_usize(value, &ctx, "replica")?,
            }
        }
        "recover" => {
            reject_unknown(value, &ctx, &["kind", "time", "replica"])?;
            FleetEventKind::Recover {
                replica: get_usize(value, &ctx, "replica")?,
            }
        }
        other => {
            return Err(ConfigError::spec(
                format!("{ctx}.kind"),
                format!(
                    "unknown kind {other:?} (expected \"scale-up\", \"drain\", \
                     \"crash\", or \"recover\")"
                ),
            ))
        }
    };
    Ok(FleetEvent {
        time: get_f64(value, &ctx, "time")?,
        kind,
    })
}

impl FleetSpec {
    fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("replicas", num(self.replicas as f64)),
            ("policy", Value::Str(self.policy.name())),
            ("request_rate", num(self.request_rate)),
            (
                "backend_overrides",
                Value::strings(self.backend_overrides.iter().map(|b| b.name())),
            ),
            ("scheduler", Value::Str(self.scheduler.name().into())),
        ];
        // Only emitted when non-empty, so event-free documents stay
        // byte-identical to the pre-timeline schema.
        if !self.events.is_empty() {
            fields.push((
                "events",
                Value::Arr(self.events.iter().map(fleet_event_to_json).collect()),
            ));
        }
        // Same contract for the disaggregation members: colocated fleets
        // stay byte-identical to the pre-role schema.
        if !self.roles.is_empty() {
            fields.push(("roles", Value::strings(self.roles.iter().map(|r| r.name()))));
        }
        if let Some(platform) = &self.decode_platform {
            fields.push(("decode_platform", platform.to_json_value()));
        }
        if let Some(mapping) = self.decode_mapping {
            fields.push(("decode_mapping", mapping.to_json_value()));
        }
        obj(fields)
    }

    fn from_json_value(value: &Value) -> Result<Self, ConfigError> {
        let ctx = "fleet";
        // `backend_overrides`, `scheduler`, and `events` are optional, so
        // a typo would silently drop them; reject unknown members.
        reject_unknown(
            value,
            ctx,
            &[
                "replicas",
                "policy",
                "request_rate",
                "backend_overrides",
                "scheduler",
                "events",
                "roles",
                "decode_platform",
                "decode_mapping",
            ],
        )?;
        let overrides = match value.get("backend_overrides") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| {
                    ConfigError::spec("fleet.backend_overrides", "expected an array of names")
                })?
                .iter()
                .map(|b| {
                    let text = b.as_str().ok_or_else(|| {
                        ConfigError::spec("fleet.backend_overrides", "expected backend names")
                    })?;
                    parse_tag::<CongestionBackend>(text, "fleet.backend_overrides")
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let scheduler = match value.get("scheduler") {
            None => FleetScheduler::default(),
            Some(v) => {
                let text = v
                    .as_str()
                    .ok_or_else(|| ConfigError::spec("fleet.scheduler", "expected a string"))?;
                parse_tag::<FleetScheduler>(text, "fleet.scheduler")?
            }
        };
        let events = match value.get("events") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| ConfigError::spec("fleet.events", "expected an array of events"))?
                .iter()
                .enumerate()
                .map(|(i, e)| fleet_event_from_json(e, i))
                .collect::<Result<Vec<_>, _>>()?,
        };
        let roles = match value.get("roles") {
            None => Vec::new(),
            Some(v) => v
                .as_array()
                .ok_or_else(|| ConfigError::spec("fleet.roles", "expected an array of role names"))?
                .iter()
                .map(|r| {
                    let text = r
                        .as_str()
                        .ok_or_else(|| ConfigError::spec("fleet.roles", "expected role names"))?;
                    parse_tag::<ReplicaRole>(text, "fleet.roles")
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        let decode_platform = match value.get("decode_platform") {
            None => None,
            Some(v) => Some(PlatformSpec::from_json_value(v)?),
        };
        let decode_mapping = match value.get("decode_mapping") {
            None => None,
            Some(v) => Some(MappingSpec::from_json_value(v)?),
        };
        let spec = FleetSpec {
            replicas: get_usize(value, ctx, "replicas")?,
            policy: parse_tag(get_str(value, ctx, "policy")?, "fleet.policy")?,
            request_rate: get_f64(value, ctx, "request_rate")?,
            backend_overrides: overrides,
            scheduler,
            events,
            roles,
            decode_platform,
            decode_mapping,
        };
        // Reject bad role sets and bad timelines (unsorted times,
        // out-of-range replicas, no-op transitions, role sets with no
        // prefill/decode capacity) at parse time with the same typed
        // errors the fleet constructor raises — not as a silent drop or a
        // later panic.
        spec.validate_shape()?;
        Ok(spec)
    }
}

impl SweepSpec {
    fn to_json_value(&self) -> Value {
        obj(vec![
            (
                "rates",
                Value::Arr(self.rates.iter().map(|&r| num(r)).collect()),
            ),
            (
                "backends",
                Value::strings(self.backends.iter().map(|b| b.name())),
            ),
            (
                "policies",
                Value::strings(self.policies.iter().map(|p| p.name())),
            ),
            (
                "replicas",
                Value::Arr(self.replicas.iter().map(|&n| num(n as f64)).collect()),
            ),
        ])
    }

    fn from_json_value(value: &Value) -> Result<Self, ConfigError> {
        // Every axis is optional, so a typo ("rate") would silently leave
        // the axis empty; reject unknown members.
        reject_unknown(
            value,
            "sweep",
            &["rates", "backends", "policies", "replicas"],
        )?;
        let list = |key: &str| -> Result<Vec<Value>, ConfigError> {
            match value.get(key) {
                None => Ok(Vec::new()),
                Some(v) => v
                    .as_array()
                    .map(<[Value]>::to_vec)
                    .ok_or_else(|| ConfigError::spec(format!("sweep.{key}"), "expected an array")),
            }
        };
        let rates = list("rates")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| ConfigError::spec("sweep.rates", "expected numbers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let backends = list("backends")?
            .iter()
            .map(|v| {
                let text = v
                    .as_str()
                    .ok_or_else(|| ConfigError::spec("sweep.backends", "expected names"))?;
                parse_tag::<CongestionBackend>(text, "sweep.backends")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let policies = list("policies")?
            .iter()
            .map(|v| {
                let text = v
                    .as_str()
                    .ok_or_else(|| ConfigError::spec("sweep.policies", "expected names"))?;
                parse_tag::<RouterPolicy>(text, "sweep.policies")
            })
            .collect::<Result<Vec<_>, _>>()?;
        let replicas = list("replicas")?
            .iter()
            .map(|v| {
                v.as_f64()
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .map(|n| n as usize)
                    .ok_or_else(|| ConfigError::spec("sweep.replicas", "expected integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepSpec {
            rates,
            backends,
            policies,
            replicas,
        })
    }
}

// ---------------------------------------------------------------------------
// The root.

impl ScenarioSpec {
    /// Serializes the scenario to its JSON document (schema
    /// [`SCHEMA`](crate::SCHEMA)). Every knob is emitted explicitly, so
    /// the document is self-describing and the round-trip is lossless.
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("schema", Value::Str(SCHEMA.into())),
            ("name", Value::Str(self.name.clone())),
            ("platform", self.platform.to_json_value()),
            ("mapping", self.mapping.to_json_value()),
            ("model", self.model.to_json_value()),
            ("iterations", num(self.iterations as f64)),
            ("engine", self.engine.to_json_value()),
        ];
        if let Some(fleet) = &self.fleet {
            fields.push(("fleet", fleet.to_json_value()));
        }
        if let Some(sweep) = &self.sweep {
            fields.push(("sweep", sweep.to_json_value()));
        }
        obj(fields)
    }

    /// Parses a scenario from its JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::SchemaMismatch`] for a wrong/missing schema
    /// tag and a field-naming [`ConfigError::Spec`] for anything malformed
    /// below it.
    pub fn from_json(value: &Value) -> Result<Self, ConfigError> {
        let found = value
            .get("schema")
            .and_then(Value::as_str)
            .unwrap_or_default();
        if found != SCHEMA {
            return Err(ConfigError::SchemaMismatch {
                found: found.to_string(),
                expected: SCHEMA.to_string(),
            });
        }
        let ctx = "scenario";
        // The optional sections make top-level typos dangerous ("flete"
        // would otherwise silently run a fleet scenario as a single
        // engine); reject anything outside the schema.
        reject_unknown(
            value,
            ctx,
            &[
                "schema",
                "name",
                "platform",
                "mapping",
                "model",
                "iterations",
                "engine",
                "fleet",
                "sweep",
            ],
        )?;
        let fleet = match value.get("fleet") {
            None | Some(Value::Null) => None,
            Some(v) => Some(FleetSpec::from_json_value(v)?),
        };
        let sweep = match value.get("sweep") {
            None | Some(Value::Null) => None,
            Some(v) => Some(SweepSpec::from_json_value(v)?),
        };
        Ok(ScenarioSpec {
            name: get_str(value, ctx, "name")?.to_string(),
            platform: PlatformSpec::from_json_value(get(value, ctx, "platform")?)?,
            mapping: MappingSpec::from_json_value(get(value, ctx, "mapping")?)?,
            model: ModelSpec::from_json_value(get(value, ctx, "model")?)?,
            engine: EngineSpec::from_json_value(get(value, ctx, "engine")?)?,
            iterations: get_usize(value, ctx, "iterations")?,
            fleet,
            sweep,
        })
    }

    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Json`] for malformed JSON and whatever
    /// [`ScenarioSpec::from_json`] rejects about a well-formed document.
    pub fn from_json_text(text: &str) -> Result<Self, ConfigError> {
        Self::from_json(&Value::parse(text)?)
    }

    /// Serializes to pretty-printed JSON text (what the example scenario
    /// files under `examples/scenarios/` contain).
    pub fn to_json_text(&self) -> String {
        self.to_json().pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScenarioSpec;
    use moentwine_core::balancer::BalancerKind;

    fn full_spec() -> ScenarioSpec {
        ScenarioSpec::new("full", PlatformSpec::multi_wsc(2, 1, 4))
            .with_mapping(MappingSpec::her(4))
            .with_model(ModelSpec::Custom(ModelConfig::tiny()))
            .with_engine(
                EngineSpec::default()
                    .with_seed(99)
                    .with_backend(CongestionBackend::FlowSimCached)
                    .with_balancer(BalancerKind::NonInvasive)
                    .with_workload(WorkloadMix::Blend(vec![
                        (WorkloadScenario::Chat, 2.0),
                        (WorkloadScenario::Math, 1.0),
                    ]))
                    .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 5.0e3))),
            )
            .with_fleet(
                FleetSpec::new(3, RouterPolicy::PowerOfTwoChoices, 9.0e3)
                    .with_backend_overrides(vec![
                        CongestionBackend::Analytic,
                        CongestionBackend::FlowSim,
                    ])
                    .with_events(vec![
                        FleetEvent {
                            time: 1.0e-3,
                            kind: FleetEventKind::Crash { replica: 1 },
                        },
                        FleetEvent {
                            time: 2.0e-3,
                            kind: FleetEventKind::ScaleUp { count: 2 },
                        },
                        FleetEvent {
                            time: 3.0e-3,
                            kind: FleetEventKind::Recover { replica: 1 },
                        },
                        FleetEvent {
                            time: 4.0e-3,
                            kind: FleetEventKind::Drain { replica: 4 },
                        },
                    ]),
            )
            .with_sweep(
                SweepSpec::default()
                    .with_rates(vec![1.0e3, 4.0e3])
                    .with_replicas(vec![1, 2, 4]),
            )
            .with_iterations(250)
    }

    #[test]
    fn roundtrip_identity_on_a_fully_populated_tree() {
        let spec = full_spec();
        let json = spec.to_json();
        assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
        // And through the actual text layer.
        let text = spec.to_json_text();
        assert_eq!(ScenarioSpec::from_json_text(&text).unwrap(), spec);
    }

    #[test]
    fn roundtrip_identity_on_every_workload_and_batch_kind() {
        for workload in [
            WorkloadMix::Fixed(WorkloadScenario::Privacy),
            WorkloadMix::mixed(123.0),
            WorkloadMix::Blend(vec![(WorkloadScenario::Coding, 0.25)]),
        ] {
            for batch in [
                BatchSpec::Fixed {
                    tokens_per_group: 64,
                    avg_context: 1234.5,
                    phase: InferencePhase::Prefill,
                },
                BatchSpec::Serving(ServingSpec::hybrid(512, 32, 7.5e2)),
            ] {
                let spec = ScenarioSpec::new("kinds", PlatformSpec::wsc(4)).with_engine(
                    EngineSpec::default()
                        .with_workload(workload.clone())
                        .with_batch(batch.clone()),
                );
                let json = spec.to_json();
                assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
            }
        }
    }

    #[test]
    fn workload_members_roundtrip_and_reject_typos() {
        let workload = WorkloadSpec::new(ArrivalSourceSpec::Burst {
            period: 60.0,
            burst_duration: 5.0,
            quiet_factor: 0.2,
            burst_factor: 4.0,
        })
        .with_classes(vec![
            ClassSpec::interactive()
                .with_weight(3.0)
                .with_shed_after(0.4),
            ClassSpec::batch(),
        ]);
        let spec = ScenarioSpec::new("workload", PlatformSpec::wsc(4)).with_engine(
            EngineSpec::default().with_batch(BatchSpec::Serving(
                ServingSpec::hybrid(1024, 64, 2.0e3).with_workload(workload),
            )),
        );
        let text = spec.to_json_text();
        assert_eq!(ScenarioSpec::from_json_text(&text).unwrap(), spec);
        // `shed_after` is omitted when unset (byte-stability of class lists).
        assert_eq!(text.matches("shed_after").count(), 1, "{text}");

        // A typo'd arrival knob is a typed error, not a silent default.
        let mut json = spec.to_json();
        let arrivals = ["engine", "batch", "workload", "arrivals", "kind"];
        with_member(&mut json, &arrivals, |m| {
            m.push(("burst_factr".into(), num(9.0)));
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("burst_factr"), "{err}");

        // Out-of-range knobs are caught at parse time, before any build.
        let mut json = spec.to_json();
        with_member(&mut json, &arrivals, |m| {
            for (k, v) in m.iter_mut() {
                if k == "burst_duration" {
                    *v = num(600.0); // longer than the period
                }
            }
        });
        assert!(ScenarioSpec::from_json(&json).is_err());
    }

    #[test]
    fn big_u64_knobs_roundtrip_exactly() {
        // Above 2^53 an f64 JSON number would round; the codec switches to
        // decimal strings so the round-trip stays an identity.
        let spec = ScenarioSpec::new("big-seed", PlatformSpec::wsc(4))
            .with_engine(EngineSpec::default().with_seed(u64::MAX - 1));
        let text = spec.to_json_text();
        assert!(text.contains(&format!("\"{}\"", u64::MAX - 1)), "{text}");
        assert_eq!(ScenarioSpec::from_json_text(&text).unwrap(), spec);
    }

    #[test]
    fn unknown_optional_sections_are_rejected_not_ignored() {
        // A typo'd "fleet" must not silently run a single-engine scenario.
        let mut json = ScenarioSpec::new("typo", PlatformSpec::wsc(4)).to_json();
        if let Value::Obj(members) = &mut json {
            members.push(("flete".into(), obj(vec![("replicas", num(4.0))])));
        }
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("flete"), "{err}");

        // Same for a typo'd sweep axis and a typo'd fleet member.
        let mut spec = full_spec();
        spec.sweep = None;
        let mut json = spec.to_json();
        if let Value::Obj(members) = &mut json {
            for (k, v) in members.iter_mut() {
                if k == "fleet" {
                    if let Value::Obj(fields) = v {
                        fields.push(("backend_override".into(), Value::Arr(vec![])));
                    }
                }
            }
        }
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("backend_override"), "{err}");
    }

    #[test]
    fn disaggregated_fleet_members_roundtrip_and_bad_shapes_are_typed() {
        let spec = ScenarioSpec::new("disagg", PlatformSpec::wsc(4))
            .with_engine(
                EngineSpec::default()
                    .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 4.0e3))),
            )
            .with_fleet(
                FleetSpec::new(4, RouterPolicy::LeastQueueDepth, 8.0e3)
                    .with_roles(vec![
                        ReplicaRole::Prefill,
                        ReplicaRole::Prefill,
                        ReplicaRole::Decode,
                        ReplicaRole::Decode,
                    ])
                    .with_decode_platform(PlatformSpec::dgx(1), MappingSpec::cluster(8)),
            );
        let text = spec.to_json_text();
        assert_eq!(ScenarioSpec::from_json_text(&text).unwrap(), spec);

        // Colocated fleets never emit the disaggregation members, so every
        // pre-role document stays byte-identical.
        let colocated = ScenarioSpec::new("colo", PlatformSpec::wsc(4))
            .with_engine(
                EngineSpec::default()
                    .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 4.0e3))),
            )
            .with_fleet(FleetSpec::new(2, RouterPolicy::RoundRobin, 1.0e3));
        let text = colocated.to_json_text();
        assert!(!text.contains("roles"), "{text}");
        assert!(!text.contains("decode_platform"), "{text}");

        // A misspelled role is a typed parse error naming the spelling.
        let mut json = spec.to_json();
        with_member(&mut json, &["fleet", "roles"], |fields| {
            fields.iter_mut().find(|(k, _)| k == "roles").unwrap().1 =
                Value::strings(["prefill", "prefill", "decode", "decoed"]);
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("decoed"), "{err}");

        // A role list that does not match the replica count.
        let mut json = spec.to_json();
        with_member(&mut json, &["fleet", "roles"], |fields| {
            fields.iter_mut().find(|(k, _)| k == "roles").unwrap().1 =
                Value::strings(["prefill", "decode"]);
        });
        assert_eq!(
            ScenarioSpec::from_json(&json).unwrap_err(),
            ConfigError::FleetRolesLengthMismatch {
                roles: 2,
                replicas: 4
            }
        );

        // All-prefill and all-decode role sets are capacity errors.
        let mut json = spec.to_json();
        with_member(&mut json, &["fleet", "roles"], |fields| {
            fields.iter_mut().find(|(k, _)| k == "roles").unwrap().1 =
                Value::strings(["prefill"; 4]);
        });
        assert_eq!(
            ScenarioSpec::from_json(&json).unwrap_err(),
            ConfigError::FleetNoDecodeCapacity
        );
        let mut json = spec.to_json();
        with_member(&mut json, &["fleet", "roles"], |fields| {
            fields.iter_mut().find(|(k, _)| k == "roles").unwrap().1 =
                Value::strings(["decode"; 4]);
        });
        assert_eq!(
            ScenarioSpec::from_json(&json).unwrap_err(),
            ConfigError::FleetNoPrefillCapacity
        );

        // decode_platform without decode_mapping (and vice versa).
        let mut json = spec.to_json();
        with_member(&mut json, &["fleet", "decode_mapping"], |fields| {
            fields.retain(|(k, _)| k != "decode_mapping");
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("set together"), "{err}");

        // A decode platform on an all-colocated fleet is dead config.
        let mut json = spec.to_json();
        with_member(&mut json, &["fleet", "roles"], |fields| {
            fields.retain(|(k, _)| k != "roles");
        });
        assert_eq!(
            ScenarioSpec::from_json(&json).unwrap_err(),
            ConfigError::FleetDecodePlatformUnused
        );
    }

    #[test]
    fn routing_policy_spellings_roundtrip_and_reject_typos() {
        // Every canonical and extended routing-policy spelling — including
        // the feedback policies and parameterized speculative dispatch —
        // survives the text layer as an identity.
        let with_policy = |policy: RouterPolicy, replicas: usize| {
            ScenarioSpec::new("policies", PlatformSpec::wsc(4))
                .with_engine(
                    EngineSpec::default()
                        .with_batch(BatchSpec::Serving(ServingSpec::hybrid(1024, 64, 2.0e3))),
                )
                .with_fleet(FleetSpec::new(replicas, policy, 1.0e3))
        };
        for policy in RouterPolicy::extended() {
            let spec = with_policy(policy, 2);
            let text = spec.to_json_text();
            assert!(text.contains(&policy.name()), "{text}");
            assert_eq!(ScenarioSpec::from_json_text(&text).unwrap(), spec);
        }
        // A wider fan-out keeps its copy count through the codec.
        let spec = with_policy(RouterPolicy::Speculative { k: 4 }, 8);
        let text = spec.to_json_text();
        assert!(text.contains("speculative:k=4"), "{text}");
        assert_eq!(ScenarioSpec::from_json_text(&text).unwrap(), spec);

        // Misspelled policies are typed parse errors naming the spelling,
        // not silent fallbacks to a default policy.
        for typo in ["ewma-tftt", "speculative:k=two", "speculative:k=0"] {
            let mut json = spec.to_json();
            with_member(&mut json, &["fleet", "policy"], |fields| {
                fields.iter_mut().find(|(k, _)| k == "policy").unwrap().1 = Value::Str(typo.into());
            });
            let err = ScenarioSpec::from_json(&json).unwrap_err();
            assert!(err.to_string().contains(typo), "{typo}: {err}");
        }
    }

    /// Mutates a nested object field along `path`, applying `f` to the
    /// object holding the final key.
    fn with_member(json: &mut Value, path: &[&str], f: impl FnOnce(&mut Vec<(String, Value)>)) {
        let mut cursor = json;
        for key in &path[..path.len() - 1] {
            let Value::Obj(members) = cursor else {
                panic!("expected an object at {key}");
            };
            cursor = &mut members
                .iter_mut()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("missing {key}"))
                .1;
        }
        let Value::Obj(members) = cursor else {
            panic!("expected an object");
        };
        f(members);
    }

    #[test]
    fn invalid_summary_and_scheduler_spellings_are_rejected() {
        // "exactly" is not a summary mode; the error must name the field.
        let mut json = full_spec().to_json();
        with_member(&mut json, &["engine", "batch", "summary"], |members| {
            members
                .iter_mut()
                .find(|(k, _)| k == "summary")
                .expect("serving batch emits summary")
                .1 = Value::Str("exactly".into());
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("engine.batch.summary"), "{err}");

        // "event_heap" (underscore) is not a scheduler spelling.
        let mut json = full_spec().to_json();
        with_member(&mut json, &["fleet", "scheduler"], |members| {
            members
                .iter_mut()
                .find(|(k, _)| k == "scheduler")
                .expect("fleet emits scheduler")
                .1 = Value::Str("event_heap".into());
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("fleet.scheduler"), "{err}");
    }

    #[test]
    fn invalid_fleet_event_spellings_are_rejected() {
        // An unknown event kind is a typed error naming the entry, not a
        // silently dropped event.
        let mut json = full_spec().to_json();
        with_member(&mut json, &["fleet", "events"], |members| {
            let (_, events) = members
                .iter_mut()
                .find(|(k, _)| k == "events")
                .expect("fleet with a timeline emits events");
            let Value::Arr(entries) = events else {
                panic!("events is an array");
            };
            entries[0] = obj(vec![
                ("kind", Value::Str("failover".into())),
                ("time", num(1.0e-3)),
                ("replica", num(1.0)),
            ]);
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("fleet.events[0].kind"), "{err}");

        // A kind-inappropriate operand (count on a drain) is rejected.
        let mut json = full_spec().to_json();
        with_member(&mut json, &["fleet", "events"], |members| {
            let (_, events) = members
                .iter_mut()
                .find(|(k, _)| k == "events")
                .expect("fleet with a timeline emits events");
            let Value::Arr(entries) = events else {
                panic!("events is an array");
            };
            if let Value::Obj(fields) = &mut entries[3] {
                fields.push(("count".into(), num(2.0)));
            }
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("fleet.events[3].count"), "{err}");

        // An unsorted timeline fails with the typed timeline error at
        // parse time, not at fleet construction.
        let mut json = full_spec().to_json();
        with_member(&mut json, &["fleet", "events"], |members| {
            let (_, events) = members
                .iter_mut()
                .find(|(k, _)| k == "events")
                .expect("fleet with a timeline emits events");
            let Value::Arr(entries) = events else {
                panic!("events is an array");
            };
            entries.swap(0, 1);
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(
            matches!(err, ConfigError::FleetEventsUnsorted { index: 1 }),
            "{err}"
        );

        // An out-of-range replica index is equally a parse-time error.
        let mut json = full_spec().to_json();
        with_member(&mut json, &["fleet", "events"], |members| {
            let (_, events) = members
                .iter_mut()
                .find(|(k, _)| k == "events")
                .expect("fleet with a timeline emits events");
            let Value::Arr(entries) = events else {
                panic!("events is an array");
            };
            if let Value::Obj(fields) = &mut entries[0] {
                for (k, v) in fields.iter_mut() {
                    if k == "replica" {
                        *v = num(7.0);
                    }
                }
            }
        });
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(
            matches!(
                err,
                ConfigError::FleetEventReplicaOutOfRange {
                    index: 0,
                    replica: 7,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn events_are_optional_and_omitted_when_empty() {
        // Event-free specs neither emit nor require the key, keeping old
        // documents and their byte-exact encodings valid.
        let mut spec = full_spec();
        spec.fleet.as_mut().unwrap().events.clear();
        let text = spec.to_json_text();
        assert!(!text.contains("\"events\""), "{text}");
        assert_eq!(ScenarioSpec::from_json_text(&text).unwrap(), spec);
    }

    #[test]
    fn summary_and_scheduler_are_optional_with_stable_defaults() {
        // Older documents predate both keys; absence means exact summaries
        // and the event-heap scheduler.
        let spec = full_spec();
        let mut json = spec.to_json();
        with_member(&mut json, &["engine", "batch", "summary"], |members| {
            members.retain(|(k, _)| k != "summary");
        });
        with_member(&mut json, &["fleet", "scheduler"], |members| {
            members.retain(|(k, _)| k != "scheduler");
        });
        let back = ScenarioSpec::from_json(&json).unwrap();
        assert_eq!(back, spec);
        match &back.engine.batch {
            BatchSpec::Serving(s) => assert_eq!(s.summary, SummaryMode::Exact),
            other => panic!("expected serving batch, got {other:?}"),
        }
        assert_eq!(
            back.fleet.as_ref().unwrap().scheduler,
            FleetScheduler::EventHeap
        );
    }

    #[test]
    fn schema_tag_is_required() {
        let err = ScenarioSpec::from_json_text("{}").unwrap_err();
        assert!(matches!(err, ConfigError::SchemaMismatch { .. }), "{err}");
        let err =
            ScenarioSpec::from_json_text(r#"{"schema": "moentwine/scenario/v999"}"#).unwrap_err();
        assert!(err.to_string().contains("v999"), "{err}");
    }

    #[test]
    fn malformed_documents_name_the_offending_field() {
        let err = ScenarioSpec::from_json_text("not json").unwrap_err();
        assert!(matches!(err, ConfigError::Json(_)), "{err}");

        let mut json = full_spec().to_json();
        if let Value::Obj(members) = &mut json {
            for (k, v) in members.iter_mut() {
                if k == "platform" {
                    *v = obj(vec![("kind", Value::Str("torus".into()))]);
                }
            }
        }
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("platform.kind"), "{err}");

        // A fractional count is rejected, not truncated.
        let mut json = full_spec().to_json();
        if let Value::Obj(members) = &mut json {
            for (k, v) in members.iter_mut() {
                if k == "iterations" {
                    *v = Value::Num(1.5);
                }
            }
        }
        let err = ScenarioSpec::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("scenario.iterations"), "{err}");
    }
}
