//! Declarative scenario API: one typed spec layer from topology to fleet.
//!
//! Every experiment in the workspace used to be hard-coded Rust: a bench
//! bin hand-wiring `ModelConfig` × platform × `EngineConfig` ×
//! `Fleet`/`Router` combos. This crate makes that evaluation space —
//! mapping × balancer × fidelity tier × platform × workload (paper §VI),
//! plus the fleet layer on top — expressible as *data*:
//!
//! * [`ScenarioSpec`] is the typed root of the tree: a [`PlatformSpec`]
//!   (which interconnect), a [`MappingSpec`] (how TP groups tile it), a
//!   [`ModelSpec`] (which MoE model), an [`EngineSpec`] (every engine
//!   knob, including the [`BatchSpec`]/[`ServingSpec`] batch production
//!   mode), an optional [`FleetSpec`] (replicas behind a router), and an
//!   optional [`SweepSpec`] (axes to expand into a grid of scenarios).
//! * Everything validates through the single
//!   [`ConfigError`](moentwine_core::ConfigError) enum — no `assert!`
//!   panics deep inside constructors.
//! * The tree round-trips losslessly through JSON (schema
//!   [`SCHEMA`], `moentwine/scenario/v1`): [`ScenarioSpec::to_json`] /
//!   [`ScenarioSpec::from_json`], so any scenario can live in a
//!   `examples/scenarios/*.json` file and run via the `scenario` bench bin.
//! * [`ScenarioSpec::build`] materializes topology + route table + layout
//!   once; [`Scenario::run`] then drives the existing engine (or fleet)
//!   and returns the existing summaries.
//!
//! # Example
//!
//! ```
//! use moentwine_spec::{
//!     BatchSpec, EngineSpec, MappingSpec, ModelSpec, PlatformSpec, ScenarioSpec, ServingSpec,
//! };
//!
//! let spec = ScenarioSpec::new("quickstart", PlatformSpec::wsc(4))
//!     .with_mapping(MappingSpec::er(4))
//!     .with_model(ModelSpec::preset("tiny"))
//!     .with_engine(
//!         EngineSpec::default()
//!             .with_seed(7)
//!             .with_batch(BatchSpec::Serving(ServingSpec::hybrid(2048, 128, 4.0e3))),
//!     )
//!     .with_iterations(50);
//! // Lossless JSON round-trip (schema moentwine/scenario/v1)...
//! let json = spec.to_json();
//! assert_eq!(ScenarioSpec::from_json(&json).unwrap(), spec);
//! // ...and a one-call run producing the engine's own summaries.
//! let outcome = spec.build().unwrap().run().unwrap();
//! assert!(outcome.as_engine().unwrap().0.mean_iteration_time > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod engine;
mod fleet;
mod model;
mod platform;
mod scenario;
mod sweep;
mod workload;

pub use engine::{BatchSpec, EngineSpec, ServingSpec};
pub use fleet::FleetSpec;
pub use model::ModelSpec;
pub use moentwine_core::ConfigError;
pub use platform::{MappingSpec, PlatformSpec};
pub use scenario::{Layout, Scenario, ScenarioOutcome, ScenarioSpec};
pub use sweep::SweepSpec;
pub use workload::{
    load_trace, parse_trace, trace_to_json, ArrivalSourceSpec, WorkloadSpec, TRACE_SCHEMA,
};

/// Schema identifier embedded in (and required of) every serialized
/// [`ScenarioSpec`].
pub const SCHEMA: &str = "moentwine/scenario/v1";
