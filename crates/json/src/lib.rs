//! Minimal JSON tree, pretty-printer, and parser.
//!
//! The workspace builds offline against a no-op `serde` shim, so scenario
//! specs (`moentwine-spec`), bench reports, and the `repro_all` summary
//! serialize through this hand-rolled layer instead of `serde_json`. It is
//! a leaf crate so both the spec layer and core can parse/emit JSON without
//! depending on the bench harness. Only the subset the workspace needs is
//! implemented: objects preserve insertion order, numbers are `f64`, and
//! the parser accepts exactly what the printer emits (standard JSON with
//! `\uXXXX` escapes on input).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an array of strings.
    pub fn strings<I: IntoIterator<Item = S>, S: Into<String>>(items: I) -> Value {
        Value::Arr(items.into_iter().map(|s| Value::Str(s.into())).collect())
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte offset plus message on malformed input.
    pub fn parse(text: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Inf/NaN; degrade to null like serde_json's default.
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset and message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.bytes.get(self.pos) != Some(&b':') {
                        return Err(self.err("expected ':'"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    members.push((key, self.value()?));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogates are not recombined; replace them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => unreachable!("loop stops only at quote or backslash"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Value::Obj(vec![
            ("id".into(), Value::Str("fig13b".into())),
            ("ok".into(), Value::Bool(true)),
            ("count".into(), Value::Num(42.0)),
            ("ratio".into(), Value::Num(1.5)),
            (
                "rows".into(),
                Value::Arr(vec![
                    Value::strings(["a", "b \"quoted\"\n"]),
                    Value::Arr(vec![]),
                ]),
            ),
            ("nothing".into(), Value::Null),
        ]);
        let text = doc.pretty();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn parses_standard_json() {
        let v = Value::parse(r#"{"a": [1, 2.5, -3e2], "b": "xAy"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("xAy"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse(r#"{"a": }"#).is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("[1] trailing").is_err());
        assert!(Value::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Num(3.0).pretty().trim(), "3");
        assert_eq!(Value::Num(0.25).pretty().trim(), "0.25");
        assert_eq!(Value::Num(f64::NAN).pretty().trim(), "null");
    }
}
