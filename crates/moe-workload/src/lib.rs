//! Synthetic MoE inference workloads.
//!
//! The paper drives its balancer experiments with expert-selection traces
//! profiled from four benchmark suites (Chat / Coding / Math / Privacy,
//! §VI-C) mixed according to Azure production arrival traces. Those traces
//! are not redistributable, so this crate generates **synthetic equivalents
//! with the same statistical structure** the paper relies on:
//!
//! * **Expert popularity bias** — some experts are intrinsically popular
//!   (Zipf-distributed base affinity, per layer).
//! * **Scenario affinity** — each scenario persistently boosts a fixed,
//!   seeded subset of domain experts per layer, so fixed-scenario load
//!   ratios stabilise after warm-up (paper Fig. 12).
//! * **Slow mixture drift** — production serving sees cyclically evolving
//!   scenario mixtures; [`WorkloadMix::Cycling`] rotates scenario weights
//!   smoothly, inducing the slow-varying load ratios that trigger dynamic
//!   rebalancing (paper §V-B).
//!
//! All generation is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use moe_model::ModelConfig;
//! use moe_workload::{Scenario, TraceGenerator, WorkloadMix};
//!
//! let config = ModelConfig::qwen3_235b();
//! let mut gen = TraceGenerator::new(
//!     &config,
//!     WorkloadMix::Fixed(Scenario::Math),
//!     4,    // DP groups
//!     256,  // tokens per group
//!     42,   // seed
//! );
//! let iter = gen.next_iteration();
//! assert_eq!(iter.layers.len(), config.num_sparse_layers as usize);
//! let totals = iter.layers[0].expert_totals();
//! assert_eq!(totals.iter().sum::<u64>(), 4 * 256 * 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affinity;
pub mod gating;
pub mod profile;
pub mod requests;
pub mod router;
pub mod scenario;
pub mod scheduler;
pub mod serving;
pub mod trace;

pub use affinity::AffinityModel;
pub use gating::sample_gating_counts;
pub use profile::{
    ArrivalSpec, ClassSpec, Phase, RequestClass, TraceRequest, WorkloadError, WorkloadProfile,
    DEFAULT_DIURNAL_AMPLITUDE, DEFAULT_DIURNAL_PERIOD_SECS,
};
pub use requests::{ArrivalProcess, LengthProfile, Request, RequestGenerator, RequestId};
pub use router::{
    max_mean_imbalance, Decision, LatencyFeedback, Outcome, ReplicaSnapshot, RouteCtx, RoutePolicy,
    Router, RouterPolicy,
};
pub use scenario::Scenario;
pub use scheduler::{BatchEntry, BatchScheduler, BatchSpec, SchedulingMode, MAX_ARRIVALS_PER_PULL};
pub use serving::{
    ClassPolicy, CopyStatus, InterruptedRequest, RequestRecord, ServingQueue, TokenAccounting,
};
pub use trace::{IterationTrace, LayerGating, TraceGenerator, WorkloadMix};
