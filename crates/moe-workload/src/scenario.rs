//! Inference scenarios.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four representative inference scenarios used by the paper's balancer
/// evaluation (§VI-C): multi-turn chat, code reasoning, graduate-level math,
/// and privacy-agent trustworthiness probes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Scenario {
    /// Multi-turn conversational requests.
    Chat,
    /// Code understanding / generation requests.
    Coding,
    /// Hard applied-mathematics requests (long chain-of-thought outputs).
    Math,
    /// Privacy-agent requests (short, templated outputs).
    Privacy,
}

impl Scenario {
    /// All scenarios, in the paper's order.
    pub fn all() -> [Scenario; 4] {
        [
            Scenario::Chat,
            Scenario::Coding,
            Scenario::Math,
            Scenario::Privacy,
        ]
    }

    /// Stable small integer id (used for seeding derived RNG streams).
    pub fn id(self) -> u64 {
        match self {
            Scenario::Chat => 0,
            Scenario::Coding => 1,
            Scenario::Math => 2,
            Scenario::Privacy => 3,
        }
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scenario::Chat => "Chat",
            Scenario::Coding => "Coding",
            Scenario::Math => "Math",
            Scenario::Privacy => "Privacy",
        };
        f.write_str(s)
    }
}

impl Scenario {
    /// Stable lowercase name (`"chat"` / `"coding"` / `"math"` /
    /// `"privacy"`), matching the `FromStr` spelling and the scenario-spec
    /// JSON encoding (the capitalized [`Display`](fmt::Display) form is for
    /// human-readable reports).
    pub fn name(self) -> &'static str {
        match self {
            Scenario::Chat => "chat",
            Scenario::Coding => "coding",
            Scenario::Math => "math",
            Scenario::Privacy => "privacy",
        }
    }
}

impl std::str::FromStr for Scenario {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "chat" => Ok(Scenario::Chat),
            "coding" => Ok(Scenario::Coding),
            "math" => Ok(Scenario::Math),
            "privacy" => Ok(Scenario::Privacy),
            other => Err(format!(
                "unknown scenario {other:?} (expected \"chat\", \"coding\", \
                 \"math\", or \"privacy\")"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct() {
        let mut ids: Vec<u64> = Scenario::all().iter().map(|s| s.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(Scenario::Math.to_string(), "Math");
        assert_eq!(Scenario::Privacy.to_string(), "Privacy");
    }
}
