//! Request generation: length profiles, arrival processes, and the
//! profile-driven request generator (sampled or trace replay).

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::profile::{
    validate_classes, ArrivalSpec, Phase, RequestClass, WorkloadError, WorkloadProfile,
};
use crate::scenario::Scenario;

/// Identity of one inference request, stable across its whole lifecycle
/// (arrival → admission → prefill → decode → completion).
///
/// Ids are opaque labels: the serving layer's batch composition is invariant
/// under relabeling (see the serving property tests), they exist so that
/// per-request token attribution and latency records can be joined.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A single inference request.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Stable request identity.
    pub id: RequestId,
    /// Scenario this request belongs to.
    pub scenario: Scenario,
    /// Tenant class (SLO tier) this request is served under.
    pub class: RequestClass,
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Output (generation) length in tokens.
    pub output_len: u32,
    /// Arrival time in seconds since the start of the trace.
    pub arrival: f64,
}

/// Log-normal-ish token length profile for one scenario.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LengthProfile {
    /// Median prompt length, tokens.
    pub input_median: f64,
    /// Median output length, tokens.
    pub output_median: f64,
    /// Log-space standard deviation.
    pub sigma: f64,
}

impl LengthProfile {
    /// The length profile for a scenario, qualitatively matching the
    /// benchmark suites the paper profiles: chat is short/medium, coding is
    /// long-in/medium-out, math is medium-in/long-out (chain-of-thought),
    /// privacy probes are short/short.
    pub fn for_scenario(scenario: Scenario) -> Self {
        match scenario {
            Scenario::Chat => LengthProfile {
                input_median: 512.0,
                output_median: 256.0,
                sigma: 0.6,
            },
            Scenario::Coding => LengthProfile {
                input_median: 2048.0,
                output_median: 512.0,
                sigma: 0.5,
            },
            Scenario::Math => LengthProfile {
                input_median: 768.0,
                output_median: 2048.0,
                sigma: 0.5,
            },
            Scenario::Privacy => LengthProfile {
                input_median: 384.0,
                output_median: 128.0,
                sigma: 0.4,
            },
        }
    }
}

/// The time-varying rate shape of a sampled arrival process.
#[derive(Clone, Debug)]
enum RateShape {
    /// `base_rate × (1 + amplitude·sin(2πt/period))`.
    Diurnal { amplitude: f64, period: f64 },
    /// Piecewise-constant factors over a cycling phase schedule.
    Phases {
        phases: Vec<Phase>,
        /// Sum of phase durations (one full cycle).
        cycle: f64,
        /// Largest rate factor (the thinning ceiling).
        peak_factor: f64,
    },
}

/// Time-varying Poisson arrival process, sampled by thinning.
///
/// The default shape is an Azure-like diurnal cycle with instantaneous
/// rate `base_rate × (1 + amplitude·sin(2πt/period))`; piecewise-constant
/// phase schedules (bursts, spikes, ramps) use the same thinning sampler
/// against the peak phase rate. All draws are seeded.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    base_rate: f64,
    shape: RateShape,
    rng: rand::rngs::StdRng,
    now: f64,
}

impl ArrivalProcess {
    /// Creates a diurnal process with `base_rate` requests/second, diurnal
    /// `amplitude` in `[0, 1)`, and cycle `period` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate <= 0`, `period <= 0`, or `amplitude` is outside
    /// `[0, 1)` — the panicking wrapper of [`ArrivalProcess::try_new`].
    pub fn new(base_rate: f64, amplitude: f64, period: f64, seed: u64) -> Self {
        Self::try_new(base_rate, amplitude, period, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible diurnal constructor: reports bad rate/amplitude/period as
    /// typed [`WorkloadError`]s instead of panicking.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NonPositiveRate`], [`WorkloadError::NonPositivePeriod`],
    /// or [`WorkloadError::AmplitudeOutOfRange`].
    pub fn try_new(
        base_rate: f64,
        amplitude: f64,
        period: f64,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        if base_rate <= 0.0 || !base_rate.is_finite() {
            return Err(WorkloadError::NonPositiveRate { value: base_rate });
        }
        ArrivalSpec::Diurnal { amplitude, period }.validate()?;
        Ok(ArrivalProcess {
            base_rate,
            shape: RateShape::Diurnal { amplitude, period },
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            now: 0.0,
        })
    }

    /// Fallible phase-schedule constructor: the phase list cycles, each
    /// phase multiplying `base_rate` by its factor.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NonPositiveRate`] or any phase-list violation from
    /// [`validate_phases`](crate::profile::validate_phases).
    pub fn try_with_phases(
        base_rate: f64,
        phases: Vec<Phase>,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        if base_rate <= 0.0 || !base_rate.is_finite() {
            return Err(WorkloadError::NonPositiveRate { value: base_rate });
        }
        crate::profile::validate_phases(&phases)?;
        let cycle: f64 = phases.iter().map(|p| p.duration).sum();
        let peak_factor = phases.iter().map(|p| p.rate_factor).fold(0.0, f64::max);
        Ok(ArrivalProcess {
            base_rate,
            shape: RateShape::Phases {
                phases,
                cycle,
                peak_factor,
            },
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            now: 0.0,
        })
    }

    /// Builds the sampled process described by an [`ArrivalSpec`] (the
    /// trace variant has no sampler; callers replay it instead).
    ///
    /// # Errors
    ///
    /// Whatever the shape constructors reject.
    fn try_from_spec(spec: &ArrivalSpec, base_rate: f64, seed: u64) -> Result<Self, WorkloadError> {
        match spec {
            ArrivalSpec::Diurnal { amplitude, period } => {
                Self::try_new(base_rate, *amplitude, *period, seed)
            }
            ArrivalSpec::Phases(phases) => Self::try_with_phases(base_rate, phases.clone(), seed),
            ArrivalSpec::Trace(_) => unreachable!("trace arrivals are replayed, not sampled"),
        }
    }

    /// Instantaneous arrival rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        match &self.shape {
            RateShape::Diurnal { amplitude, period } => {
                self.base_rate * (1.0 + amplitude * (2.0 * std::f64::consts::PI * t / period).sin())
            }
            RateShape::Phases { phases, cycle, .. } => {
                let mut offset = t.rem_euclid(*cycle);
                for p in phases {
                    if offset < p.duration {
                        return self.base_rate * p.rate_factor;
                    }
                    offset -= p.duration;
                }
                // Float residue at the cycle boundary lands on the last
                // phase.
                self.base_rate * phases.last().expect("non-empty phases").rate_factor
            }
        }
    }

    /// The thinning ceiling: the maximum instantaneous rate.
    fn ceiling(&self) -> f64 {
        match &self.shape {
            RateShape::Diurnal { amplitude, .. } => self.base_rate * (1.0 + amplitude),
            RateShape::Phases { peak_factor, .. } => self.base_rate * peak_factor,
        }
    }

    /// Draws the next arrival time (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        // Thinning against the rate ceiling.
        let ceiling = self.ceiling();
        loop {
            let u: f64 = self.rng.gen::<f64>().max(1e-12);
            self.now += -u.ln() / ceiling;
            let accept: f64 = self.rng.gen();
            if accept < self.rate_at(self.now) / ceiling {
                return self.now;
            }
        }
    }
}

/// Where a generator's requests come from: the thinning sampler, or replay
/// of a recorded trace.
#[derive(Clone, Debug)]
enum RequestSource {
    /// Sample arrivals / scenarios / lengths / classes from seeded RNGs.
    Sampled(ArrivalProcess),
    /// Replay recorded rows verbatim (finite: `next_request` returns
    /// `None` once the cursor passes the end).
    Replay {
        rows: Vec<crate::profile::TraceRequest>,
        cursor: usize,
    },
}

/// Generates requests by combining an arrival source, a scenario mixture,
/// per-scenario length profiles, and a tenant-class mixture — or by
/// replaying a recorded trace.
#[derive(Clone, Debug)]
pub struct RequestGenerator {
    source: RequestSource,
    scenario_weights: Vec<(Scenario, f64)>,
    /// Classes with positive traffic weight, in configured order. A single
    /// entry assigns without consuming RNG draws, so the default
    /// (interactive-only) stream is bit-identical to the pre-class one.
    class_weights: Vec<(RequestClass, f64)>,
    rng: rand::rngs::StdRng,
    next_id: u64,
}

impl RequestGenerator {
    /// Creates a sampled generator with the given scenario blend (weights
    /// are normalised internally) and a single interactive class.
    ///
    /// # Panics
    ///
    /// Panics if `scenario_weights` is empty or sums to zero — the
    /// panicking wrapper of [`RequestGenerator::try_new`].
    pub fn new(
        arrivals: ArrivalProcess,
        scenario_weights: Vec<(Scenario, f64)>,
        seed: u64,
    ) -> Self {
        Self::try_new(arrivals, scenario_weights, seed).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible constructor: reports an empty/zero-weight scenario blend as
    /// a typed [`WorkloadError`] instead of panicking.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::NoScenarioWeights`].
    pub fn try_new(
        arrivals: ArrivalProcess,
        scenario_weights: Vec<(Scenario, f64)>,
        seed: u64,
    ) -> Result<Self, WorkloadError> {
        let total: f64 = scenario_weights.iter().map(|(_, w)| w).sum();
        if scenario_weights.is_empty() || total <= 0.0 || total.is_nan() {
            return Err(WorkloadError::NoScenarioWeights);
        }
        Ok(RequestGenerator {
            source: RequestSource::Sampled(arrivals),
            scenario_weights,
            class_weights: vec![(RequestClass::Interactive, 1.0)],
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF_CAFE),
            next_id: 0,
        })
    }

    /// Builds the generator a [`WorkloadProfile`] describes: the sampled
    /// diurnal/phase source (seeded with `arrival_seed` / `sample_seed`,
    /// exactly like the legacy two-seed construction) or trace replay, with
    /// the profile's class mixture.
    ///
    /// This is the one shared constructor behind both the engine and the
    /// fleet, so their arrival semantics cannot drift; with the default
    /// profile it reproduces the legacy stream bit-for-bit.
    ///
    /// # Errors
    ///
    /// Any [`WorkloadError`] from profile validation or the scenario blend.
    pub fn try_from_profile(
        profile: &WorkloadProfile,
        request_rate: f64,
        scenario_weights: Vec<(Scenario, f64)>,
        arrival_seed: u64,
        sample_seed: u64,
    ) -> Result<Self, WorkloadError> {
        profile.validate()?;
        let mut gen = match &profile.arrivals {
            ArrivalSpec::Trace(rows) => {
                let total: f64 = scenario_weights.iter().map(|(_, w)| w).sum();
                if scenario_weights.is_empty() || total <= 0.0 || total.is_nan() {
                    return Err(WorkloadError::NoScenarioWeights);
                }
                RequestGenerator {
                    source: RequestSource::Replay {
                        rows: rows.clone(),
                        cursor: 0,
                    },
                    scenario_weights,
                    class_weights: Vec::new(), // classes ride in the rows
                    rng: rand::rngs::StdRng::seed_from_u64(sample_seed ^ 0xBEEF_CAFE),
                    next_id: 0,
                }
            }
            spec => {
                let arrivals = ArrivalProcess::try_from_spec(spec, request_rate, arrival_seed)?;
                Self::try_new(arrivals, scenario_weights, sample_seed)?
            }
        };
        if !matches!(profile.arrivals, ArrivalSpec::Trace(_)) {
            gen.class_weights = profile
                .classes
                .iter()
                .filter(|c| c.weight > 0.0)
                .map(|c| (c.class, c.weight))
                .collect();
            validate_classes(&profile.classes)?;
        }
        Ok(gen)
    }

    fn sample_scenario(&mut self) -> Scenario {
        let total: f64 = self.scenario_weights.iter().map(|(_, w)| w).sum();
        let mut x: f64 = self.rng.gen::<f64>() * total;
        for &(s, w) in &self.scenario_weights {
            if x < w {
                return s;
            }
            x -= w;
        }
        self.scenario_weights.last().expect("non-empty").0
    }

    /// Samples the tenant class. A single positive-weight class assigns
    /// directly **without consuming an RNG draw**, which keeps the default
    /// single-class stream bit-identical to the pre-class generator.
    fn sample_class(&mut self) -> RequestClass {
        match self.class_weights.len() {
            0 => RequestClass::Interactive,
            1 => self.class_weights[0].0,
            _ => {
                let total: f64 = self.class_weights.iter().map(|(_, w)| w).sum();
                let mut x: f64 = self.rng.gen::<f64>() * total;
                for &(c, w) in &self.class_weights {
                    if x < w {
                        return c;
                    }
                    x -= w;
                }
                self.class_weights.last().expect("non-empty").0
            }
        }
    }

    fn sample_lognormal(&mut self, median: f64, sigma: f64) -> u32 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (median * (sigma * z).exp()).round().max(1.0) as u32
    }

    /// Draws the next request, or `None` when a replayed trace is
    /// exhausted (sampled sources are endless). Ids are assigned
    /// sequentially in arrival order, starting at `r0`.
    pub fn next_request(&mut self) -> Option<Request> {
        match &mut self.source {
            RequestSource::Sampled(arrivals) => {
                let arrival = arrivals.next_arrival();
                let scenario = self.sample_scenario();
                let class = self.sample_class();
                let profile = LengthProfile::for_scenario(scenario);
                let id = RequestId(self.next_id);
                self.next_id += 1;
                Some(Request {
                    id,
                    scenario,
                    class,
                    input_len: self.sample_lognormal(profile.input_median, profile.sigma),
                    output_len: self.sample_lognormal(profile.output_median, profile.sigma),
                    arrival,
                })
            }
            RequestSource::Replay { rows, cursor } => {
                let row = rows.get(*cursor)?.clone();
                *cursor += 1;
                let id = RequestId(self.next_id);
                self.next_id += 1;
                Some(Request {
                    id,
                    scenario: row.scenario,
                    class: row.class,
                    input_len: row.input_len,
                    output_len: row.output_len,
                    arrival: row.arrival,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{ClassSpec, TraceRequest};

    #[test]
    fn arrivals_strictly_increase() {
        let mut p = ArrivalProcess::new(100.0, 0.5, 60.0, 1);
        let mut last = 0.0;
        for _ in 0..200 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn mean_rate_approximately_base() {
        let mut p = ArrivalProcess::new(50.0, 0.8, 10.0, 2);
        let mut count = 0;
        loop {
            if p.next_arrival() > 100.0 {
                break;
            }
            count += 1;
        }
        // 50 req/s over 100 s ≈ 5000 arrivals (diurnal term integrates out).
        assert!((count as f64 - 5000.0).abs() < 400.0, "{count}");
    }

    #[test]
    fn math_outputs_longer_than_privacy() {
        let arrivals = ArrivalProcess::new(10.0, 0.0, 60.0, 3);
        let mut g = RequestGenerator::new(
            arrivals,
            vec![(Scenario::Math, 1.0), (Scenario::Privacy, 1.0)],
            3,
        );
        let mut math_sum = 0.0;
        let mut math_n = 0.0;
        let mut privacy_sum = 0.0;
        let mut privacy_n = 0.0;
        for _ in 0..400 {
            let r = g.next_request().expect("sampled sources are endless");
            match r.scenario {
                Scenario::Math => {
                    math_sum += r.output_len as f64;
                    math_n += 1.0;
                }
                Scenario::Privacy => {
                    privacy_sum += r.output_len as f64;
                    privacy_n += 1.0;
                }
                _ => {}
            }
        }
        assert!(math_sum / math_n > 4.0 * (privacy_sum / privacy_n));
    }

    #[test]
    fn rate_oscillates() {
        let p = ArrivalProcess::new(100.0, 0.5, 100.0, 4);
        assert!(p.rate_at(25.0) > 140.0); // peak of sine
        assert!(p.rate_at(75.0) < 60.0); // trough
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn invalid_amplitude_rejected() {
        ArrivalProcess::new(1.0, 1.5, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn invalid_rate_rejected() {
        ArrivalProcess::new(0.0, 0.3, 600.0, 0);
    }

    #[test]
    #[should_panic(expected = "need positive scenario weights")]
    fn empty_scenario_weights_rejected() {
        RequestGenerator::new(ArrivalProcess::new(1.0, 0.0, 1.0, 0), vec![], 0);
    }

    #[test]
    fn try_new_reports_exact_variants() {
        assert_eq!(
            ArrivalProcess::try_new(-2.0, 0.3, 600.0, 0).unwrap_err(),
            WorkloadError::NonPositiveRate { value: -2.0 }
        );
        assert_eq!(
            ArrivalProcess::try_new(1.0, 0.3, 0.0, 0).unwrap_err(),
            WorkloadError::NonPositivePeriod { value: 0.0 }
        );
        assert_eq!(
            ArrivalProcess::try_new(1.0, 1.0, 600.0, 0).unwrap_err(),
            WorkloadError::AmplitudeOutOfRange { value: 1.0 }
        );
        assert_eq!(
            RequestGenerator::try_new(
                ArrivalProcess::new(1.0, 0.0, 1.0, 0),
                vec![(Scenario::Chat, 0.0)],
                0
            )
            .unwrap_err(),
            WorkloadError::NoScenarioWeights
        );
    }

    #[test]
    fn request_ids_are_sequential_in_arrival_order() {
        let arrivals = ArrivalProcess::new(10.0, 0.0, 60.0, 5);
        let mut g = RequestGenerator::new(arrivals, vec![(Scenario::Chat, 1.0)], 5);
        for expect in 0..20 {
            let r = g.next_request().unwrap();
            assert_eq!(r.id, RequestId(expect));
        }
        assert_eq!(RequestId(3).to_string(), "r3");
    }

    /// The default profile routed through the shared constructor produces
    /// exactly the stream the legacy two-seed construction produced — the
    /// contract that keeps every pre-profile golden byte-identical.
    #[test]
    fn default_profile_stream_matches_legacy_construction() {
        let weights = vec![(Scenario::Chat, 1.0), (Scenario::Math, 2.0)];
        let mut legacy = RequestGenerator::new(
            ArrivalProcess::new(500.0, 0.3, 600.0, 0xA11CE),
            weights.clone(),
            0xB0B,
        );
        let mut profiled = RequestGenerator::try_from_profile(
            &WorkloadProfile::default(),
            500.0,
            weights,
            0xA11CE,
            0xB0B,
        )
        .unwrap();
        for _ in 0..500 {
            let a = legacy.next_request().unwrap();
            let b = profiled.next_request().unwrap();
            assert_eq!(a, b);
            assert_eq!(a.class, RequestClass::Interactive);
        }
    }

    /// A two-class profile samples both classes at roughly the configured
    /// ratio, without perturbing arrivals relative to amplitude-0 sampling.
    #[test]
    fn two_class_profile_samples_the_mixture() {
        let profile = WorkloadProfile {
            arrivals: ArrivalSpec::Diurnal {
                amplitude: 0.0,
                period: 600.0,
            },
            classes: vec![
                ClassSpec::interactive().with_weight(3.0),
                ClassSpec::batch().with_weight(1.0),
            ],
        };
        let mut g =
            RequestGenerator::try_from_profile(&profile, 100.0, vec![(Scenario::Chat, 1.0)], 7, 7)
                .unwrap();
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[g.next_request().unwrap().class.index()] += 1;
        }
        let share = counts[0] as f64 / 2000.0;
        assert!((share - 0.75).abs() < 0.05, "interactive share {share}");
    }

    /// Phase schedules follow their piecewise rates: a 10×-burst phase
    /// collects roughly 10× the arrivals of the quiet phase.
    #[test]
    fn phase_schedule_concentrates_arrivals_in_bursts() {
        let phases = vec![
            Phase {
                duration: 1.0,
                rate_factor: 1.0,
            },
            Phase {
                duration: 1.0,
                rate_factor: 10.0,
            },
        ];
        let mut p = ArrivalProcess::try_with_phases(200.0, phases, 11).unwrap();
        assert_eq!(p.rate_at(0.5), 200.0);
        assert_eq!(p.rate_at(1.5), 2000.0);
        assert_eq!(p.rate_at(2.5), 200.0); // cycles
        let (mut quiet, mut burst) = (0u32, 0u32);
        loop {
            let t = p.next_arrival();
            if t > 10.0 {
                break;
            }
            if t.rem_euclid(2.0) < 1.0 {
                quiet += 1;
            } else {
                burst += 1;
            }
        }
        assert!(
            burst as f64 > 6.0 * quiet as f64,
            "burst {burst} vs quiet {quiet}"
        );
    }

    /// Trace replay returns the rows verbatim (plus sequential ids) and
    /// then `None` forever.
    #[test]
    fn trace_replay_is_verbatim_and_finite() {
        let rows = vec![
            TraceRequest {
                arrival: 0.25,
                scenario: Scenario::Coding,
                input_len: 100,
                output_len: 20,
                class: RequestClass::Batch,
            },
            TraceRequest {
                arrival: 0.5,
                scenario: Scenario::Chat,
                input_len: 32,
                output_len: 8,
                class: RequestClass::Interactive,
            },
        ];
        let profile = WorkloadProfile {
            arrivals: ArrivalSpec::Trace(rows.clone()),
            classes: vec![ClassSpec::interactive(), ClassSpec::batch()],
        };
        let mut g = RequestGenerator::try_from_profile(
            &profile,
            0.0, // the base rate is ignored for traces
            vec![(Scenario::Chat, 1.0)],
            1,
            2,
        )
        .unwrap();
        for (i, row) in rows.iter().enumerate() {
            let r = g.next_request().unwrap();
            assert_eq!(r.id, RequestId(i as u64));
            assert_eq!(r.arrival, row.arrival);
            assert_eq!(r.scenario, row.scenario);
            assert_eq!(r.class, row.class);
            assert_eq!(r.input_len, row.input_len);
            assert_eq!(r.output_len, row.output_len);
        }
        assert_eq!(g.next_request(), None);
        assert_eq!(g.next_request(), None);
    }
}
