//! Request generation: length profiles and arrival processes.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::scenario::Scenario;

/// Identity of one inference request, stable across its whole lifecycle
/// (arrival → admission → prefill → decode → completion).
///
/// Ids are opaque labels: the serving layer's batch composition is invariant
/// under relabeling (see the serving property tests), they exist so that
/// per-request token attribution and latency records can be joined.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct RequestId(pub u64);

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A single inference request.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Request {
    /// Stable request identity.
    pub id: RequestId,
    /// Scenario this request belongs to.
    pub scenario: Scenario,
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Output (generation) length in tokens.
    pub output_len: u32,
    /// Arrival time in seconds since the start of the trace.
    pub arrival: f64,
}

/// Log-normal-ish token length profile for one scenario.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LengthProfile {
    /// Median prompt length, tokens.
    pub input_median: f64,
    /// Median output length, tokens.
    pub output_median: f64,
    /// Log-space standard deviation.
    pub sigma: f64,
}

impl LengthProfile {
    /// The length profile for a scenario, qualitatively matching the
    /// benchmark suites the paper profiles: chat is short/medium, coding is
    /// long-in/medium-out, math is medium-in/long-out (chain-of-thought),
    /// privacy probes are short/short.
    pub fn for_scenario(scenario: Scenario) -> Self {
        match scenario {
            Scenario::Chat => LengthProfile {
                input_median: 512.0,
                output_median: 256.0,
                sigma: 0.6,
            },
            Scenario::Coding => LengthProfile {
                input_median: 2048.0,
                output_median: 512.0,
                sigma: 0.5,
            },
            Scenario::Math => LengthProfile {
                input_median: 768.0,
                output_median: 2048.0,
                sigma: 0.5,
            },
            Scenario::Privacy => LengthProfile {
                input_median: 384.0,
                output_median: 128.0,
                sigma: 0.4,
            },
        }
    }
}

/// Time-varying Poisson arrival process with an Azure-like diurnal cycle.
///
/// The instantaneous rate is `base_rate × (1 + amplitude·sin(2πt/period))`,
/// sampled by thinning. All draws are seeded.
#[derive(Clone, Debug)]
pub struct ArrivalProcess {
    base_rate: f64,
    amplitude: f64,
    period: f64,
    rng: rand::rngs::StdRng,
    now: f64,
}

impl ArrivalProcess {
    /// Creates a process with `base_rate` requests/second, diurnal
    /// `amplitude` in `[0, 1)`, and cycle `period` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `base_rate <= 0`, `period <= 0`, or `amplitude` is outside
    /// `[0, 1)`.
    pub fn new(base_rate: f64, amplitude: f64, period: f64, seed: u64) -> Self {
        assert!(base_rate > 0.0, "rate must be positive");
        assert!(period > 0.0, "period must be positive");
        assert!(
            (0.0..1.0).contains(&amplitude),
            "amplitude must be in [0,1)"
        );
        ArrivalProcess {
            base_rate,
            amplitude,
            period,
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            now: 0.0,
        }
    }

    /// Instantaneous arrival rate at time `t`.
    pub fn rate_at(&self, t: f64) -> f64 {
        self.base_rate
            * (1.0 + self.amplitude * (2.0 * std::f64::consts::PI * t / self.period).sin())
    }

    /// Draws the next arrival time (strictly increasing).
    pub fn next_arrival(&mut self) -> f64 {
        // Thinning against the rate ceiling.
        let ceiling = self.base_rate * (1.0 + self.amplitude);
        loop {
            let u: f64 = self.rng.gen::<f64>().max(1e-12);
            self.now += -u.ln() / ceiling;
            let accept: f64 = self.rng.gen();
            if accept < self.rate_at(self.now) / ceiling {
                return self.now;
            }
        }
    }
}

/// Generates requests by combining an arrival process, a scenario mixture,
/// and per-scenario length profiles.
#[derive(Clone, Debug)]
pub struct RequestGenerator {
    arrivals: ArrivalProcess,
    scenario_weights: Vec<(Scenario, f64)>,
    rng: rand::rngs::StdRng,
    next_id: u64,
}

impl RequestGenerator {
    /// Creates a generator with the given scenario blend (weights are
    /// normalised internally).
    ///
    /// # Panics
    ///
    /// Panics if `scenario_weights` is empty or sums to zero.
    pub fn new(
        arrivals: ArrivalProcess,
        scenario_weights: Vec<(Scenario, f64)>,
        seed: u64,
    ) -> Self {
        let total: f64 = scenario_weights.iter().map(|(_, w)| w).sum();
        assert!(
            !scenario_weights.is_empty() && total > 0.0,
            "need positive scenario weights"
        );
        RequestGenerator {
            arrivals,
            scenario_weights,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF_CAFE),
            next_id: 0,
        }
    }

    fn sample_scenario(&mut self) -> Scenario {
        let total: f64 = self.scenario_weights.iter().map(|(_, w)| w).sum();
        let mut x: f64 = self.rng.gen::<f64>() * total;
        for &(s, w) in &self.scenario_weights {
            if x < w {
                return s;
            }
            x -= w;
        }
        self.scenario_weights.last().expect("non-empty").0
    }

    fn sample_lognormal(&mut self, median: f64, sigma: f64) -> u32 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (median * (sigma * z).exp()).round().max(1.0) as u32
    }

    /// Draws the next request. Ids are assigned sequentially in arrival
    /// order, starting at `r0`.
    pub fn next_request(&mut self) -> Request {
        let arrival = self.arrivals.next_arrival();
        let scenario = self.sample_scenario();
        let profile = LengthProfile::for_scenario(scenario);
        let id = RequestId(self.next_id);
        self.next_id += 1;
        Request {
            id,
            scenario,
            input_len: self.sample_lognormal(profile.input_median, profile.sigma),
            output_len: self.sample_lognormal(profile.output_median, profile.sigma),
            arrival,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_strictly_increase() {
        let mut p = ArrivalProcess::new(100.0, 0.5, 60.0, 1);
        let mut last = 0.0;
        for _ in 0..200 {
            let t = p.next_arrival();
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn mean_rate_approximately_base() {
        let mut p = ArrivalProcess::new(50.0, 0.8, 10.0, 2);
        let mut count = 0;
        loop {
            if p.next_arrival() > 100.0 {
                break;
            }
            count += 1;
        }
        // 50 req/s over 100 s ≈ 5000 arrivals (diurnal term integrates out).
        assert!((count as f64 - 5000.0).abs() < 400.0, "{count}");
    }

    #[test]
    fn math_outputs_longer_than_privacy() {
        let arrivals = ArrivalProcess::new(10.0, 0.0, 60.0, 3);
        let mut g = RequestGenerator::new(
            arrivals,
            vec![(Scenario::Math, 1.0), (Scenario::Privacy, 1.0)],
            3,
        );
        let mut math_sum = 0.0;
        let mut math_n = 0.0;
        let mut privacy_sum = 0.0;
        let mut privacy_n = 0.0;
        for _ in 0..400 {
            let r = g.next_request();
            match r.scenario {
                Scenario::Math => {
                    math_sum += r.output_len as f64;
                    math_n += 1.0;
                }
                Scenario::Privacy => {
                    privacy_sum += r.output_len as f64;
                    privacy_n += 1.0;
                }
                _ => {}
            }
        }
        assert!(math_sum / math_n > 4.0 * (privacy_sum / privacy_n));
    }

    #[test]
    fn rate_oscillates() {
        let p = ArrivalProcess::new(100.0, 0.5, 100.0, 4);
        assert!(p.rate_at(25.0) > 140.0); // peak of sine
        assert!(p.rate_at(75.0) < 60.0); // trough
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn invalid_amplitude_rejected() {
        ArrivalProcess::new(1.0, 1.5, 1.0, 0);
    }

    #[test]
    fn request_ids_are_sequential_in_arrival_order() {
        let arrivals = ArrivalProcess::new(10.0, 0.0, 60.0, 5);
        let mut g = RequestGenerator::new(arrivals, vec![(Scenario::Chat, 1.0)], 5);
        for expect in 0..20 {
            let r = g.next_request();
            assert_eq!(r.id, RequestId(expect));
        }
        assert_eq!(RequestId(3).to_string(), "r3");
    }
}
