//! Feedback-driven and speculative routing policies.
//!
//! Snapshot policies score replicas on queue state observed *now*; the
//! policies here close the loop on what actually happened:
//!
//! * [`EwmaLatencyPolicy`] (`"ewma-ttft"`) — per-replica EWMA of observed
//!   TTFT; route to the historically fastest replica.
//! * [`LeastExpectedTtftPolicy`] (`"least-expected-ttft"`) — combine the
//!   TTFT EWMA with a per-token service estimate (TPOT EWMA) scaled by the
//!   replica's current load, so a fast-but-backlogged replica stops
//!   looking attractive.
//! * [`SpeculativePolicy`] (`"speculative:k=N"`) — multicast each request
//!   to the `k` least-loaded replicas; the fleet keeps whichever copy
//!   produces a token first and cancels the rest.
//!
//! Feedback arrives through [`RoutePolicy::observe`] in a deterministic
//! order (replica order at each round-driven synchronization point, causal
//! event order under the event-driven drive), so every policy here remains
//! reproducible byte-for-byte at a fixed seed. Replicas with no
//! observations yet estimate zero latency — new (or newly scaled-up)
//! replicas are explored first, lowest index first.

use crate::requests::Request;
use crate::serving::RequestRecord;

use super::policy::{Outcome, RouteCtx, RoutePolicy};

/// Latency observed on one completed request, fed back to the policy that
/// routed it.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct LatencyFeedback {
    /// Time-to-first-token (seconds from arrival).
    pub ttft: f64,
    /// Mean time per output token after the first, when the request
    /// decoded more than one token.
    pub tpot: Option<f64>,
}

impl LatencyFeedback {
    /// Extracts the feedback signals from a completion record.
    pub fn from_record(record: &RequestRecord) -> Self {
        LatencyFeedback {
            ttft: record.ttft(),
            tpot: record.tpot(),
        }
    }
}

/// Smoothing factor shared by the feedback policies: high enough to track
/// bursts, low enough not to thrash on one outlier.
const EWMA_ALPHA: f64 = 0.2;

fn ewma_update(cell: &mut Option<f64>, sample: f64) {
    *cell = Some(match *cell {
        Some(prev) => EWMA_ALPHA * sample + (1.0 - EWMA_ALPHA) * prev,
        None => sample,
    });
}

/// Route to the replica with the lowest EWMA of observed TTFT.
#[derive(Clone, Debug)]
pub struct EwmaLatencyPolicy {
    ttft: Vec<Option<f64>>,
}

impl EwmaLatencyPolicy {
    /// A policy over `replicas` replicas, all unobserved.
    pub fn new(replicas: usize) -> Self {
        EwmaLatencyPolicy {
            ttft: vec![None; replicas],
        }
    }
}

impl RoutePolicy for EwmaLatencyPolicy {
    fn name(&self) -> String {
        "ewma-ttft".into()
    }

    fn route(&mut self, _request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
        // Unobserved replicas estimate zero (explore-first); ties break on
        // current load, then KV, then the lowest index.
        let choice = ctx
            .argmin_by(|i, s| {
                (
                    self.ttft[i].unwrap_or(0.0),
                    s.total_load() as u64,
                    s.kv_tokens_in_use,
                )
            })
            .expect("an eligible replica exists");
        Outcome::Unicast(choice)
    }

    fn observe(&mut self, replica: usize, feedback: &LatencyFeedback) {
        ewma_update(&mut self.ttft[replica], feedback.ttft);
    }

    fn wants_feedback(&self) -> bool {
        true
    }

    fn on_grow(&mut self, replicas: usize) {
        self.ttft.resize(replicas, None);
    }

    fn clone_box(&self) -> Box<dyn RoutePolicy> {
        Box::new(self.clone())
    }
}

/// Route to the replica with the lowest *expected* TTFT: the TTFT EWMA
/// plus a queueing penalty of `current load × TPOT EWMA` (each in-flight
/// request delays the newcomer by roughly one token-service interval per
/// scheduling pass).
#[derive(Clone, Debug)]
pub struct LeastExpectedTtftPolicy {
    ttft: Vec<Option<f64>>,
    tpot: Vec<Option<f64>>,
}

impl LeastExpectedTtftPolicy {
    /// A policy over `replicas` replicas, all unobserved.
    pub fn new(replicas: usize) -> Self {
        LeastExpectedTtftPolicy {
            ttft: vec![None; replicas],
            tpot: vec![None; replicas],
        }
    }
}

impl RoutePolicy for LeastExpectedTtftPolicy {
    fn name(&self) -> String {
        "least-expected-ttft".into()
    }

    fn route(&mut self, _request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
        let choice = ctx
            .argmin_by(|i, s| {
                let expected = self.ttft[i].unwrap_or(0.0)
                    + s.total_load() as f64 * self.tpot[i].unwrap_or(0.0);
                (expected, s.total_load() as u64, s.kv_tokens_in_use)
            })
            .expect("an eligible replica exists");
        Outcome::Unicast(choice)
    }

    fn observe(&mut self, replica: usize, feedback: &LatencyFeedback) {
        ewma_update(&mut self.ttft[replica], feedback.ttft);
        if let Some(tpot) = feedback.tpot {
            ewma_update(&mut self.tpot[replica], tpot);
        }
    }

    fn wants_feedback(&self) -> bool {
        true
    }

    fn on_grow(&mut self, replicas: usize) {
        self.ttft.resize(replicas, None);
        self.tpot.resize(replicas, None);
    }

    fn clone_box(&self) -> Box<dyn RoutePolicy> {
        Box::new(self.clone())
    }
}

/// Multicast each request to the `k` least-loaded eligible replicas.
#[derive(Clone, Debug)]
pub struct SpeculativePolicy {
    k: usize,
}

impl SpeculativePolicy {
    /// A policy dispatching `k` speculative copies per request.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "speculative dispatch needs at least one copy");
        SpeculativePolicy { k }
    }

    /// Copies dispatched per request.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl RoutePolicy for SpeculativePolicy {
    fn name(&self) -> String {
        format!("speculative:k={}", self.k)
    }

    fn route(&mut self, _request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
        // The k best replicas by the least-queue-depth key, primary first;
        // fewer when the eligible set is smaller than k.
        let mut elig = ctx.eligible_indices();
        elig.sort_by_key(|&i| {
            (
                ctx.snapshots[i].total_load(),
                ctx.snapshots[i].kv_tokens_in_use,
                i,
            )
        });
        elig.truncate(self.k);
        if elig.len() == 1 {
            Outcome::Unicast(elig[0])
        } else {
            Outcome::Multicast(elig)
        }
    }

    fn clone_box(&self) -> Box<dyn RoutePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::RequestClass;
    use crate::requests::RequestId;
    use crate::router::ReplicaSnapshot;
    use crate::scenario::Scenario;
    use crate::scheduler::SchedulingMode;
    use rand::SeedableRng;

    fn req(id: u64) -> Request {
        Request {
            id: RequestId(id),
            scenario: Scenario::Chat,
            class: RequestClass::Interactive,
            input_len: 8,
            output_len: 8,
            arrival: id as f64,
        }
    }

    fn snap(queue: usize, active: usize, kv: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            queue_depth: queue,
            active,
            kv_tokens_in_use: kv,
            kv_budget_tokens: 1_000,
            mode: SchedulingMode::Hybrid,
        }
    }

    fn route(policy: &mut dyn RoutePolicy, snapshots: &[ReplicaSnapshot]) -> Outcome {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut ctx = RouteCtx {
            snapshots,
            eligible: None,
            rng: &mut rng,
        };
        policy.route(&req(0), &mut ctx)
    }

    #[test]
    fn ewma_learns_the_slow_replica() {
        let snaps = vec![snap(0, 0, 0); 2];
        let mut p = EwmaLatencyPolicy::new(2);
        // Unobserved: explore the lowest index first.
        assert_eq!(route(&mut p, &snaps), Outcome::Unicast(0));
        // Replica 0 turns out slow, replica 1 fast.
        p.observe(
            0,
            &LatencyFeedback {
                ttft: 2.0,
                tpot: None,
            },
        );
        p.observe(
            1,
            &LatencyFeedback {
                ttft: 0.1,
                tpot: None,
            },
        );
        assert_eq!(route(&mut p, &snaps), Outcome::Unicast(1));
        // A burst of fast completions on 0 pulls its EWMA back down.
        for _ in 0..40 {
            p.observe(
                0,
                &LatencyFeedback {
                    ttft: 0.01,
                    tpot: None,
                },
            );
        }
        assert_eq!(route(&mut p, &snaps), Outcome::Unicast(0));
    }

    #[test]
    fn expected_ttft_charges_for_queue_depth() {
        let mut p = LeastExpectedTtftPolicy::new(2);
        for replica in 0..2 {
            p.observe(
                replica,
                &LatencyFeedback {
                    ttft: 0.1,
                    tpot: Some(0.05),
                },
            );
        }
        // Equal history: the backlogged replica is charged load × TPOT.
        let snaps = vec![snap(20, 20, 0), snap(0, 1, 0)];
        assert_eq!(route(&mut p, &snaps), Outcome::Unicast(1));
    }

    #[test]
    fn feedback_state_extends_on_grow() {
        let mut p = EwmaLatencyPolicy::new(1);
        p.observe(
            0,
            &LatencyFeedback {
                ttft: 5.0,
                tpot: None,
            },
        );
        p.on_grow(3);
        // The new, unobserved replicas look fastest and are explored first.
        let snaps = vec![snap(0, 0, 0); 3];
        assert_eq!(route(&mut p, &snaps), Outcome::Unicast(1));
    }

    #[test]
    fn speculative_multicasts_the_k_least_loaded() {
        let mut p = SpeculativePolicy::new(2);
        let snaps = vec![snap(5, 5, 0), snap(0, 1, 0), snap(0, 0, 0), snap(2, 2, 0)];
        assert_eq!(route(&mut p, &snaps), Outcome::Multicast(vec![2, 1]));
        // k larger than the fleet: every replica gets a copy.
        let mut wide = SpeculativePolicy::new(16);
        assert_eq!(
            route(&mut wide, &snaps),
            Outcome::Multicast(vec![2, 1, 3, 0])
        );
        // k = 1 degenerates to unicast least-queue-depth.
        let mut one = SpeculativePolicy::new(1);
        assert_eq!(route(&mut one, &snaps), Outcome::Unicast(2));
    }
}
