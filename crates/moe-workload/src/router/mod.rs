//! Front-end routing subsystem for multi-replica (fleet) serving.
//!
//! A fleet deployment puts N independent serving replicas — each a full
//! wafer (or multi-wafer pod) running its own continuous-batching engine —
//! behind one front end that owns the global arrival stream. The [`Router`]
//! decides, per request, what happens to it: which replica's serving queue
//! admits it, whether several replicas race speculative copies, or whether
//! the request is shed at the front end.
//!
//! The subsystem is layered:
//!
//! * [`RoutePolicy`] (in [`policy`]) is the open trait: one request plus a
//!   [`RouteCtx`] in, an [`Outcome`] (`Unicast` / `Multicast` / `Discard` /
//!   `Default`) out. Custom disciplines plug in via
//!   [`Router::with_policy`].
//! * [`RouterPolicy`] is the closed, serializable descriptor used by specs
//!   and sweeps. The four snapshot policies ([`RouterPolicy::RoundRobin`],
//!   [`RouterPolicy::LeastQueueDepth`], [`RouterPolicy::LeastKvPressure`],
//!   [`RouterPolicy::PowerOfTwoChoices`]) are canonical [`RoutePolicy`]
//!   impls whose dispatch — including the power-of-two sampling stream —
//!   is byte-identical to the original closed enum. The feedback policies
//!   ([`RouterPolicy::EwmaLatency`], [`RouterPolicy::LeastExpectedTtft`])
//!   and speculative dispatch ([`RouterPolicy::Speculative`]) build on the
//!   trait (see [`feedback`]).
//! * [`Router`] owns the policy, the seeded sampling stream, per-replica
//!   routed counts, and per-class discard counts, and normalizes outcomes
//!   into [`Decision`]s for the fleet.
//!
//! Routing is deterministic: every policy is a pure function of the request
//! sequence, the observed [`ReplicaSnapshot`]s, the feedback it received,
//! and (for sampling policies) the seed. Ties always break toward the
//! lowest replica index, so a fleet run is reproducible byte-for-byte
//! regardless of how replica stepping is scheduled between synchronization
//! points.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::requests::Request;
use crate::scheduler::SchedulingMode;
use crate::serving::RequestRecord;

pub mod feedback;
pub mod policy;

pub use feedback::{
    EwmaLatencyPolicy, LatencyFeedback, LeastExpectedTtftPolicy, SpeculativePolicy,
};
pub use policy::{
    argmin_by_filtered, LeastKvPressurePolicy, LeastQueueDepthPolicy, Outcome, PowerOfTwoPolicy,
    RoundRobinPolicy, RouteCtx, RoutePolicy,
};

/// Max/mean ratio of per-replica load counts — the fleet's balance metric
/// (1.0 when perfectly balanced or when nothing has been counted yet).
/// Shared by [`Router::routing_imbalance`] and the fleet summary's
/// completion-imbalance so the two ratios can never drift apart in
/// definition.
pub fn max_mean_imbalance(counts: impl IntoIterator<Item = f64>) -> f64 {
    let counts: Vec<f64> = counts.into_iter().collect();
    let total: f64 = counts.iter().sum();
    if counts.is_empty() || total <= 0.0 {
        return 1.0;
    }
    let mean = total / counts.len() as f64;
    counts.into_iter().fold(0.0, f64::max) / mean
}

/// One replica's load as observed by the router at a synchronization point.
///
/// The engine layer produces these from each replica's serving queue
/// (`InferenceEngine::replica_snapshot` in `moentwine-core`).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// Requests arrived but not yet admitted.
    pub queue_depth: usize,
    /// Requests admitted and not yet complete.
    pub active: usize,
    /// KV tokens currently reserved by resident requests.
    pub kv_tokens_in_use: u64,
    /// The replica's total KV-token capacity budget.
    pub kv_budget_tokens: u64,
    /// The replica's serving discipline (determines a request's KV
    /// footprint: the prefill tier only ever holds the prompt's KV).
    pub mode: SchedulingMode,
}

impl ReplicaSnapshot {
    /// KV tokens `request` would reserve on this replica at admission —
    /// [`SchedulingMode::kv_need`], the same rule the serving queue
    /// reserves by.
    pub fn kv_need(&self, request: &Request) -> u64 {
        self.mode.kv_need(request)
    }

    /// Whether this replica would have to *permanently reject* `request`:
    /// its KV footprint exceeds the whole budget, so it could never be
    /// admitted even on an empty replica.
    pub fn must_reject(&self, request: &Request) -> bool {
        self.kv_need(request) > self.kv_budget_tokens
    }

    /// Requests in flight (waiting + resident) — the queue-join cost.
    pub fn total_load(&self) -> usize {
        self.queue_depth + self.active
    }

    /// KV occupancy after admitting `request`, as a fraction of the budget
    /// (may exceed 1 when the request cannot currently fit).
    pub fn kv_pressure_with(&self, request: &Request) -> f64 {
        if self.kv_budget_tokens == 0 {
            return f64::INFINITY;
        }
        (self.kv_tokens_in_use as f64 + self.kv_need(request) as f64) / self.kv_budget_tokens as f64
    }
}

/// Serializable dispatch-discipline descriptor of a [`Router`]. See the
/// [module docs](self).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cyclic assignment.
    RoundRobin,
    /// Join the replica with the fewest waiting + resident requests.
    LeastQueueDepth,
    /// Join the replica with the lowest post-admission KV occupancy,
    /// excluding replicas that must permanently reject the request when an
    /// admitting replica exists.
    LeastKvPressure,
    /// Seeded power-of-two-choices: sample two distinct replicas, keep the
    /// less loaded.
    PowerOfTwoChoices,
    /// Feedback: join the replica with the lowest EWMA of observed TTFT.
    EwmaLatency,
    /// Feedback: join the replica with the lowest expected TTFT (TTFT EWMA
    /// plus load × TPOT EWMA queueing penalty).
    LeastExpectedTtft,
    /// Speculative dispatch: multicast each request to the `k` least-loaded
    /// replicas; the first copy to produce a token wins, the rest are
    /// cancelled.
    Speculative {
        /// Copies dispatched per request (≥ 1).
        k: usize,
    },
}

impl RouterPolicy {
    /// Stable lowercase name (`"round-robin"`, `"least-queue-depth"`,
    /// `"least-kv-pressure"`, `"power-of-two"`, `"ewma-ttft"`,
    /// `"least-expected-ttft"`, `"speculative:k=N"`), matching the
    /// `FromStr` spelling and the manifest/golden-file vocabulary.
    pub fn name(self) -> String {
        match self {
            RouterPolicy::RoundRobin => "round-robin".into(),
            RouterPolicy::LeastQueueDepth => "least-queue-depth".into(),
            RouterPolicy::LeastKvPressure => "least-kv-pressure".into(),
            RouterPolicy::PowerOfTwoChoices => "power-of-two".into(),
            RouterPolicy::EwmaLatency => "ewma-ttft".into(),
            RouterPolicy::LeastExpectedTtft => "least-expected-ttft".into(),
            RouterPolicy::Speculative { k } => format!("speculative:k={k}"),
        }
    }

    /// The four snapshot policies, for sweep-style experiments. Feedback
    /// and speculative policies are deliberately excluded so pre-existing
    /// sweep manifests stay byte-identical; see [`RouterPolicy::extended`].
    pub fn all() -> [RouterPolicy; 4] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastQueueDepth,
            RouterPolicy::LeastKvPressure,
            RouterPolicy::PowerOfTwoChoices,
        ]
    }

    /// Every canonical policy, snapshot and beyond (speculative at its
    /// default fan-out) — the grid the `router_compare` figure sweeps.
    pub fn extended() -> Vec<RouterPolicy> {
        let mut policies: Vec<RouterPolicy> = RouterPolicy::all().into();
        policies.extend([
            RouterPolicy::EwmaLatency,
            RouterPolicy::LeastExpectedTtft,
            RouterPolicy::Speculative { k: 2 },
        ]);
        policies
    }

    /// Builds the canonical [`RoutePolicy`] implementation for a fleet of
    /// `replicas` replicas.
    pub fn build(self, replicas: usize) -> Box<dyn RoutePolicy> {
        match self {
            RouterPolicy::RoundRobin => Box::new(RoundRobinPolicy::default()),
            RouterPolicy::LeastQueueDepth => Box::new(LeastQueueDepthPolicy),
            RouterPolicy::LeastKvPressure => Box::new(LeastKvPressurePolicy),
            RouterPolicy::PowerOfTwoChoices => Box::new(PowerOfTwoPolicy),
            RouterPolicy::EwmaLatency => Box::new(EwmaLatencyPolicy::new(replicas)),
            RouterPolicy::LeastExpectedTtft => Box::new(LeastExpectedTtftPolicy::new(replicas)),
            RouterPolicy::Speculative { k } => Box::new(SpeculativePolicy::new(k)),
        }
    }
}

impl std::str::FromStr for RouterPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(spec) = s.strip_prefix("speculative") {
            // "speculative" (default fan-out) or "speculative:k=N".
            let k = match spec {
                "" => 2,
                _ => spec
                    .strip_prefix(":k=")
                    .and_then(|k| k.parse::<usize>().ok())
                    .filter(|&k| k >= 1)
                    .ok_or_else(|| {
                        format!(
                            "unknown router policy {s:?} (speculative dispatch is spelled \
                             \"speculative:k=N\" with N >= 1)"
                        )
                    })?,
            };
            return Ok(RouterPolicy::Speculative { k });
        }
        match s {
            "round-robin" | "rr" => Ok(RouterPolicy::RoundRobin),
            "least-queue-depth" | "least-queue" | "jsq" => Ok(RouterPolicy::LeastQueueDepth),
            "least-kv-pressure" | "least-kv" => Ok(RouterPolicy::LeastKvPressure),
            "power-of-two" | "p2c" => Ok(RouterPolicy::PowerOfTwoChoices),
            "ewma-ttft" | "ewma" => Ok(RouterPolicy::EwmaLatency),
            "least-expected-ttft" | "expected-ttft" => Ok(RouterPolicy::LeastExpectedTtft),
            other => Err(format!(
                "unknown router policy {other:?} (expected \"round-robin\", \
                 \"least-queue-depth\", \"least-kv-pressure\", \"power-of-two\", \
                 \"ewma-ttft\", \"least-expected-ttft\", or \"speculative:k=N\")"
            )),
        }
    }
}

impl std::fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// A routing decision after the router normalized the policy's
/// [`Outcome`]: the accounting (routed counts, per-class discards) has
/// already been applied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Decision {
    /// Dispatch to this replica.
    Unicast(usize),
    /// Dispatch a speculative copy to each listed replica (≥ 2 targets,
    /// primary first); the fleet cancels the losers at first token.
    Speculative(Vec<usize>),
    /// Shed at the front end: the request reaches no replica.
    Shed,
}

/// SplitMix64 stream splitting, mirroring the fleet's seed derivation, so
/// a post-scale-up sampling stream is a pure function of `(seed, first new
/// replica index)`.
fn split_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Domain separator for the router's sampling stream (kept from the
/// pre-trait router so existing power-of-two traces stay byte-identical).
const SAMPLING_SALT: u64 = 0x00F1_EE7B_A11A_D000;

/// The front-end dispatcher. See the [module docs](self).
#[derive(Debug)]
pub struct Router {
    /// The serializable descriptor, when built from one ([`Router::new`]);
    /// `None` for custom [`Router::with_policy`] routers.
    descriptor: Option<RouterPolicy>,
    policy: Box<dyn RoutePolicy>,
    replicas: usize,
    /// The seed [`Router::new`] was given, kept for deterministic stream
    /// re-derivation on scale-up.
    seed: u64,
    /// Seeded sampling stream handed to the policy through [`RouteCtx`].
    /// Only sampling policies (power-of-two) draw from it, so the others
    /// stay RNG-free and the stream is a pure function of `(seed, draw
    /// count)` — and, after a scale-up, of `(seed, first new replica
    /// index, post-growth draw count)`.
    rng: rand::rngs::StdRng,
    /// Requests routed to each replica so far (speculative copies each
    /// count once on their replica).
    routed: Vec<u64>,
    /// Requests shed by [`Outcome::Discard`], per request class — the
    /// front-end counterpart of the queues' deadline sheds.
    discarded: [u64; 2],
}

impl Clone for Router {
    fn clone(&self) -> Self {
        Router {
            descriptor: self.descriptor,
            policy: self.policy.clone_box(),
            replicas: self.replicas,
            seed: self.seed,
            rng: self.rng.clone(),
            routed: self.routed.clone(),
            discarded: self.discarded,
        }
    }
}

impl Router {
    /// Creates a router over `replicas` replicas running the canonical
    /// implementation of `policy`. `seed` feeds only the sampling stream
    /// ([`RouterPolicy::PowerOfTwoChoices`] draws from it).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(policy: RouterPolicy, replicas: usize, seed: u64) -> Self {
        let built = policy.build(replicas);
        let mut router = Self::with_policy(built, replicas, seed);
        router.descriptor = Some(policy);
        router
    }

    /// Creates a router running a custom [`RoutePolicy`] implementation —
    /// the open extension point. The router still owns the sampling
    /// stream, the routed counts, and the discard accounting.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn with_policy(policy: Box<dyn RoutePolicy>, replicas: usize, seed: u64) -> Self {
        assert!(replicas > 0, "need at least one replica");
        Router {
            descriptor: None,
            policy,
            replicas,
            seed,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ SAMPLING_SALT),
            routed: vec![0; replicas],
            discarded: [0; 2],
        }
    }

    /// The dispatch-policy descriptor.
    ///
    /// # Panics
    ///
    /// Panics for routers built from a custom [`RoutePolicy`] (use
    /// [`Router::policy_name`] there).
    pub fn policy(&self) -> RouterPolicy {
        self.descriptor
            .expect("router was built from a custom RoutePolicy; use policy_name()")
    }

    /// The policy's stable name (defined for every router, including
    /// custom-policy ones).
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Number of replicas routed over.
    pub fn num_replicas(&self) -> usize {
        self.replicas
    }

    /// Requests routed to each replica so far.
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// Requests shed by [`Outcome::Discard`], indexed by
    /// [`RequestClass::index`](crate::profile::RequestClass::index).
    pub fn discarded(&self) -> [u64; 2] {
        self.discarded
    }

    /// Whether the policy consumes completion feedback — fleets skip the
    /// per-round record harvest entirely when it does not, keeping the
    /// snapshot-policy drive byte-identical to the pre-feedback router.
    pub fn wants_feedback(&self) -> bool {
        self.policy.wants_feedback()
    }

    /// Feeds one completed request back to the policy. A no-op unless
    /// [`Router::wants_feedback`]; callers must deliver records in a
    /// deterministic order (the fleet: replica order at each round-driven
    /// synchronization point, causal order under the event drive).
    pub fn observe_completion(&mut self, replica: usize, record: &RequestRecord) {
        if self.policy.wants_feedback() {
            self.policy
                .observe(replica, &LatencyFeedback::from_record(record));
        }
    }

    /// Max/mean ratio of per-replica routed-request counts (1.0 when
    /// perfectly balanced or nothing routed yet).
    pub fn routing_imbalance(&self) -> f64 {
        max_mean_imbalance(self.routed.iter().map(|&r| r as f64))
    }

    /// Extends the fleet by `additional` replicas (scale-up): the new
    /// replicas join the routable range with zero routed counts, and the
    /// policy's per-replica state extends through [`RoutePolicy::on_grow`].
    /// The round-robin cursor survives growth.
    ///
    /// The sampling stream is *re-derived* from `(seed, index of the first
    /// new replica)`: post-scale-up sampling decisions are a pure function
    /// of the post-growth draw count, insensitive to how much traffic
    /// happened to precede the scale-up event. (Decisions already made are
    /// untouched — growth never rewrites history.)
    pub fn grow(&mut self, additional: usize) {
        if additional == 0 {
            return;
        }
        let first_new = self.replicas;
        self.replicas += additional;
        self.routed.resize(self.replicas, 0);
        self.rng = rand::rngs::StdRng::seed_from_u64(split_seed(
            self.seed ^ SAMPLING_SALT,
            first_new as u64,
        ));
        self.policy.on_grow(self.replicas);
    }

    /// Picks the replica `request` is dispatched to, given one snapshot per
    /// replica (in replica order), and records the assignment. Multi-target
    /// and discard outcomes are resolved to a single replica (primary copy
    /// / fallback) — this entry point never drops a request, which the
    /// fleet's crash/drain re-route path relies on; use
    /// [`Router::route_decision`] for full outcome semantics.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots.len()` differs from the configured replica
    /// count.
    pub fn route(&mut self, request: &Request, snapshots: &[ReplicaSnapshot]) -> usize {
        self.resolve_unicast(request, snapshots, None)
    }

    /// Like [`Router::route`], restricted to replicas with `eligible[i]`
    /// set — fleet membership under elasticity events, where draining,
    /// failed, and retired replicas must never be routed to. With every
    /// replica eligible this is byte-identical to [`Router::route`]
    /// (identical power-of-two RNG stream included).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the replica count or no
    /// replica is eligible.
    pub fn route_among(
        &mut self,
        request: &Request,
        snapshots: &[ReplicaSnapshot],
        eligible: &[bool],
    ) -> usize {
        self.resolve_unicast(request, snapshots, Some(eligible))
    }

    /// Routes with full [`Outcome`] semantics: unicast and speculative
    /// multicast dispatches are accounted per target replica, discards per
    /// request class. The fleet's arrival path drives this entry point.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches, an empty eligible set, or a policy
    /// outcome that names no eligible replica.
    pub fn route_decision(
        &mut self,
        request: &Request,
        snapshots: &[ReplicaSnapshot],
        eligible: &[bool],
    ) -> Decision {
        match self.decide(request, snapshots, Some(eligible)) {
            Outcome::Unicast(i) => {
                self.routed[i] += 1;
                Decision::Unicast(i)
            }
            Outcome::Multicast(targets) => {
                for &i in &targets {
                    self.routed[i] += 1;
                }
                if targets.len() == 1 {
                    Decision::Unicast(targets[0])
                } else {
                    Decision::Speculative(targets)
                }
            }
            Outcome::Default => {
                let i = self.fallback(snapshots, Some(eligible));
                self.routed[i] += 1;
                Decision::Unicast(i)
            }
            Outcome::Discard => {
                self.discarded[request.class.index()] += 1;
                Decision::Shed
            }
        }
    }

    /// Validates inputs, runs the policy, and normalizes its outcome:
    /// multicast target lists are deduplicated (first occurrence wins) and
    /// restricted to eligible replicas.
    fn decide(
        &mut self,
        request: &Request,
        snapshots: &[ReplicaSnapshot],
        eligible: Option<&[bool]>,
    ) -> Outcome {
        assert_eq!(
            snapshots.len(),
            self.replicas,
            "snapshot count must match replica count"
        );
        if let Some(mask) = eligible {
            assert_eq!(
                mask.len(),
                self.replicas,
                "eligibility mask must match replica count"
            );
            assert!(mask.iter().any(|&e| e), "no eligible replica to route to");
        }
        let mut ctx = RouteCtx {
            snapshots,
            eligible,
            rng: &mut self.rng,
        };
        let outcome = self.policy.route(request, &mut ctx);
        let ok = |i: usize| i < self.replicas && eligible.is_none_or(|mask| mask[i]);
        match outcome {
            Outcome::Unicast(i) => {
                assert!(ok(i), "policy routed to ineligible replica {i}");
                Outcome::Unicast(i)
            }
            Outcome::Multicast(targets) => {
                let mut seen = vec![false; self.replicas];
                let targets: Vec<usize> = targets
                    .into_iter()
                    .filter(|&i| ok(i) && !std::mem::replace(&mut seen[i], true))
                    .collect();
                assert!(
                    !targets.is_empty(),
                    "multicast outcome names no eligible replica"
                );
                Outcome::Multicast(targets)
            }
            other => other,
        }
    }

    /// Resolves any outcome to one replica: the unicast target, a
    /// multicast's primary copy, or the fallback for `Default`/`Discard`.
    fn resolve_unicast(
        &mut self,
        request: &Request,
        snapshots: &[ReplicaSnapshot],
        eligible: Option<&[bool]>,
    ) -> usize {
        let choice = match self.decide(request, snapshots, eligible) {
            Outcome::Unicast(i) => i,
            Outcome::Multicast(targets) => targets[0],
            Outcome::Default | Outcome::Discard => self.fallback(snapshots, eligible),
        };
        self.routed[choice] += 1;
        choice
    }

    /// The fallback discipline behind [`Outcome::Default`]: deterministic
    /// least queue depth over the eligible replicas, ties to the lowest
    /// index.
    fn fallback(&self, snapshots: &[ReplicaSnapshot], eligible: Option<&[bool]>) -> usize {
        argmin_by_filtered(
            snapshots,
            |i, _| eligible.is_none_or(|mask| mask[i]),
            |_, s| (s.total_load() as u64, s.kv_tokens_in_use),
        )
        .expect("an eligible replica exists")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::RequestId;
    use crate::scenario::Scenario;

    fn req(id: u64, input: u32, output: u32) -> Request {
        Request {
            id: RequestId(id),
            scenario: Scenario::Chat,
            class: crate::profile::RequestClass::Interactive,
            input_len: input,
            output_len: output,
            arrival: id as f64,
        }
    }

    fn snap(queue: usize, active: usize, kv_used: u64, kv_budget: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            queue_depth: queue,
            active,
            kv_tokens_in_use: kv_used,
            kv_budget_tokens: kv_budget,
            mode: SchedulingMode::Hybrid,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let snaps = vec![snap(9, 9, 0, 100); 3];
        let mut r = Router::new(RouterPolicy::RoundRobin, 3, 0);
        let picks: Vec<usize> = (0..7).map(|i| r.route(&req(i, 1, 1), &snaps)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(r.routed(), &[3, 2, 2]);
    }

    #[test]
    fn least_queue_depth_joins_shortest() {
        let snaps = vec![snap(5, 2, 0, 100), snap(1, 3, 0, 100), snap(2, 2, 0, 100)];
        let mut r = Router::new(RouterPolicy::LeastQueueDepth, 3, 0);
        assert_eq!(r.route(&req(0, 1, 1), &snaps), 1);
        // Equal total load breaks on KV occupancy, then the lowest index.
        let kv_tied = vec![snap(2, 2, 7, 100), snap(1, 3, 4, 100), snap(3, 1, 9, 100)];
        assert_eq!(r.route(&req(1, 1, 1), &kv_tied), 1);
        let fully_tied = vec![snap(2, 2, 7, 100); 3];
        assert_eq!(r.route(&req(2, 1, 1), &fully_tied), 0);
    }

    #[test]
    fn least_kv_pressure_prefers_emptiest_cache() {
        let snaps = vec![
            snap(0, 0, 80, 100),
            snap(0, 0, 20, 100),
            snap(0, 0, 50, 100),
        ];
        let mut r = Router::new(RouterPolicy::LeastKvPressure, 3, 0);
        assert_eq!(r.route(&req(0, 5, 5), &snaps), 1);
    }

    /// The satellite property: `LeastKvPressure` never routes to a replica
    /// that must permanently reject the request while another can admit it.
    #[test]
    fn least_kv_pressure_avoids_must_reject_replicas() {
        // Replica 0 has the lowest occupancy but a tiny budget that can
        // never hold the request; replica 1 can.
        let snaps = vec![snap(0, 0, 0, 10), snap(0, 0, 900, 1000)];
        let mut r = Router::new(RouterPolicy::LeastKvPressure, 2, 0);
        let big = req(0, 50, 50); // needs 100 KV tokens
        assert!(snaps[0].must_reject(&big));
        assert!(!snaps[1].must_reject(&big));
        assert_eq!(r.route(&big, &snaps), 1);
        // A small request goes back to the emptier replica.
        assert_eq!(r.route(&req(1, 2, 2), &snaps), 0);
        // When every replica must reject, the choice degenerates to the
        // least-pressured one instead of panicking.
        let hopeless = vec![snap(0, 0, 5, 10), snap(0, 0, 2, 10)];
        assert_eq!(r.route(&big, &hopeless), 1);
    }

    #[test]
    fn prefill_only_mode_counts_prompt_footprint() {
        let s = ReplicaSnapshot {
            mode: SchedulingMode::PrefillOnly,
            ..snap(0, 0, 0, 64)
        };
        let r = req(0, 60, 1000);
        assert_eq!(s.kv_need(&r), 60);
        assert!(!s.must_reject(&r));
    }

    #[test]
    fn power_of_two_is_deterministic_at_fixed_seed() {
        let snaps: Vec<ReplicaSnapshot> = (0..8)
            .map(|i| snap(i as usize % 3, i as usize, 0, 100))
            .collect();
        let run = |seed: u64| {
            let mut r = Router::new(RouterPolicy::PowerOfTwoChoices, 8, seed);
            (0..100)
                .map(|i| r.route(&req(i, 1, 1), &snaps))
                .collect::<Vec<usize>>()
        };
        assert_eq!(run(7), run(7), "same seed must reproduce the sequence");
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn power_of_two_prefers_less_loaded_sample() {
        // One overloaded replica: with two choices it is only picked when
        // both samples land on it, which the load comparison forbids unless
        // it *is* the less loaded — so it should receive far under 1/2 of
        // the traffic that naive random assignment would give it.
        let snaps = vec![snap(50, 50, 0, 100), snap(0, 0, 0, 100)];
        let mut r = Router::new(RouterPolicy::PowerOfTwoChoices, 2, 3);
        for i in 0..200 {
            r.route(&req(i, 1, 1), &snaps);
        }
        assert_eq!(r.routed()[0], 0, "overloaded replica must never win a pair");
        assert_eq!(r.routed()[1], 200);
    }

    #[test]
    fn routing_imbalance_ratio() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 2, 0);
        assert_eq!(r.routing_imbalance(), 1.0);
        let snaps = vec![snap(0, 0, 0, 100); 2];
        for i in 0..4 {
            r.route(&req(i, 1, 1), &snaps);
        }
        assert_eq!(r.routing_imbalance(), 1.0);
        // Force skew through round-robin with an odd count: 3 vs 2.
        let _ = r.route(&req(5, 1, 1), &snaps);
        assert!((r.routing_imbalance() - 3.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn policy_names_parse_and_print() {
        for p in RouterPolicy::extended() {
            assert_eq!(p.name().parse::<RouterPolicy>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!("p2c".parse(), Ok(RouterPolicy::PowerOfTwoChoices));
        assert_eq!("jsq".parse(), Ok(RouterPolicy::LeastQueueDepth));
        assert_eq!("ewma".parse(), Ok(RouterPolicy::EwmaLatency));
        assert_eq!(
            "speculative".parse(),
            Ok(RouterPolicy::Speculative { k: 2 })
        );
        assert_eq!(
            "speculative:k=5".parse(),
            Ok(RouterPolicy::Speculative { k: 5 })
        );
        assert!("random".parse::<RouterPolicy>().is_err());
        assert!("speculative:k=0".parse::<RouterPolicy>().is_err());
        assert!("speculative:k=two".parse::<RouterPolicy>().is_err());
    }

    #[test]
    fn extended_grid_is_all_plus_feedback_and_speculative() {
        let extended = RouterPolicy::extended();
        assert_eq!(&extended[..4], &RouterPolicy::all());
        assert_eq!(extended.len(), 7);
    }

    #[test]
    #[should_panic(expected = "snapshot count")]
    fn snapshot_count_mismatch_panics() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 3, 0);
        r.route(&req(0, 1, 1), &[snap(0, 0, 0, 1)]);
    }

    /// The tentpole membership property: a masked route never lands on an
    /// ineligible (draining / failed / retired) replica, whatever the
    /// policy, mask, or load pattern.
    #[test]
    fn route_among_never_picks_ineligible_replicas() {
        let n = 6;
        for policy in RouterPolicy::extended() {
            let mut r = Router::new(policy, n, 99);
            for i in 0..300u64 {
                // A rotating single-survivor-to-majority mask and skewed
                // loads, exercising every argmin/tie path.
                let mut eligible = vec![false; n];
                for k in 0..(1 + (i as usize % n)) {
                    eligible[(i as usize + k * 2) % n] = true;
                }
                let snaps: Vec<ReplicaSnapshot> = (0..n)
                    .map(|j| snap(j * 3 % 5, (i as usize + j) % 4, (j as u64) * 7, 100))
                    .collect();
                let choice = r.route_among(&req(i, 2, 2), &snaps, &eligible);
                assert!(
                    eligible[choice],
                    "{policy:?} routed to ineligible replica {choice} (mask {eligible:?})"
                );
            }
        }
    }

    /// With a full mask, `route_among` is byte-identical to `route` —
    /// including the power-of-two RNG stream.
    #[test]
    fn route_among_full_mask_matches_route() {
        let n = 5;
        let snaps: Vec<ReplicaSnapshot> = (0..n)
            .map(|j| snap(j % 3, (j * 2) % 4, (j as u64) * 11, 100))
            .collect();
        for policy in RouterPolicy::all() {
            let mut plain = Router::new(policy, n, 41);
            let mut masked = Router::new(policy, n, 41);
            let eligible = vec![true; n];
            for i in 0..200u64 {
                let a = plain.route(&req(i, 1, 1), &snaps);
                let b = masked.route_among(&req(i, 1, 1), &snaps, &eligible);
                assert_eq!(a, b, "{policy:?} diverged at request {i}");
            }
            assert_eq!(plain.routed(), masked.routed());
        }
    }

    #[test]
    fn grow_extends_the_routable_range() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 2, 0);
        let snaps2 = vec![snap(0, 0, 0, 100); 2];
        assert_eq!(r.route(&req(0, 1, 1), &snaps2), 0);
        r.grow(1);
        assert_eq!(r.num_replicas(), 3);
        let snaps3 = vec![snap(0, 0, 0, 100); 3];
        // Cursor survives growth: 1, 2, 0, ...
        assert_eq!(r.route(&req(1, 1, 1), &snaps3), 1);
        assert_eq!(r.route(&req(2, 1, 1), &snaps3), 2);
        assert_eq!(r.routed(), &[1, 1, 1]);
    }

    /// The scale-up regression (satellite fix): the post-growth sampling
    /// stream is re-derived from `(seed, first new replica index)`, so two
    /// routers that saw *different amounts* of pre-growth traffic make
    /// identical post-growth decisions — scale-up routing is insensitive to
    /// prior event history.
    #[test]
    fn grow_reseeds_the_sampling_stream_deterministically() {
        let run = |pre_routes: u64| {
            let mut r = Router::new(RouterPolicy::PowerOfTwoChoices, 3, 77);
            let pre = vec![snap(1, 1, 0, 100); 3];
            for i in 0..pre_routes {
                r.route(&req(i, 1, 1), &pre);
            }
            r.grow(2);
            let post: Vec<ReplicaSnapshot> = (0..5).map(|j| snap(j, j, 0, 100)).collect();
            (0..50)
                .map(|i| r.route(&req(1000 + i, 1, 1), &post))
                .collect::<Vec<usize>>()
        };
        assert_eq!(
            run(3),
            run(250),
            "post-scale-up routing must not depend on pre-growth traffic volume"
        );
        // And it still depends on the master seed.
        let mut other = Router::new(RouterPolicy::PowerOfTwoChoices, 3, 78);
        let pre = vec![snap(1, 1, 0, 100); 3];
        for i in 0..3 {
            other.route(&req(i, 1, 1), &pre);
        }
        other.grow(2);
        let post: Vec<ReplicaSnapshot> = (0..5).map(|j| snap(j, j, 0, 100)).collect();
        let picks: Vec<usize> = (0..50)
            .map(|i| other.route(&req(1000 + i, 1, 1), &post))
            .collect();
        assert_ne!(picks, run(3), "different seeds should diverge after growth");
    }

    #[test]
    #[should_panic(expected = "no eligible replica")]
    fn route_among_rejects_an_empty_mask() {
        let mut r = Router::new(RouterPolicy::LeastQueueDepth, 2, 0);
        let snaps = vec![snap(0, 0, 0, 100); 2];
        r.route_among(&req(0, 1, 1), &snaps, &[false, false]);
    }

    #[test]
    fn route_decision_accounts_speculative_copies_per_replica() {
        let mut r = Router::new(RouterPolicy::Speculative { k: 2 }, 3, 0);
        let snaps = vec![snap(0, 0, 0, 100), snap(2, 2, 0, 100), snap(1, 0, 0, 100)];
        let decision = r.route_decision(&req(0, 1, 1), &snaps, &[true; 3]);
        assert_eq!(decision, Decision::Speculative(vec![0, 2]));
        assert_eq!(r.routed(), &[1, 0, 1]);
        // With one eligible replica the fan-out degenerates to unicast.
        let decision = r.route_decision(&req(1, 1, 1), &snaps, &[false, true, false]);
        assert_eq!(decision, Decision::Unicast(1));
        assert_eq!(r.routed(), &[1, 1, 1]);
    }

    /// The legacy unicast entry points (the fleet's re-route path) resolve
    /// a multicast to its primary copy and never drop a request.
    #[test]
    fn unicast_resolution_takes_the_primary_copy() {
        let mut r = Router::new(RouterPolicy::Speculative { k: 3 }, 3, 0);
        let snaps = vec![snap(2, 0, 0, 100), snap(0, 0, 0, 100), snap(1, 0, 0, 100)];
        assert_eq!(r.route(&req(0, 1, 1), &snaps), 1);
        assert_eq!(r.routed(), &[0, 1, 0], "only the primary copy is counted");
    }

    /// `Discard` outcomes are counted per request class; custom policies
    /// exercise the open trait plumbing end to end.
    #[test]
    fn custom_policy_discards_are_counted_per_class() {
        #[derive(Debug, Clone)]
        struct ShedBatch;
        impl RoutePolicy for ShedBatch {
            fn name(&self) -> String {
                "shed-batch".into()
            }
            fn route(&mut self, request: &Request, _ctx: &mut RouteCtx<'_>) -> Outcome {
                match request.class {
                    crate::profile::RequestClass::Batch => Outcome::Discard,
                    _ => Outcome::Default,
                }
            }
            fn clone_box(&self) -> Box<dyn RoutePolicy> {
                Box::new(self.clone())
            }
        }
        let mut r = Router::with_policy(Box::new(ShedBatch), 2, 0);
        assert_eq!(r.policy_name(), "shed-batch");
        let snaps = vec![snap(3, 0, 0, 100), snap(1, 0, 0, 100)];
        let interactive = req(0, 1, 1);
        let batch = Request {
            class: crate::profile::RequestClass::Batch,
            ..req(1, 1, 1)
        };
        // Interactive defers to the fallback (least queue depth).
        assert_eq!(
            r.route_decision(&interactive, &snaps, &[true, true]),
            Decision::Unicast(1)
        );
        assert_eq!(
            r.route_decision(&batch, &snaps, &[true, true]),
            Decision::Shed
        );
        assert_eq!(r.routed(), &[0, 1]);
        assert_eq!(
            r.discarded(),
            [0, 1],
            "discards land on the shed class only"
        );
    }

    /// Multicast normalization: duplicates collapse (first occurrence
    /// wins) and ineligible targets are filtered out.
    #[test]
    fn multicast_targets_are_deduplicated_and_masked() {
        #[derive(Debug, Clone)]
        struct Everywhere;
        impl RoutePolicy for Everywhere {
            fn name(&self) -> String {
                "everywhere".into()
            }
            fn route(&mut self, _request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
                let n = ctx.replicas();
                Outcome::Multicast((0..2 * n).map(|i| i % n).collect())
            }
            fn clone_box(&self) -> Box<dyn RoutePolicy> {
                Box::new(self.clone())
            }
        }
        let mut r = Router::with_policy(Box::new(Everywhere), 3, 0);
        let snaps = vec![snap(0, 0, 0, 100); 3];
        let decision = r.route_decision(&req(0, 1, 1), &snaps, &[true, false, true]);
        assert_eq!(decision, Decision::Speculative(vec![0, 2]));
        assert_eq!(r.routed(), &[1, 0, 1]);
    }
}
