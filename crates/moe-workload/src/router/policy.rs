//! The open routing-policy contract: [`RoutePolicy`], its [`Outcome`], and
//! the four canonical snapshot-scoring implementations behind the
//! [`RouterPolicy`](super::RouterPolicy) enum.
//!
//! A policy maps one request, observed through a [`RouteCtx`] (per-replica
//! [`ReplicaSnapshot`]s, the elasticity eligibility mask, and the router's
//! seeded sampling stream), to an [`Outcome`]:
//!
//! * [`Outcome::Unicast`] — dispatch to one replica (every snapshot policy).
//! * [`Outcome::Multicast`] — speculative dispatch to several replicas; the
//!   fleet races the copies and cancels the losers at first token.
//! * [`Outcome::Discard`] — shed the request at the front end (counted per
//!   class alongside the deadline sheds).
//! * [`Outcome::Default`] — defer to the router's fallback discipline
//!   (deterministic least-queue-depth), for policies that only want to
//!   override a subset of traffic.
//!
//! Determinism contract: a policy must be a pure function of the request
//! sequence, the snapshots it was shown, the feedback it received through
//! [`RoutePolicy::observe`], and draws from `ctx.rng` — no wall clock, no
//! ambient randomness. Ties must break toward the lowest replica index.
//! Under that contract a fleet run reproduces byte-for-byte regardless of
//! how replica stepping is scheduled between synchronization points.

use crate::requests::Request;

use super::feedback::LatencyFeedback;
use super::ReplicaSnapshot;

/// What a [`RoutePolicy`] decided for one request.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Dispatch to this replica.
    Unicast(usize),
    /// Speculatively dispatch a copy to each listed replica (primary
    /// first); the first copy to produce a token wins and the rest are
    /// cancelled. Duplicates and ineligible entries are filtered by the
    /// router; at least one eligible target must remain.
    Multicast(Vec<usize>),
    /// Shed the request at the front end: it reaches no replica and is
    /// counted against its class alongside the queue-deadline sheds.
    Discard,
    /// Defer to the router's fallback discipline (least queue depth over
    /// the eligible replicas, ties to the lowest index).
    Default,
}

impl Outcome {
    /// Applies `f` to every replica index carried by the outcome.
    pub fn map(self, mut f: impl FnMut(usize) -> usize) -> Outcome {
        match self {
            Outcome::Unicast(i) => Outcome::Unicast(f(i)),
            Outcome::Multicast(t) => Outcome::Multicast(t.into_iter().map(f).collect()),
            other => other,
        }
    }

    /// Returns `self` unless it is [`Outcome::Default`], in which case
    /// `other` — the combinator for layering a specialized policy over a
    /// base discipline.
    pub fn or(self, other: Outcome) -> Outcome {
        match self {
            Outcome::Default => other,
            decided => decided,
        }
    }
}

/// Everything a policy may observe when routing one request.
pub struct RouteCtx<'a> {
    /// One snapshot per replica, in replica order.
    pub snapshots: &'a [ReplicaSnapshot],
    /// Elasticity membership: `None` means every replica is eligible;
    /// draining, failed, and retired replicas are masked out.
    pub eligible: Option<&'a [bool]>,
    /// The router's seeded sampling stream. Policies that never draw keep
    /// the stream untouched, so sampling policies stay a pure function of
    /// `(seed, draw count)`.
    pub rng: &'a mut rand::rngs::StdRng,
}

impl RouteCtx<'_> {
    /// Number of replicas routed over.
    pub fn replicas(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether replica `i` may be routed to.
    pub fn is_eligible(&self, i: usize) -> bool {
        self.eligible.is_none_or(|mask| mask[i])
    }

    /// Indices of the eligible replicas, ascending.
    pub fn eligible_indices(&self) -> Vec<usize> {
        (0..self.replicas())
            .filter(|&i| self.is_eligible(i))
            .collect()
    }

    /// Index of the eligible replica minimizing `key` (ties to the lowest
    /// index); `None` when nothing is eligible.
    pub fn argmin_by<K: PartialOrd>(
        &self,
        key: impl Fn(usize, &ReplicaSnapshot) -> K,
    ) -> Option<usize> {
        argmin_by_filtered(self.snapshots, |i, _| self.is_eligible(i), |i, s| key(i, s))
    }
}

/// An open routing discipline. Implementations beyond the canonical enum
/// plug in through [`Router::with_policy`](super::Router::with_policy).
pub trait RoutePolicy: std::fmt::Debug + Send {
    /// Stable lowercase name, used in manifests and golden file names.
    fn name(&self) -> String;

    /// Decides the outcome for one request.
    fn route(&mut self, request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome;

    /// Latency feedback from a completed request the fleet dispatched to
    /// `replica`. Only called when [`RoutePolicy::wants_feedback`] is true;
    /// observations arrive in a deterministic order under both fleet
    /// scheduler drives.
    fn observe(&mut self, _replica: usize, _feedback: &LatencyFeedback) {}

    /// Whether the fleet should harvest completion records into
    /// [`RoutePolicy::observe`]. Snapshot policies return false so their
    /// drive stays byte-identical to the pre-feedback router.
    fn wants_feedback(&self) -> bool {
        false
    }

    /// The fleet scaled up to `replicas` total replicas; per-replica state
    /// must extend (new replicas start unobserved).
    fn on_grow(&mut self, _replicas: usize) {}

    /// Clones the policy with its accumulated state.
    fn clone_box(&self) -> Box<dyn RoutePolicy>;
}

impl Clone for Box<dyn RoutePolicy> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Index of the minimizing snapshot among those passing `keep` (ties to
/// the lowest index). Strict `<` keeps the first (lowest-index) minimum on
/// ties; incomparable keys (NaN pressure) never displace a holder.
pub fn argmin_by_filtered<K: PartialOrd>(
    snapshots: &[ReplicaSnapshot],
    keep: impl Fn(usize, &ReplicaSnapshot) -> bool,
    key: impl Fn(usize, &ReplicaSnapshot) -> K,
) -> Option<usize> {
    let mut best: Option<(usize, K)> = None;
    for (i, s) in snapshots.iter().enumerate() {
        if !keep(i, s) {
            continue;
        }
        let k = key(i, s);
        let wins = best
            .as_ref()
            .is_none_or(|(_, bk)| matches!(k.partial_cmp(bk), Some(std::cmp::Ordering::Less)));
        if wins {
            best = Some((i, k));
        }
    }
    best.map(|(i, _)| i)
}

/// Cyclic assignment: first eligible replica at or after the cursor.
#[derive(Clone, Debug, Default)]
pub struct RoundRobinPolicy {
    cursor: usize,
}

impl RoutePolicy for RoundRobinPolicy {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn route(&mut self, _request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
        // First eligible replica at or after the cursor (the cursor itself
        // when nothing is masked).
        let n = ctx.replicas();
        let mut c = self.cursor % n;
        while !ctx.is_eligible(c) {
            c = (c + 1) % n;
        }
        self.cursor = (c + 1) % n;
        Outcome::Unicast(c)
    }

    fn clone_box(&self) -> Box<dyn RoutePolicy> {
        Box::new(self.clone())
    }
}

/// Join the replica with the fewest waiting + resident requests.
#[derive(Clone, Debug, Default)]
pub struct LeastQueueDepthPolicy;

impl RoutePolicy for LeastQueueDepthPolicy {
    fn name(&self) -> String {
        "least-queue-depth".into()
    }

    fn route(&mut self, _request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
        let choice = ctx
            .argmin_by(|_, s| (s.total_load() as u64, s.kv_tokens_in_use))
            .expect("an eligible replica exists");
        Outcome::Unicast(choice)
    }

    fn clone_box(&self) -> Box<dyn RoutePolicy> {
        Box::new(self.clone())
    }
}

/// Join the replica with the lowest post-admission KV occupancy, excluding
/// replicas that must permanently reject the request when an admitting
/// replica exists.
#[derive(Clone, Debug, Default)]
pub struct LeastKvPressurePolicy;

impl RoutePolicy for LeastKvPressurePolicy {
    fn name(&self) -> String {
        "least-kv-pressure".into()
    }

    fn route(&mut self, request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
        // Prefer replicas that can eventually admit the request; only when
        // *every* eligible replica must reject it does the choice
        // degenerate (the request is lost wherever it lands).
        let admitting = argmin_by_filtered(
            ctx.snapshots,
            |i, s| ctx.is_eligible(i) && !s.must_reject(request),
            |_, s| (s.kv_pressure_with(request), s.total_load()),
        );
        let choice = admitting.unwrap_or_else(|| {
            ctx.argmin_by(|_, s| (s.kv_pressure_with(request), s.total_load()))
                .expect("an eligible replica exists")
        });
        Outcome::Unicast(choice)
    }

    fn clone_box(&self) -> Box<dyn RoutePolicy> {
        Box::new(self.clone())
    }
}

/// Seeded power-of-two-choices: sample two distinct replicas from
/// `ctx.rng`, keep the less loaded.
#[derive(Clone, Debug, Default)]
pub struct PowerOfTwoPolicy;

impl RoutePolicy for PowerOfTwoPolicy {
    fn name(&self) -> String {
        "power-of-two".into()
    }

    fn route(&mut self, _request: &Request, ctx: &mut RouteCtx<'_>) -> Outcome {
        use rand::Rng;
        let elig = ctx.eligible_indices();
        let m = elig.len();
        let choice = if m == 1 {
            elig[0]
        } else {
            // Two distinct seeded samples over the eligible set; keep the
            // less loaded (queue join cost, then KV, then lower index).
            // Over the full set the draws and the choice reduce exactly to
            // the unmasked policy.
            let a = ctx.rng.gen_range(0..m);
            let mut b = ctx.rng.gen_range(0..m - 1);
            if b >= a {
                b += 1;
            }
            let (lo, hi) = (elig[a.min(b)], elig[a.max(b)]);
            let key = |i: usize| {
                (
                    ctx.snapshots[i].total_load(),
                    ctx.snapshots[i].kv_tokens_in_use,
                )
            };
            if key(hi) < key(lo) {
                hi
            } else {
                lo
            }
        };
        Outcome::Unicast(choice)
    }

    fn clone_box(&self) -> Box<dyn RoutePolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_map_touches_every_target() {
        let shifted = Outcome::Multicast(vec![0, 2]).map(|i| i + 1);
        assert_eq!(shifted, Outcome::Multicast(vec![1, 3]));
        assert_eq!(Outcome::Unicast(1).map(|i| i * 3), Outcome::Unicast(3));
        assert_eq!(Outcome::Discard.map(|i| i + 7), Outcome::Discard);
    }

    #[test]
    fn outcome_or_defers_only_from_default() {
        assert_eq!(
            Outcome::Default.or(Outcome::Unicast(2)),
            Outcome::Unicast(2)
        );
        assert_eq!(Outcome::Discard.or(Outcome::Unicast(2)), Outcome::Discard);
        assert_eq!(
            Outcome::Unicast(1).or(Outcome::Unicast(2)),
            Outcome::Unicast(1)
        );
    }
}
