//! Fast sampling of gating outcomes (token→expert assignment counts).

use rand::Rng;

/// Samples per-expert token counts for `tokens` tokens each selecting
/// `top_k` distinct experts from `dist`.
///
/// Counts are drawn from the multinomial distribution over `tokens × top_k`
/// selections (via the conditional-binomial decomposition) and then repaired
/// so that no expert exceeds `tokens` — the top-k-without-replacement
/// constraint. The repair step redistributes the overflow to the remaining
/// experts proportionally, which only triggers for extremely skewed
/// distributions.
///
/// Returns a vector of length `dist.len()` summing to `tokens * top_k`.
///
/// # Panics
///
/// Panics if `top_k as usize > dist.len()` or if `dist` has a non-positive
/// total.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let dist = vec![0.25; 4];
/// let counts = moe_workload::sample_gating_counts(&mut rng, &dist, 100, 2);
/// assert_eq!(counts.iter().sum::<u32>(), 200);
/// assert!(counts.iter().all(|&c| c <= 100));
/// ```
pub fn sample_gating_counts<R: Rng>(
    rng: &mut R,
    dist: &[f64],
    tokens: u32,
    top_k: u32,
) -> Vec<u32> {
    assert!(
        (top_k as usize) <= dist.len(),
        "top_k={} exceeds expert count {}",
        top_k,
        dist.len()
    );
    let total_p: f64 = dist.iter().sum();
    assert!(total_p > 0.0, "distribution must have positive mass");

    let mut counts = vec![0u32; dist.len()];
    let mut remaining_trials = tokens as u64 * top_k as u64;
    let mut remaining_mass = total_p;
    for (e, &p) in dist.iter().enumerate() {
        if remaining_trials == 0 {
            break;
        }
        if e + 1 == dist.len() {
            counts[e] = remaining_trials as u32;
            break;
        }
        let q = (p / remaining_mass).clamp(0.0, 1.0);
        let c = sample_binomial(rng, remaining_trials, q);
        counts[e] = c as u32;
        remaining_trials -= c;
        remaining_mass -= p;
        if remaining_mass <= 0.0 {
            // Numerical exhaustion: dump the rest on the last expert.
            counts[dist.len() - 1] += remaining_trials as u32;
            break;
        }
    }

    // Repair the top-k-without-replacement cap: no expert can receive more
    // than one selection per token.
    let cap = tokens;
    let mut overflow: u64 = 0;
    for c in counts.iter_mut() {
        if *c > cap {
            overflow += (*c - cap) as u64;
            *c = cap;
        }
    }
    if overflow > 0 {
        // Round-robin the overflow into experts with spare capacity,
        // preferring higher-probability ones (stable order).
        let mut order: Vec<usize> = (0..dist.len()).collect();
        order.sort_by(|&a, &b| dist[b].partial_cmp(&dist[a]).unwrap().then(a.cmp(&b)));
        'outer: loop {
            let mut progressed = false;
            for &e in &order {
                if overflow == 0 {
                    break 'outer;
                }
                if counts[e] < cap {
                    counts[e] += 1;
                    overflow -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                panic!("cannot satisfy top-k cap: tokens*top_k exceeds tokens*experts");
            }
        }
    }
    counts
}

/// Samples from Binomial(n, p) — exact Bernoulli summation for small `n`,
/// normal approximation for large `n` (clamped to `[0, n]`).
fn sample_binomial<R: Rng>(rng: &mut R, n: u64, p: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        let mut c = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                c += 1;
            }
        }
        return c;
    }
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    // Box-Muller.
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let sample = (mean + sd * z).round();
    sample.clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn counts_sum_to_selections() {
        let mut r = rng();
        let dist = vec![0.5, 0.3, 0.15, 0.05];
        for _ in 0..20 {
            let c = sample_gating_counts(&mut r, &dist, 64, 2);
            assert_eq!(c.iter().sum::<u32>(), 128);
            assert!(c.iter().all(|&x| x <= 64));
        }
    }

    #[test]
    fn skewed_distribution_hits_cap_and_repairs() {
        let mut r = rng();
        // 99.9% mass on expert 0: raw multinomial would exceed the cap.
        let dist = vec![0.999, 0.0005, 0.0005];
        let c = sample_gating_counts(&mut r, &dist, 10, 2);
        assert_eq!(c.iter().sum::<u32>(), 20);
        assert_eq!(c[0], 10);
    }

    #[test]
    fn expected_values_track_distribution() {
        let mut r = rng();
        // Keep expected counts below the per-expert cap (tokens) so the
        // repair step does not distort the comparison.
        let dist = vec![0.3, 0.2, 0.15, 0.1, 0.1, 0.05, 0.05, 0.05];
        let mut sums = vec![0u64; dist.len()];
        let trials = 200;
        for _ in 0..trials {
            let c = sample_gating_counts(&mut r, &dist, 256, 2);
            for (s, &x) in sums.iter_mut().zip(&c) {
                *s += x as u64;
            }
        }
        let total: u64 = sums.iter().sum();
        for (i, &s) in sums.iter().enumerate() {
            let frac = s as f64 / total as f64;
            assert!(
                (frac - dist[i]).abs() < 0.03,
                "expert {i}: {frac} vs {}",
                dist[i]
            );
        }
    }

    #[test]
    fn top_k_equal_to_experts_forces_uniform() {
        let mut r = rng();
        // Every token must select all 4 experts.
        let c = sample_gating_counts(&mut r, &[0.7, 0.1, 0.1, 0.1], 32, 4);
        assert_eq!(c, vec![32; 4]);
    }

    #[test]
    fn binomial_edge_cases() {
        let mut r = rng();
        assert_eq!(sample_binomial(&mut r, 100, 0.0), 0);
        assert_eq!(sample_binomial(&mut r, 100, 1.0), 100);
        let s = sample_binomial(&mut r, 1_000_000, 0.5);
        assert!((s as f64 - 500_000.0).abs() < 5_000.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let dist = vec![0.25; 4];
        let a = sample_gating_counts(&mut rng(), &dist, 128, 2);
        let b = sample_gating_counts(&mut rng(), &dist, 128, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn top_k_larger_than_experts_panics() {
        let mut r = rng();
        sample_gating_counts(&mut r, &[1.0], 4, 2);
    }
}
