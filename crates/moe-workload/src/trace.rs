//! Iteration-by-iteration expert-selection traces.

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use moe_model::ModelConfig;

use crate::affinity::AffinityModel;
use crate::gating::sample_gating_counts;
use crate::scenario::Scenario;

/// How scenario weights evolve over the lifetime of a trace.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum WorkloadMix {
    /// A single scenario for the whole run (the paper's "Math-only").
    Fixed(Scenario),
    /// A smooth cyclic rotation through scenarios, modelling Azure-like
    /// production mixtures whose composition drifts slowly (paper §V-B).
    Cycling {
        /// Iterations for one full rotation through all scenarios.
        period: f64,
        /// Scenarios participating in the rotation.
        scenarios: Vec<Scenario>,
    },
    /// A static blend of scenarios.
    Blend(Vec<(Scenario, f64)>),
}

impl WorkloadMix {
    /// The paper's "Mixed" workload: all four scenarios rotating over
    /// `period` iterations.
    pub fn mixed(period: f64) -> Self {
        WorkloadMix::Cycling {
            period,
            scenarios: Scenario::all().to_vec(),
        }
    }

    /// Scenario weights at `iteration` (normalised to sum to 1).
    pub fn weights(&self, iteration: u64) -> Vec<(Scenario, f64)> {
        match self {
            WorkloadMix::Fixed(s) => vec![(*s, 1.0)],
            WorkloadMix::Blend(weights) => weights.clone(),
            WorkloadMix::Cycling { period, scenarios } => {
                let s = scenarios.len() as f64;
                let phase = iteration as f64 / period;
                let mut weights: Vec<(Scenario, f64)> = scenarios
                    .iter()
                    .enumerate()
                    .map(|(i, &scenario)| {
                        let theta = 2.0 * std::f64::consts::PI * (phase - i as f64 / s);
                        // Raised-cosine bump: smooth, periodic, non-negative.
                        let w = (0.5 + 0.5 * theta.cos()).powi(2);
                        (scenario, w)
                    })
                    .collect();
                let total: f64 = weights.iter().map(|(_, w)| w).sum();
                for (_, w) in &mut weights {
                    *w /= total;
                }
                weights
            }
        }
    }
}

/// Gating outcome of one MoE layer: token counts per (DP group, expert).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct LayerGating {
    /// `counts[group][expert]` = tokens of `group` routed to `expert`.
    pub counts: Vec<Vec<u32>>,
}

impl LayerGating {
    /// Total tokens routed to each expert across all groups.
    pub fn expert_totals(&self) -> Vec<u64> {
        let num_experts = self.counts.first().map_or(0, Vec::len);
        let mut totals = vec![0u64; num_experts];
        for group in &self.counts {
            for (t, &c) in totals.iter_mut().zip(group) {
                *t += c as u64;
            }
        }
        totals
    }

    /// Total routed token-selections in the layer.
    pub fn total_selections(&self) -> u64 {
        self.counts
            .iter()
            .map(|g| g.iter().map(|&c| c as u64).sum::<u64>())
            .sum()
    }

    /// Number of DP groups.
    pub fn num_groups(&self) -> usize {
        self.counts.len()
    }
}

/// Gating outcomes for every sparse layer of one inference iteration.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct IterationTrace {
    /// Index of the iteration this trace belongs to.
    pub iteration: u64,
    /// Scenario weights that generated it.
    pub weights: Vec<(Scenario, f64)>,
    /// Per-sparse-layer gating outcomes.
    pub layers: Vec<LayerGating>,
}

/// Deterministic generator of per-iteration expert-selection traces.
///
/// See the [crate-level documentation](crate) for the statistical structure.
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    affinity: AffinityModel,
    mix: WorkloadMix,
    num_groups: usize,
    tokens_per_group: u32,
    top_k: u32,
    rng: rand::rngs::StdRng,
    iteration: u64,
    uniform: bool,
}

impl TraceGenerator {
    /// Creates a generator for `config` under `mix`, with `num_groups` DP
    /// groups of `tokens_per_group` tokens per iteration.
    ///
    /// # Panics
    ///
    /// Panics if `num_groups == 0` or `tokens_per_group == 0`.
    pub fn new(
        config: &ModelConfig,
        mix: WorkloadMix,
        num_groups: usize,
        tokens_per_group: u32,
        seed: u64,
    ) -> Self {
        assert!(num_groups > 0, "need at least one DP group");
        assert!(tokens_per_group > 0, "need at least one token per group");
        TraceGenerator {
            affinity: AffinityModel::new(
                config.num_sparse_layers as usize,
                config.num_experts as usize,
                seed,
            ),
            mix,
            num_groups,
            tokens_per_group,
            top_k: config.experts_per_token,
            rng: rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(0xA24B_AED4_963E_E407)),
            iteration: 0,
            uniform: false,
        }
    }

    /// Forces perfectly uniform gating probabilities (the balanced-load
    /// ablation used to isolate mapping gains in §VI-B).
    pub fn with_uniform_gating(mut self) -> Self {
        self.uniform = true;
        self
    }

    /// Overrides the per-iteration token count per group.
    ///
    /// # Panics
    ///
    /// Panics if `tokens_per_group == 0`.
    pub fn set_tokens_per_group(&mut self, tokens_per_group: u32) {
        assert!(tokens_per_group > 0, "need at least one token per group");
        self.tokens_per_group = tokens_per_group;
    }

    /// The affinity model driving generation.
    pub fn affinity(&self) -> &AffinityModel {
        &self.affinity
    }

    /// Current iteration counter.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Generates the next iteration's gating trace.
    pub fn next_iteration(&mut self) -> IterationTrace {
        let weights = self.mix.weights(self.iteration);
        let uniform_dist = self.uniform.then(|| self.affinity.uniform());
        let mut layers = Vec::with_capacity(self.affinity.num_layers());
        for layer in 0..self.affinity.num_layers() {
            let mixed;
            let dist: &[f64] = match &uniform_dist {
                Some(u) => u,
                None => {
                    mixed = self.affinity.mixed_distribution(layer, &weights);
                    &mixed
                }
            };
            let counts = (0..self.num_groups)
                .map(|_| {
                    sample_gating_counts(&mut self.rng, dist, self.tokens_per_group, self.top_k)
                })
                .collect();
            layers.push(LayerGating { counts });
        }
        let trace = IterationTrace {
            iteration: self.iteration,
            weights,
            layers,
        };
        self.iteration += 1;
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ModelConfig {
        ModelConfig::mixtral_8x22b() // small: 8 experts, top-2, 56 layers
    }

    #[test]
    fn selections_conserved() {
        let mut gen = TraceGenerator::new(&config(), WorkloadMix::Fixed(Scenario::Chat), 2, 64, 3);
        let trace = gen.next_iteration();
        for layer in &trace.layers {
            assert_eq!(layer.total_selections(), 2 * 64 * 2);
            assert_eq!(layer.num_groups(), 2);
        }
    }

    #[test]
    fn fixed_mix_weights() {
        let mix = WorkloadMix::Fixed(Scenario::Math);
        assert_eq!(mix.weights(100), vec![(Scenario::Math, 1.0)]);
    }

    #[test]
    fn cycling_weights_normalised_and_drift() {
        let mix = WorkloadMix::mixed(1000.0);
        let w0 = mix.weights(0);
        let w250 = mix.weights(250);
        let sum: f64 = w0.iter().map(|(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // After a quarter period the dominant scenario rotates.
        let dom0 = w0
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        let dom250 = w250
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap()
            .0;
        assert_ne!(dom0, dom250);
    }

    #[test]
    fn cycling_weights_are_smooth() {
        let mix = WorkloadMix::mixed(1000.0);
        for it in 0..100 {
            let a = mix.weights(it);
            let b = mix.weights(it + 1);
            for (x, y) in a.iter().zip(&b) {
                assert!((x.1 - y.1).abs() < 0.02, "jump at iter {it}");
            }
        }
    }

    #[test]
    fn fixed_scenario_loads_stabilise() {
        // Paper Fig. 12: in a fixed scenario the per-expert load *ratios*
        // are stable across iterations (up to sampling noise).
        let mut gen =
            TraceGenerator::new(&config(), WorkloadMix::Fixed(Scenario::Math), 4, 256, 11);
        let a = gen.next_iteration().layers[0].expert_totals();
        let b = gen.next_iteration().layers[0].expert_totals();
        let total: u64 = a.iter().sum();
        for (x, y) in a.iter().zip(&b) {
            let fx = *x as f64 / total as f64;
            let fy = *y as f64 / total as f64;
            assert!((fx - fy).abs() < 0.05);
        }
    }

    #[test]
    fn uniform_gating_balances_expectation() {
        let mut gen =
            TraceGenerator::new(&config(), WorkloadMix::Fixed(Scenario::Math), 4, 256, 11)
                .with_uniform_gating();
        let totals = gen.next_iteration().layers[0].expert_totals();
        let mean = totals.iter().sum::<u64>() as f64 / totals.len() as f64;
        for &t in &totals {
            assert!((t as f64 - mean).abs() < 0.35 * mean, "{t} vs {mean}");
        }
    }

    #[test]
    fn trace_is_deterministic() {
        let mk = || {
            TraceGenerator::new(&config(), WorkloadMix::mixed(500.0), 2, 32, 17).next_iteration()
        };
        assert_eq!(mk(), mk());
    }
}
