//! Per-layer, per-scenario expert affinity distributions.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::scenario::Scenario;

/// Zipf exponent of the intrinsic expert popularity bias.
const ZIPF_EXPONENT: f64 = 0.8;
/// Multiplicative boost applied to a scenario's domain experts.
const SCENARIO_BOOST: f64 = 4.0;
/// Fraction of experts in each scenario's domain hot set.
const HOT_SET_FRACTION: f64 = 0.125;

/// Seeded construction of expert-selection probability distributions.
///
/// For every MoE layer the model combines:
///
/// 1. an *intrinsic popularity* ranking — a seeded permutation of experts
///    weighted by a Zipf law (the "expert popularity bias" of the paper's
///    §V-B), shared by all scenarios; and
/// 2. a *scenario hot set* — a seeded subset of experts whose affinity is
///    boosted while that scenario is active ("fixed scenarios persistently
///    activate corresponding domain-specific experts").
///
/// Distributions are precomputed at construction; lookups are slice borrows.
///
/// # Example
///
/// ```
/// use moe_workload::{AffinityModel, Scenario};
///
/// let model = AffinityModel::new(4, 64, 7);
/// let math = model.distribution(0, Scenario::Math);
/// let sum: f64 = math.iter().sum();
/// assert!((sum - 1.0).abs() < 1e-9);
/// // Different scenarios favour different experts.
/// let chat = model.distribution(0, Scenario::Chat);
/// assert_ne!(math, chat);
/// ```
#[derive(Clone, Debug)]
pub struct AffinityModel {
    num_layers: usize,
    num_experts: usize,
    /// `[layer][scenario][expert]` probabilities.
    tables: Vec<[Vec<f64>; 4]>,
}

impl AffinityModel {
    /// Builds affinity tables for `num_layers` MoE layers of `num_experts`
    /// experts each, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_layers` or `num_experts` is zero.
    pub fn new(num_layers: usize, num_experts: usize, seed: u64) -> Self {
        assert!(num_layers > 0, "need at least one layer");
        assert!(num_experts > 0, "need at least one expert");
        let mut tables = Vec::with_capacity(num_layers);
        for layer in 0..num_layers {
            // Intrinsic popularity: Zipf weights over a seeded permutation.
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ (layer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut order: Vec<usize> = (0..num_experts).collect();
            order.shuffle(&mut rng);
            let mut base = vec![0.0; num_experts];
            for (rank, &e) in order.iter().enumerate() {
                base[e] = 1.0 / ((rank + 1) as f64).powf(ZIPF_EXPONENT);
            }

            let hot = ((num_experts as f64 * HOT_SET_FRACTION).round() as usize).max(1);
            let scenario_dist = Scenario::all().map(|scenario| {
                let mut srng = rand::rngs::StdRng::seed_from_u64(
                    seed ^ (layer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (scenario.id() + 1).wrapping_mul(0xD1B5_4A32_D192_ED03),
                );
                let mut weights = base.clone();
                let mut pool: Vec<usize> = (0..num_experts).collect();
                pool.shuffle(&mut srng);
                for &e in pool.iter().take(hot) {
                    weights[e] *= SCENARIO_BOOST * (1.0 + srng.gen::<f64>());
                }
                let total: f64 = weights.iter().sum();
                for w in &mut weights {
                    *w /= total;
                }
                weights
            });
            tables.push(scenario_dist);
        }
        AffinityModel {
            num_layers,
            num_experts,
            tables,
        }
    }

    /// Number of MoE layers covered.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Number of experts per layer.
    pub fn num_experts(&self) -> usize {
        self.num_experts
    }

    /// The expert-selection distribution of `scenario` at `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn distribution(&self, layer: usize, scenario: Scenario) -> &[f64] {
        &self.tables[layer][scenario.id() as usize]
    }

    /// A weighted mixture of scenario distributions at `layer`. Weights are
    /// normalised internally; zero-total weights produce a uniform
    /// distribution.
    pub fn mixed_distribution(&self, layer: usize, weights: &[(Scenario, f64)]) -> Vec<f64> {
        let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
        if total <= 0.0 {
            return vec![1.0 / self.num_experts as f64; self.num_experts];
        }
        let mut mixed = vec![0.0; self.num_experts];
        for &(scenario, w) in weights {
            let w = w.max(0.0) / total;
            if w == 0.0 {
                continue;
            }
            for (m, p) in mixed.iter_mut().zip(self.distribution(layer, scenario)) {
                *m += w * p;
            }
        }
        mixed
    }

    /// A perfectly uniform distribution (the "balanced gating" ablation of
    /// §VI-B, which equalises every expert's selection probability).
    pub fn uniform(&self) -> Vec<f64> {
        vec![1.0 / self.num_experts as f64; self.num_experts]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_are_normalized() {
        let m = AffinityModel::new(3, 32, 1);
        for layer in 0..3 {
            for s in Scenario::all() {
                let sum: f64 = m.distribution(layer, s).iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "layer {layer} scenario {s}");
            }
        }
    }

    #[test]
    fn deterministic_across_constructions() {
        let a = AffinityModel::new(2, 16, 99);
        let b = AffinityModel::new(2, 16, 99);
        assert_eq!(
            a.distribution(1, Scenario::Coding),
            b.distribution(1, Scenario::Coding)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = AffinityModel::new(1, 64, 1);
        let b = AffinityModel::new(1, 64, 2);
        assert_ne!(
            a.distribution(0, Scenario::Chat),
            b.distribution(0, Scenario::Chat)
        );
    }

    #[test]
    fn scenarios_share_intrinsic_bias() {
        // The top intrinsic expert should be popular in all scenarios:
        // its probability stays well above uniform even when not boosted.
        let m = AffinityModel::new(1, 128, 5);
        let uniform = 1.0 / 128.0;
        for s in Scenario::all() {
            let max = m.distribution(0, s).iter().copied().fold(0.0, f64::max);
            assert!(max > 4.0 * uniform, "{s}: max {max}");
        }
    }

    #[test]
    fn mixture_interpolates() {
        let m = AffinityModel::new(1, 16, 3);
        let half = m.mixed_distribution(0, &[(Scenario::Chat, 1.0), (Scenario::Math, 1.0)]);
        let chat = m.distribution(0, Scenario::Chat);
        let math = m.distribution(0, Scenario::Math);
        for i in 0..16 {
            assert!((half[i] - 0.5 * (chat[i] + math[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_mixture_is_uniform() {
        let m = AffinityModel::new(1, 10, 3);
        let d = m.mixed_distribution(0, &[]);
        assert!(d.iter().all(|&p| (p - 0.1).abs() < 1e-12));
        assert_eq!(m.uniform(), d);
    }
}
