//! Front-end request router for multi-replica (fleet) serving.
//!
//! A fleet deployment puts N independent serving replicas — each a full
//! wafer (or multi-wafer pod) running its own continuous-batching engine —
//! behind one front end that owns the global arrival stream. The [`Router`]
//! decides, per request, which replica's serving queue admits it, using one
//! of four pluggable [`RouterPolicy`] disciplines:
//!
//! * [`RouterPolicy::RoundRobin`] — cyclic assignment, state-free with
//!   respect to replica load; the baseline every other policy is judged
//!   against.
//! * [`RouterPolicy::LeastQueueDepth`] — route to the replica with the
//!   fewest waiting-plus-resident requests (join-the-shortest-queue).
//! * [`RouterPolicy::LeastKvPressure`] — route to the replica whose KV
//!   cache would be least full after admitting the request, never choosing
//!   a replica that would have to *permanently reject* it (footprint over
//!   the whole budget) while another replica could admit it.
//! * [`RouterPolicy::PowerOfTwoChoices`] — sample two distinct replicas
//!   from a seeded stream and keep the less loaded one; the classic
//!   load-balancing result that two choices capture most of the benefit of
//!   full load awareness at O(1) state inspection.
//!
//! Routing is deterministic: every policy is a pure function of the request
//! sequence, the observed [`ReplicaSnapshot`]s, and (for power-of-two) the
//! seed. Ties always break toward the lowest replica index, so a fleet run
//! is reproducible byte-for-byte regardless of how replica stepping is
//! scheduled between synchronization points.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::requests::Request;
use crate::scheduler::SchedulingMode;

/// Max/mean ratio of per-replica load counts — the fleet's balance metric
/// (1.0 when perfectly balanced or when nothing has been counted yet).
/// Shared by [`Router::routing_imbalance`] and the fleet summary's
/// completion-imbalance so the two ratios can never drift apart in
/// definition.
pub fn max_mean_imbalance(counts: impl IntoIterator<Item = f64>) -> f64 {
    let counts: Vec<f64> = counts.into_iter().collect();
    let total: f64 = counts.iter().sum();
    if counts.is_empty() || total <= 0.0 {
        return 1.0;
    }
    let mean = total / counts.len() as f64;
    counts.into_iter().fold(0.0, f64::max) / mean
}

/// One replica's load as observed by the router at a synchronization point.
///
/// The engine layer produces these from each replica's serving queue
/// (`InferenceEngine::replica_snapshot` in `moentwine-core`).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ReplicaSnapshot {
    /// Requests arrived but not yet admitted.
    pub queue_depth: usize,
    /// Requests admitted and not yet complete.
    pub active: usize,
    /// KV tokens currently reserved by resident requests.
    pub kv_tokens_in_use: u64,
    /// The replica's total KV-token capacity budget.
    pub kv_budget_tokens: u64,
    /// The replica's serving discipline (determines a request's KV
    /// footprint: the prefill tier only ever holds the prompt's KV).
    pub mode: SchedulingMode,
}

impl ReplicaSnapshot {
    /// KV tokens `request` would reserve on this replica at admission —
    /// [`SchedulingMode::kv_need`], the same rule the serving queue
    /// reserves by.
    pub fn kv_need(&self, request: &Request) -> u64 {
        self.mode.kv_need(request)
    }

    /// Whether this replica would have to *permanently reject* `request`:
    /// its KV footprint exceeds the whole budget, so it could never be
    /// admitted even on an empty replica.
    pub fn must_reject(&self, request: &Request) -> bool {
        self.kv_need(request) > self.kv_budget_tokens
    }

    /// Requests in flight (waiting + resident) — the queue-join cost.
    pub fn total_load(&self) -> usize {
        self.queue_depth + self.active
    }

    /// KV occupancy after admitting `request`, as a fraction of the budget
    /// (may exceed 1 when the request cannot currently fit).
    pub fn kv_pressure_with(&self, request: &Request) -> f64 {
        if self.kv_budget_tokens == 0 {
            return f64::INFINITY;
        }
        (self.kv_tokens_in_use as f64 + self.kv_need(request) as f64) / self.kv_budget_tokens as f64
    }
}

/// Dispatch discipline of a [`Router`]. See the [module docs](self).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cyclic assignment.
    RoundRobin,
    /// Join the replica with the fewest waiting + resident requests.
    LeastQueueDepth,
    /// Join the replica with the lowest post-admission KV occupancy,
    /// excluding replicas that must permanently reject the request when an
    /// admitting replica exists.
    LeastKvPressure,
    /// Seeded power-of-two-choices: sample two distinct replicas, keep the
    /// less loaded.
    PowerOfTwoChoices,
}

impl RouterPolicy {
    /// Stable lowercase name (`"round-robin"` / `"least-queue-depth"` /
    /// `"least-kv-pressure"` / `"power-of-two"`), matching the `FromStr`
    /// spelling and the fleet-sweep manifest.
    pub fn name(self) -> &'static str {
        match self {
            RouterPolicy::RoundRobin => "round-robin",
            RouterPolicy::LeastQueueDepth => "least-queue-depth",
            RouterPolicy::LeastKvPressure => "least-kv-pressure",
            RouterPolicy::PowerOfTwoChoices => "power-of-two",
        }
    }

    /// Every policy, for sweep-style experiments.
    pub fn all() -> [RouterPolicy; 4] {
        [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastQueueDepth,
            RouterPolicy::LeastKvPressure,
            RouterPolicy::PowerOfTwoChoices,
        ]
    }
}

impl std::str::FromStr for RouterPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "round-robin" | "rr" => Ok(RouterPolicy::RoundRobin),
            "least-queue-depth" | "least-queue" | "jsq" => Ok(RouterPolicy::LeastQueueDepth),
            "least-kv-pressure" | "least-kv" => Ok(RouterPolicy::LeastKvPressure),
            "power-of-two" | "p2c" => Ok(RouterPolicy::PowerOfTwoChoices),
            other => Err(format!(
                "unknown router policy {other:?} (expected \"round-robin\", \
                 \"least-queue-depth\", \"least-kv-pressure\", or \"power-of-two\")"
            )),
        }
    }
}

impl std::fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The front-end dispatcher. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Router {
    policy: RouterPolicy,
    replicas: usize,
    /// Next replica for round-robin.
    cursor: usize,
    /// Seeded sampling stream for power-of-two-choices. Only that policy
    /// draws from it, so the other policies stay RNG-free and the
    /// power-of-two stream is a pure function of `(seed, routed count)`.
    rng: rand::rngs::StdRng,
    /// Requests routed to each replica so far.
    routed: Vec<u64>,
}

impl Router {
    /// Creates a router over `replicas` replicas. `seed` feeds only the
    /// [`RouterPolicy::PowerOfTwoChoices`] sampling stream.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn new(policy: RouterPolicy, replicas: usize, seed: u64) -> Self {
        assert!(replicas > 0, "need at least one replica");
        Router {
            policy,
            replicas,
            cursor: 0,
            rng: rand::rngs::StdRng::seed_from_u64(seed ^ 0x00F1_EE7B_A11A_D000),
            routed: vec![0; replicas],
        }
    }

    /// The dispatch policy.
    pub fn policy(&self) -> RouterPolicy {
        self.policy
    }

    /// Number of replicas routed over.
    pub fn num_replicas(&self) -> usize {
        self.replicas
    }

    /// Requests routed to each replica so far.
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// Max/mean ratio of per-replica routed-request counts (1.0 when
    /// perfectly balanced or nothing routed yet).
    pub fn routing_imbalance(&self) -> f64 {
        max_mean_imbalance(self.routed.iter().map(|&r| r as f64))
    }

    /// Extends the fleet by `additional` replicas (scale-up): the new
    /// replicas join the routable range with zero routed counts. The
    /// round-robin cursor and the power-of-two sampling stream are
    /// unchanged, so growth never perturbs decisions already made.
    pub fn grow(&mut self, additional: usize) {
        self.replicas += additional;
        self.routed.resize(self.replicas, 0);
    }

    /// Picks the replica `request` is dispatched to, given one snapshot per
    /// replica (in replica order), and records the assignment.
    ///
    /// # Panics
    ///
    /// Panics if `snapshots.len()` differs from the configured replica
    /// count.
    pub fn route(&mut self, request: &Request, snapshots: &[ReplicaSnapshot]) -> usize {
        self.dispatch(request, snapshots, None)
    }

    /// Like [`Router::route`], restricted to replicas with `eligible[i]`
    /// set — fleet membership under elasticity events, where draining,
    /// failed, and retired replicas must never be routed to. With every
    /// replica eligible this is byte-identical to [`Router::route`]
    /// (identical power-of-two RNG stream included).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the replica count or no
    /// replica is eligible.
    pub fn route_among(
        &mut self,
        request: &Request,
        snapshots: &[ReplicaSnapshot],
        eligible: &[bool],
    ) -> usize {
        self.dispatch(request, snapshots, Some(eligible))
    }

    fn dispatch(
        &mut self,
        request: &Request,
        snapshots: &[ReplicaSnapshot],
        eligible: Option<&[bool]>,
    ) -> usize {
        assert_eq!(
            snapshots.len(),
            self.replicas,
            "snapshot count must match replica count"
        );
        if let Some(mask) = eligible {
            assert_eq!(
                mask.len(),
                self.replicas,
                "eligibility mask must match replica count"
            );
            assert!(mask.iter().any(|&e| e), "no eligible replica to route to");
        }
        let ok = |i: usize| eligible.is_none_or(|mask| mask[i]);
        let choice = match self.policy {
            RouterPolicy::RoundRobin => {
                // First eligible replica at or after the cursor (the cursor
                // itself when nothing is masked, as before).
                let n = self.replicas;
                let mut c = self.cursor % n;
                while !ok(c) {
                    c = (c + 1) % n;
                }
                self.cursor = (c + 1) % n;
                c
            }
            RouterPolicy::LeastQueueDepth => Self::argmin_by_filtered(
                snapshots,
                |i, _| ok(i),
                |s| (s.total_load() as u64, s.kv_tokens_in_use),
            )
            .expect("an eligible replica exists"),
            RouterPolicy::LeastKvPressure => {
                // Prefer replicas that can eventually admit the request;
                // only when *every* eligible replica must reject it does the
                // choice degenerate (the request is lost wherever it lands).
                let admitting = Self::argmin_by_filtered(
                    snapshots,
                    |i, s| ok(i) && !s.must_reject(request),
                    |s| (s.kv_pressure_with(request), s.total_load()),
                );
                admitting.unwrap_or_else(|| {
                    Self::argmin_by_filtered(
                        snapshots,
                        |i, _| ok(i),
                        |s| (s.kv_pressure_with(request), s.total_load()),
                    )
                    .expect("an eligible replica exists")
                })
            }
            RouterPolicy::PowerOfTwoChoices => {
                let elig: Vec<usize> = (0..self.replicas).filter(|&i| ok(i)).collect();
                let m = elig.len();
                if m == 1 {
                    elig[0]
                } else {
                    // Two distinct seeded samples over the eligible set;
                    // keep the less loaded (queue join cost, then KV, then
                    // lower index). Over the full set the draws and the
                    // choice reduce exactly to the unmasked policy.
                    let a = self.rng.gen_range(0..m);
                    let mut b = self.rng.gen_range(0..m - 1);
                    if b >= a {
                        b += 1;
                    }
                    let (lo, hi) = (elig[a.min(b)], elig[a.max(b)]);
                    let key = |i: usize| (snapshots[i].total_load(), snapshots[i].kv_tokens_in_use);
                    if key(hi) < key(lo) {
                        hi
                    } else {
                        lo
                    }
                }
            }
        };
        self.routed[choice] += 1;
        choice
    }

    /// Index of the minimizing snapshot among those passing `keep` (ties to
    /// the lowest index).
    fn argmin_by_filtered<K: PartialOrd>(
        snapshots: &[ReplicaSnapshot],
        keep: impl Fn(usize, &ReplicaSnapshot) -> bool,
        key: impl Fn(&ReplicaSnapshot) -> K,
    ) -> Option<usize> {
        let mut best: Option<(usize, K)> = None;
        for (i, s) in snapshots.iter().enumerate() {
            if !keep(i, s) {
                continue;
            }
            let k = key(s);
            // Strict `<` keeps the first (lowest-index) minimum on ties;
            // incomparable keys (NaN pressure) never displace a holder.
            let wins = best
                .as_ref()
                .is_none_or(|(_, bk)| matches!(k.partial_cmp(bk), Some(std::cmp::Ordering::Less)));
            if wins {
                best = Some((i, k));
            }
        }
        best.map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::RequestId;
    use crate::scenario::Scenario;

    fn req(id: u64, input: u32, output: u32) -> Request {
        Request {
            id: RequestId(id),
            scenario: Scenario::Chat,
            class: crate::profile::RequestClass::Interactive,
            input_len: input,
            output_len: output,
            arrival: id as f64,
        }
    }

    fn snap(queue: usize, active: usize, kv_used: u64, kv_budget: u64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            queue_depth: queue,
            active,
            kv_tokens_in_use: kv_used,
            kv_budget_tokens: kv_budget,
            mode: SchedulingMode::Hybrid,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let snaps = vec![snap(9, 9, 0, 100); 3];
        let mut r = Router::new(RouterPolicy::RoundRobin, 3, 0);
        let picks: Vec<usize> = (0..7).map(|i| r.route(&req(i, 1, 1), &snaps)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(r.routed(), &[3, 2, 2]);
    }

    #[test]
    fn least_queue_depth_joins_shortest() {
        let snaps = vec![snap(5, 2, 0, 100), snap(1, 3, 0, 100), snap(2, 2, 0, 100)];
        let mut r = Router::new(RouterPolicy::LeastQueueDepth, 3, 0);
        assert_eq!(r.route(&req(0, 1, 1), &snaps), 1);
        // Equal total load breaks on KV occupancy, then the lowest index.
        let kv_tied = vec![snap(2, 2, 7, 100), snap(1, 3, 4, 100), snap(3, 1, 9, 100)];
        assert_eq!(r.route(&req(1, 1, 1), &kv_tied), 1);
        let fully_tied = vec![snap(2, 2, 7, 100); 3];
        assert_eq!(r.route(&req(2, 1, 1), &fully_tied), 0);
    }

    #[test]
    fn least_kv_pressure_prefers_emptiest_cache() {
        let snaps = vec![
            snap(0, 0, 80, 100),
            snap(0, 0, 20, 100),
            snap(0, 0, 50, 100),
        ];
        let mut r = Router::new(RouterPolicy::LeastKvPressure, 3, 0);
        assert_eq!(r.route(&req(0, 5, 5), &snaps), 1);
    }

    /// The satellite property: `LeastKvPressure` never routes to a replica
    /// that must permanently reject the request while another can admit it.
    #[test]
    fn least_kv_pressure_avoids_must_reject_replicas() {
        // Replica 0 has the lowest occupancy but a tiny budget that can
        // never hold the request; replica 1 can.
        let snaps = vec![snap(0, 0, 0, 10), snap(0, 0, 900, 1000)];
        let mut r = Router::new(RouterPolicy::LeastKvPressure, 2, 0);
        let big = req(0, 50, 50); // needs 100 KV tokens
        assert!(snaps[0].must_reject(&big));
        assert!(!snaps[1].must_reject(&big));
        assert_eq!(r.route(&big, &snaps), 1);
        // A small request goes back to the emptier replica.
        assert_eq!(r.route(&req(1, 2, 2), &snaps), 0);
        // When every replica must reject, the choice degenerates to the
        // least-pressured one instead of panicking.
        let hopeless = vec![snap(0, 0, 5, 10), snap(0, 0, 2, 10)];
        assert_eq!(r.route(&big, &hopeless), 1);
    }

    #[test]
    fn prefill_only_mode_counts_prompt_footprint() {
        let s = ReplicaSnapshot {
            mode: SchedulingMode::PrefillOnly,
            ..snap(0, 0, 0, 64)
        };
        let r = req(0, 60, 1000);
        assert_eq!(s.kv_need(&r), 60);
        assert!(!s.must_reject(&r));
    }

    #[test]
    fn power_of_two_is_deterministic_at_fixed_seed() {
        let snaps: Vec<ReplicaSnapshot> = (0..8)
            .map(|i| snap(i as usize % 3, i as usize, 0, 100))
            .collect();
        let run = |seed: u64| {
            let mut r = Router::new(RouterPolicy::PowerOfTwoChoices, 8, seed);
            (0..100)
                .map(|i| r.route(&req(i, 1, 1), &snaps))
                .collect::<Vec<usize>>()
        };
        assert_eq!(run(7), run(7), "same seed must reproduce the sequence");
        assert_ne!(run(7), run(8), "different seeds should diverge");
    }

    #[test]
    fn power_of_two_prefers_less_loaded_sample() {
        // One overloaded replica: with two choices it is only picked when
        // both samples land on it, which the load comparison forbids unless
        // it *is* the less loaded — so it should receive far under 1/2 of
        // the traffic that naive random assignment would give it.
        let snaps = vec![snap(50, 50, 0, 100), snap(0, 0, 0, 100)];
        let mut r = Router::new(RouterPolicy::PowerOfTwoChoices, 2, 3);
        for i in 0..200 {
            r.route(&req(i, 1, 1), &snaps);
        }
        assert_eq!(r.routed()[0], 0, "overloaded replica must never win a pair");
        assert_eq!(r.routed()[1], 200);
    }

    #[test]
    fn routing_imbalance_ratio() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 2, 0);
        assert_eq!(r.routing_imbalance(), 1.0);
        let snaps = vec![snap(0, 0, 0, 100); 2];
        for i in 0..4 {
            r.route(&req(i, 1, 1), &snaps);
        }
        assert_eq!(r.routing_imbalance(), 1.0);
        // Force skew through round-robin with an odd count: 3 vs 2.
        let _ = r.route(&req(5, 1, 1), &snaps);
        assert!((r.routing_imbalance() - 3.0 / 2.5).abs() < 1e-12);
    }

    #[test]
    fn policy_names_parse_and_print() {
        for p in RouterPolicy::all() {
            assert_eq!(p.name().parse::<RouterPolicy>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!("p2c".parse(), Ok(RouterPolicy::PowerOfTwoChoices));
        assert_eq!("jsq".parse(), Ok(RouterPolicy::LeastQueueDepth));
        assert!("random".parse::<RouterPolicy>().is_err());
    }

    #[test]
    #[should_panic(expected = "snapshot count")]
    fn snapshot_count_mismatch_panics() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 3, 0);
        r.route(&req(0, 1, 1), &[snap(0, 0, 0, 1)]);
    }

    /// The tentpole membership property: a masked route never lands on an
    /// ineligible (draining / failed / retired) replica, whatever the
    /// policy, mask, or load pattern.
    #[test]
    fn route_among_never_picks_ineligible_replicas() {
        let n = 6;
        for policy in RouterPolicy::all() {
            let mut r = Router::new(policy, n, 99);
            for i in 0..300u64 {
                // A rotating single-survivor-to-majority mask and skewed
                // loads, exercising every argmin/tie path.
                let mut eligible = vec![false; n];
                for k in 0..(1 + (i as usize % n)) {
                    eligible[(i as usize + k * 2) % n] = true;
                }
                let snaps: Vec<ReplicaSnapshot> = (0..n)
                    .map(|j| snap(j * 3 % 5, (i as usize + j) % 4, (j as u64) * 7, 100))
                    .collect();
                let choice = r.route_among(&req(i, 2, 2), &snaps, &eligible);
                assert!(
                    eligible[choice],
                    "{policy:?} routed to ineligible replica {choice} (mask {eligible:?})"
                );
            }
        }
    }

    /// With a full mask, `route_among` is byte-identical to `route` —
    /// including the power-of-two RNG stream.
    #[test]
    fn route_among_full_mask_matches_route() {
        let n = 5;
        let snaps: Vec<ReplicaSnapshot> = (0..n)
            .map(|j| snap(j % 3, (j * 2) % 4, (j as u64) * 11, 100))
            .collect();
        for policy in RouterPolicy::all() {
            let mut plain = Router::new(policy, n, 41);
            let mut masked = Router::new(policy, n, 41);
            let eligible = vec![true; n];
            for i in 0..200u64 {
                let a = plain.route(&req(i, 1, 1), &snaps);
                let b = masked.route_among(&req(i, 1, 1), &snaps, &eligible);
                assert_eq!(a, b, "{policy:?} diverged at request {i}");
            }
            assert_eq!(plain.routed(), masked.routed());
        }
    }

    #[test]
    fn grow_extends_the_routable_range() {
        let mut r = Router::new(RouterPolicy::RoundRobin, 2, 0);
        let snaps2 = vec![snap(0, 0, 0, 100); 2];
        assert_eq!(r.route(&req(0, 1, 1), &snaps2), 0);
        r.grow(1);
        assert_eq!(r.num_replicas(), 3);
        let snaps3 = vec![snap(0, 0, 0, 100); 3];
        // Cursor survives growth: 1, 2, 0, ...
        assert_eq!(r.route(&req(1, 1, 1), &snaps3), 1);
        assert_eq!(r.route(&req(2, 1, 1), &snaps3), 2);
        assert_eq!(r.routed(), &[1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "no eligible replica")]
    fn route_among_rejects_an_empty_mask() {
        let mut r = Router::new(RouterPolicy::LeastQueueDepth, 2, 0);
        let snaps = vec![snap(0, 0, 0, 100); 2];
        r.route_among(&req(0, 1, 1), &snaps, &[false, false]);
    }
}
