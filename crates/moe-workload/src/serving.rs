//! Request-level continuous-batching serving queue.
//!
//! [`ServingQueue`] tracks every [`Request`] through its full lifecycle —
//! **arrival → admission → prefill → decode → completion** — and composes
//! per-iteration [`BatchSpec`]s with per-request token attribution
//! ([`BatchEntry`]), the layer the paper's end-to-end serving results
//! (Fig. 11(e), §VI-C) are measured on.
//!
//! Design (DESIGN.md §6):
//!
//! * **Admission** is FCFS, gated by a *KV-token capacity budget*: a request
//!   reserves its final KV footprint (prompt + output tokens; prompt only in
//!   the disaggregated-prefill tier) at admission and releases it on
//!   completion, so the resident KV cache can never exceed the budget. A
//!   request that could never fit even on an empty system is rejected
//!   permanently and counted. The budget is derived from
//!   `moe_model::ModelConfig::kv_token_capacity` by the engine.
//! * **Continuous batching**: every iteration advances all fully-prefilled,
//!   unfinished sequences by one decode token, then fills the remaining
//!   prefill budget with FCFS *chunked* prefill (Sarathi-style in `Hybrid`
//!   mode; a request's prompt may span several iterations). Prefill
//!   completion makes a sequence decodable from the next iteration on.
//! * **Clock**: the queue is clock-agnostic. The caller passes `now` to
//!   [`ServingQueue::next_batch`] and the iteration's *end* time to
//!   [`ServingQueue::finish_iteration`]; per-request TTFT, TPOT, end-to-end
//!   latency and queueing delay fall out of those stamps (the engine derives
//!   them from each iteration's priced duration).
//!
//! All state transitions are deterministic in the offered request sequence,
//! and batch composition is invariant under request-id relabeling (ids are
//! labels, never keys — see the serving property tests).

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use moe_model::InferencePhase;

use crate::profile::{ClassSpec, RequestClass};
use crate::requests::{Request, RequestId};
use crate::scheduler::{BatchEntry, BatchSpec, SchedulingMode};

/// Number of tenant classes (the length of [`RequestClass::all`]).
const NUM_CLASSES: usize = 2;

/// Lifecycle record of one finished request: every timestamp needed to
/// compute the serving percentiles (TTFT / TPOT / e2e / queueing delay).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request identity.
    pub id: RequestId,
    /// Scenario the request belonged to.
    pub scenario: crate::scenario::Scenario,
    /// Tenant class the request was served under.
    pub class: RequestClass,
    /// Prompt length, tokens.
    pub input_len: u32,
    /// Requested output length, tokens.
    pub output_len: u32,
    /// Arrival time, seconds.
    pub arrival: f64,
    /// Admission time (KV budget + concurrency slot granted), seconds.
    pub admitted: f64,
    /// Completion time of the iteration that produced the first output
    /// token (prefill hand-off time in the prefill-only tier), seconds.
    pub first_token: f64,
    /// Completion time, seconds.
    pub finish: f64,
    /// Prompt tokens this queue scheduled (0 in the decode-only tier,
    /// where prefill happened elsewhere).
    pub prefill_scheduled: u32,
    /// Output tokens this queue scheduled (0 in the prefill-only tier).
    pub decode_scheduled: u32,
}

impl RequestRecord {
    /// Time to first token: `first_token − arrival`.
    pub fn ttft(&self) -> f64 {
        self.first_token - self.arrival
    }

    /// End-to-end latency: `finish − arrival`.
    pub fn e2e_latency(&self) -> f64 {
        self.finish - self.arrival
    }

    /// Queueing delay before admission: `admitted − arrival`.
    pub fn queueing_delay(&self) -> f64 {
        self.admitted - self.arrival
    }

    /// Time per output token after the first (`None` with fewer than two
    /// decoded tokens, where TPOT is undefined).
    pub fn tpot(&self) -> Option<f64> {
        if self.decode_scheduled >= 2 {
            Some((self.finish - self.first_token) / (self.decode_scheduled - 1) as f64)
        } else {
            None
        }
    }
}

/// A request evicted mid-flight from a [`ServingQueue`] (replica crash):
/// the request plus the progress it loses, so a fleet can re-admit it on
/// another replica and account the prefill replay.
#[derive(Clone, PartialEq, Debug)]
pub struct InterruptedRequest {
    /// The evicted request.
    pub request: Request,
    /// Prompt tokens already processed on the evicting replica. Lost: the
    /// re-admitting replica prefills from scratch (KV is not migrated).
    pub prefilled: u32,
    /// Output tokens already generated on the evicting replica. Lost.
    pub decoded: u32,
}

/// A request resident in the queue (admitted, not yet complete).
#[derive(Clone, Debug)]
struct ActiveRequest {
    request: Request,
    admitted: f64,
    /// Prompt tokens processed so far (starts at `input_len` in the
    /// decode-only tier, whose prefill ran elsewhere).
    prefilled: u32,
    /// Output tokens generated so far.
    decoded: u32,
    /// KV tokens reserved against the budget at admission.
    kv_reserved: u64,
    first_token: Option<f64>,
    /// Tokens scheduled for this request in the in-flight iteration
    /// (prefill, decode) — stamped by [`ServingQueue::finish_iteration`].
    pending: (u32, u32),
}

impl ActiveRequest {
    /// Prompt tokens scheduled by this queue (decode-only prefill is
    /// external and counts as zero).
    fn prefill_scheduled(&self, external_prefill: bool) -> u32 {
        if external_prefill {
            0
        } else {
            self.prefilled
        }
    }

    fn is_complete(&self, mode: SchedulingMode) -> bool {
        match mode {
            SchedulingMode::PrefillOnly => self.prefilled >= self.request.input_len,
            _ => {
                self.prefilled >= self.request.input_len && self.decoded >= self.request.output_len
            }
        }
    }
}

/// Aggregate token-accounting counters of a [`ServingQueue`] — the basis of
/// the token-conservation property (prefill + decode tokens scheduled must
/// equal the tokens admitted, none lost or double-counted).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct TokenAccounting {
    /// Prompt tokens this queue owes across all admitted requests
    /// (0-contribution per request in the decode-only tier).
    pub admitted_prefill: u64,
    /// Output tokens this queue owes across all admitted requests
    /// (0-contribution per request in the prefill-only tier).
    pub admitted_decode: u64,
    /// Prompt tokens scheduled into batches so far.
    pub scheduled_prefill: u64,
    /// Output tokens scheduled into batches so far.
    pub scheduled_decode: u64,
}

/// Per-class admission policy of a [`ServingQueue`]: the optional shed
/// deadline of each tenant class. Class *priority* is fixed (interactive
/// ahead of batch at the same admission barrier); the policy only controls
/// whether — and after how long — a still-waiting request is shed.
#[derive(Copy, Clone, PartialEq, Debug, Default)]
pub struct ClassPolicy {
    /// Shed deadline per class, indexed by [`RequestClass::index`]: a
    /// waiting request older than `arrival + shed_after` is dropped at the
    /// next admission pass and counted as a typed shed (never a silent
    /// loss). `None` waits forever.
    pub shed_after: [Option<f64>; NUM_CLASSES],
}

impl ClassPolicy {
    /// Collects the shed deadlines out of a class list (classes absent from
    /// the list keep `None`).
    pub fn from_classes(classes: &[ClassSpec]) -> Self {
        let mut policy = ClassPolicy::default();
        for c in classes {
            policy.shed_after[c.class.index()] = c.shed_after;
        }
        policy
    }
}

/// Continuous-batching serving queue. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct ServingQueue {
    mode: SchedulingMode,
    max_batch_tokens: u32,
    max_active: usize,
    kv_budget: u64,
    policy: ClassPolicy,
    /// Per-class FCFS arrival queues, indexed by [`RequestClass::index`].
    waiting: [VecDeque<Request>; NUM_CLASSES],
    active: Vec<ActiveRequest>,
    completed: Vec<RequestRecord>,
    kv_in_use: u64,
    peak_kv_in_use: u64,
    rejected: u64,
    offered_by_class: [u64; NUM_CLASSES],
    rejected_by_class: [u64; NUM_CLASSES],
    shed_by_class: [u64; NUM_CLASSES],
    accounting: TokenAccounting,
    in_iteration: bool,
}

impl ServingQueue {
    /// Creates a queue.
    ///
    /// * `max_batch_tokens` — per-iteration token budget.
    /// * `max_active` — maximum concurrently resident (admitted) requests.
    /// * `kv_budget_tokens` — KV-cache capacity in tokens; admission
    ///   reserves each request's final footprint against it. Use
    ///   `u64::MAX` for an effectively unbounded cache.
    ///
    /// # Panics
    ///
    /// Panics if any budget is zero.
    pub fn new(
        mode: SchedulingMode,
        max_batch_tokens: u32,
        max_active: usize,
        kv_budget_tokens: u64,
    ) -> Self {
        assert!(max_batch_tokens > 0, "token budget must be positive");
        assert!(max_active > 0, "active budget must be positive");
        assert!(kv_budget_tokens > 0, "KV budget must be positive");
        ServingQueue {
            mode,
            max_batch_tokens,
            max_active,
            kv_budget: kv_budget_tokens,
            policy: ClassPolicy::default(),
            waiting: [VecDeque::new(), VecDeque::new()],
            active: Vec::new(),
            completed: Vec::new(),
            kv_in_use: 0,
            peak_kv_in_use: 0,
            rejected: 0,
            offered_by_class: [0; NUM_CLASSES],
            rejected_by_class: [0; NUM_CLASSES],
            shed_by_class: [0; NUM_CLASSES],
            accounting: TokenAccounting::default(),
            in_iteration: false,
        }
    }

    /// Sets the per-class admission policy (builder style). The default
    /// policy never sheds, which reproduces the pre-class queue exactly.
    pub fn with_class_policy(mut self, policy: ClassPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The per-class admission policy.
    pub fn class_policy(&self) -> ClassPolicy {
        self.policy
    }

    /// The serving discipline.
    pub fn mode(&self) -> SchedulingMode {
        self.mode
    }

    /// Per-iteration token budget.
    pub fn max_batch_tokens(&self) -> u32 {
        self.max_batch_tokens
    }

    /// Maximum concurrently resident requests.
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// The KV-token capacity budget.
    pub fn kv_budget_tokens(&self) -> u64 {
        self.kv_budget
    }

    /// KV tokens currently reserved by resident requests.
    pub fn kv_tokens_in_use(&self) -> u64 {
        self.kv_in_use
    }

    /// High-water mark of [`ServingQueue::kv_tokens_in_use`].
    pub fn peak_kv_tokens(&self) -> u64 {
        self.peak_kv_in_use
    }

    /// Requests arrived but not yet admitted, across all classes.
    pub fn queue_depth(&self) -> usize {
        self.waiting.iter().map(VecDeque::len).sum()
    }

    /// Requests of `class` arrived but not yet admitted.
    pub fn queue_depth_for(&self, class: RequestClass) -> usize {
        self.waiting[class.index()].len()
    }

    /// Requests admitted and not yet complete.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// Requests of `class` admitted and not yet complete.
    pub fn num_active_for(&self, class: RequestClass) -> usize {
        self.active
            .iter()
            .filter(|r| r.request.class == class)
            .count()
    }

    /// Requests of `class` offered so far.
    pub fn offered_for(&self, class: RequestClass) -> u64 {
        self.offered_by_class[class.index()]
    }

    /// Requests rejected at admission (their footprint exceeds the whole
    /// KV budget, so they could never be served).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Requests of `class` rejected at admission.
    pub fn rejected_for(&self, class: RequestClass) -> u64 {
        self.rejected_by_class[class.index()]
    }

    /// Requests shed past their class deadline, across all classes.
    pub fn shed(&self) -> u64 {
        self.shed_by_class.iter().sum()
    }

    /// Requests of `class` shed past their deadline.
    pub fn shed_for(&self, class: RequestClass) -> u64 {
        self.shed_by_class[class.index()]
    }

    /// Aggregate token-accounting counters.
    pub fn accounting(&self) -> TokenAccounting {
        self.accounting
    }

    /// Completed-request records accumulated so far.
    pub fn completed(&self) -> &[RequestRecord] {
        &self.completed
    }

    /// Removes and returns the accumulated completion records.
    pub fn drain_completed(&mut self) -> Vec<RequestRecord> {
        std::mem::take(&mut self.completed)
    }

    /// Feeds an arrival. Requests must be offered in non-decreasing arrival
    /// order (the FCFS discipline is defined over this order).
    ///
    /// # Panics
    ///
    /// Panics if `request.arrival` precedes the previously offered arrival.
    pub fn offer(&mut self, request: Request) {
        // The latest arrival still waiting, across both class deques (each
        // deque is arrival-ordered, so its back is its latest). Like the
        // single-deque queue, a drained queue accepts older arrivals again —
        // the fleet's crash re-route path re-offers evicted requests with
        // their original arrival stamps.
        let latest_waiting = self
            .waiting
            .iter()
            .filter_map(|q| q.back())
            .map(|r| r.arrival)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            request.arrival >= latest_waiting,
            "arrivals must be offered in order: {} after {}",
            request.arrival,
            latest_waiting
        );
        self.offered_by_class[request.class.index()] += 1;
        self.waiting[request.class.index()].push_back(request);
    }

    /// KV tokens `request` must reserve to be admitted.
    fn kv_need(&self, request: &Request) -> u64 {
        self.mode.kv_need(request)
    }

    /// Sheds waiting requests past their class deadline at time `now`.
    ///
    /// Only heads need checking: each class deque is arrival-ordered and
    /// shares one `shed_after`, so once a head is within its deadline every
    /// request behind it (which has waited strictly less) is too.
    fn shed_expired(&mut self, now: f64) {
        for class in RequestClass::all() {
            let Some(deadline) = self.policy.shed_after[class.index()] else {
                continue;
            };
            while let Some(front) = self.waiting[class.index()].front() {
                if now - front.arrival <= deadline {
                    break;
                }
                self.waiting[class.index()].pop_front();
                self.shed_by_class[class.index()] += 1;
            }
        }
    }

    /// Class-priority FCFS admission at time `now`: first shed expired
    /// waiters, then admit from the class heads — interactive strictly
    /// ahead of batch at the same barrier — while a concurrency slot and KV
    /// reservation are available. Within a class, head-of-line blocking is
    /// deliberate — skipping ahead would starve large requests forever
    /// under load; across classes, a blocked interactive head also blocks
    /// batch (strict priority, not work conservation).
    fn admit(&mut self, now: f64) {
        self.shed_expired(now);
        // Each pass admits (or rejects) the head of the highest-priority
        // class whose head has already arrived, until none qualifies.
        while let Some(class) = RequestClass::all().into_iter().find(|c| {
            self.waiting[c.index()]
                .front()
                .is_some_and(|front| front.arrival <= now)
        }) {
            let front = self.waiting[class.index()].front().expect("checked front");
            let need = self.kv_need(front);
            if need > self.kv_budget {
                // Could never fit, even on an empty system: reject.
                self.rejected += 1;
                self.rejected_by_class[class.index()] += 1;
                self.waiting[class.index()].pop_front();
                continue;
            }
            if self.active.len() >= self.max_active
                || self.kv_in_use.saturating_add(need) > self.kv_budget
            {
                break;
            }
            let request = self.waiting[class.index()]
                .pop_front()
                .expect("checked front");
            self.kv_in_use += need;
            self.peak_kv_in_use = self.peak_kv_in_use.max(self.kv_in_use);
            let external_prefill = self.mode == SchedulingMode::DecodeOnly;
            if !external_prefill {
                self.accounting.admitted_prefill += request.input_len as u64;
            }
            if self.mode != SchedulingMode::PrefillOnly {
                self.accounting.admitted_decode += request.output_len as u64;
            }
            self.active.push(ActiveRequest {
                prefilled: if external_prefill {
                    request.input_len
                } else {
                    0
                },
                decoded: 0,
                kv_reserved: need,
                admitted: now,
                first_token: None,
                pending: (0, 0),
                request,
            });
        }
    }

    /// Schedules the iteration starting at time `now`: admits arrivals, then
    /// composes the batch (decode step for every fully-prefilled sequence,
    /// then FCFS chunked prefill up to the mode's budget).
    ///
    /// If the previous iteration was not closed with
    /// [`ServingQueue::finish_iteration`], it is closed implicitly at `now`
    /// (fixed-period legacy callers rely on this).
    pub fn next_batch(&mut self, now: f64) -> BatchSpec {
        if self.in_iteration {
            self.finish_iteration(now);
        }
        self.admit(now);
        self.in_iteration = true;

        let mut entries: Vec<BatchEntry> = Vec::new();
        let mut prefill_tokens = 0u32;
        let mut decode_tokens = 0u32;
        let mut context_sum = 0.0f64;
        let mut context_samples = 0.0f64;

        // Decode step: one token per decodable sequence (continuous
        // batching — decodes are never preempted by prefill).
        if self.mode != SchedulingMode::PrefillOnly {
            for r in &mut self.active {
                if r.prefilled >= r.request.input_len && r.decoded < r.request.output_len {
                    r.decoded += 1;
                    r.pending.1 += 1;
                    decode_tokens += 1;
                    context_sum += (r.prefilled + r.decoded) as f64;
                    context_samples += 1.0;
                    entries.push(BatchEntry {
                        id: r.request.id,
                        prefill_tokens: 0,
                        decode_tokens: 1,
                    });
                }
            }
        }

        // Chunked prefill, FCFS in admission order (prefill-priority: the
        // oldest admitted prompt drains first; hybrid reserves half the
        // token budget so decodes retain headroom, Sarathi-style).
        let prefill_budget = match self.mode {
            SchedulingMode::PrefillOnly => self.max_batch_tokens,
            SchedulingMode::Hybrid => self.max_batch_tokens / 2,
            SchedulingMode::DecodeOnly => 0,
        };
        for r in &mut self.active {
            if prefill_tokens >= prefill_budget {
                break;
            }
            let remaining = r.request.input_len.saturating_sub(r.prefilled);
            if remaining == 0 {
                continue;
            }
            let take = remaining.min(prefill_budget - prefill_tokens);
            context_sum += r.prefilled as f64 + take as f64 / 2.0;
            context_samples += 1.0;
            r.prefilled += take;
            r.pending.0 += take;
            prefill_tokens += take;
            entries.push(BatchEntry {
                id: r.request.id,
                prefill_tokens: take,
                decode_tokens: 0,
            });
        }

        self.accounting.scheduled_prefill += prefill_tokens as u64;
        self.accounting.scheduled_decode += decode_tokens as u64;

        let avg_context = if context_samples == 0.0 {
            0.0
        } else {
            context_sum / context_samples
        };
        let phase = if decode_tokens >= prefill_tokens {
            InferencePhase::Decode
        } else {
            InferencePhase::Prefill
        };
        BatchSpec {
            prefill_tokens,
            decode_tokens,
            avg_context,
            phase,
            requests: entries,
        }
    }

    /// Closes the in-flight iteration at time `end`: stamps first-token
    /// times for sequences that produced their first output this iteration,
    /// completes finished requests (releasing their KV reservation), and
    /// appends their [`RequestRecord`]s.
    ///
    /// A no-op when no iteration is in flight.
    pub fn finish_iteration(&mut self, end: f64) {
        if !self.in_iteration {
            return;
        }
        self.in_iteration = false;
        let mode = self.mode;
        let external_prefill = mode == SchedulingMode::DecodeOnly;
        let mut kv_released = 0u64;
        let mut finished: Vec<RequestRecord> = Vec::new();
        self.active.retain_mut(|r| {
            if r.pending.1 > 0 && r.first_token.is_none() {
                r.first_token = Some(end);
            }
            r.pending = (0, 0);
            if !r.is_complete(mode) {
                return true;
            }
            kv_released += r.kv_reserved;
            finished.push(RequestRecord {
                id: r.request.id,
                scenario: r.request.scenario,
                class: r.request.class,
                input_len: r.request.input_len,
                output_len: r.request.output_len,
                arrival: r.request.arrival,
                admitted: r.admitted,
                // Prefill-only hand-off (and degenerate zero-output
                // requests) first-token at completion.
                first_token: r.first_token.unwrap_or(end),
                finish: end,
                prefill_scheduled: r.prefill_scheduled(external_prefill),
                decode_scheduled: r.decoded,
            });
            false
        });
        self.kv_in_use -= kv_released;
        self.completed.append(&mut finished);
    }

    /// Removes and returns every not-yet-admitted request, merged back into
    /// global arrival order across the class deques (graceful drain or
    /// crash: admission stops here and the waiters are re-routed elsewhere,
    /// and the re-offer path requires arrival order). The evicted requests
    /// were never admitted, so no KV or token accounting unwinds.
    ///
    /// # Panics
    ///
    /// Panics mid-iteration — evictions happen at iteration boundaries.
    pub fn evict_waiting(&mut self) -> Vec<Request> {
        assert!(
            !self.in_iteration,
            "evictions happen at iteration boundaries"
        );
        let [mut interactive, mut batch] = std::mem::take(&mut self.waiting);
        let mut merged = Vec::with_capacity(interactive.len() + batch.len());
        // Two-way merge of arrival-ordered deques; interactive wins ties
        // (deterministic, and the identity when one deque is empty).
        loop {
            match (interactive.front(), batch.front()) {
                (Some(i), Some(b)) => {
                    if i.arrival <= b.arrival {
                        merged.push(interactive.pop_front().expect("checked front"));
                    } else {
                        merged.push(batch.pop_front().expect("checked front"));
                    }
                }
                (Some(_), None) => merged.extend(interactive.drain(..)),
                (None, Some(_)) => merged.extend(batch.drain(..)),
                (None, None) => break,
            }
        }
        merged
    }

    /// Removes and returns every resident request with the progress it
    /// loses (replica crash), in admission order. All KV reservations are
    /// released, and the token-accounting debt the evicted requests still
    /// owed is unwound (already-scheduled tokens stay counted on both
    /// sides: that work really happened, it is just lost).
    ///
    /// # Panics
    ///
    /// Panics mid-iteration — evictions happen at iteration boundaries.
    pub fn evict_resident(&mut self) -> Vec<InterruptedRequest> {
        assert!(
            !self.in_iteration,
            "evictions happen at iteration boundaries"
        );
        let decode_admitted = self.mode != SchedulingMode::PrefillOnly;
        let mut evicted = Vec::with_capacity(self.active.len());
        for r in self.active.drain(..) {
            self.kv_in_use -= r.kv_reserved;
            // In the decode-only tier `prefilled` starts at `input_len`,
            // so the prefill remainder is zero there by construction.
            self.accounting.admitted_prefill -=
                r.request.input_len.saturating_sub(r.prefilled) as u64;
            if decode_admitted {
                self.accounting.admitted_decode -=
                    r.request.output_len.saturating_sub(r.decoded) as u64;
            }
            evicted.push(InterruptedRequest {
                prefilled: r.prefilled,
                decoded: r.decoded,
                request: r.request,
            });
        }
        evicted
    }

    /// Where one request id currently sits on this queue — the probe behind
    /// the fleet's speculative first-token race ([`CopyStatus::Active`]
    /// carries the copy's first-token time once it has produced one).
    pub fn copy_status(&self, id: RequestId) -> CopyStatus {
        if let Some(r) = self.active.iter().find(|r| r.request.id == id) {
            return CopyStatus::Active {
                first_token: r.first_token,
            };
        }
        if self.waiting.iter().any(|q| q.iter().any(|r| r.id == id)) {
            return CopyStatus::Waiting;
        }
        CopyStatus::Absent
    }

    /// Cancels the single request `id` wherever it sits: a waiting copy is
    /// removed with no accounting to unwind (mirroring
    /// [`ServingQueue::evict_waiting`]); a resident copy releases its KV
    /// reservation and unwinds the token debt it still owed, exactly the
    /// per-request body of [`ServingQueue::evict_resident`] —
    /// already-scheduled tokens stay counted (that work really happened,
    /// the speculative race just discarded it). Returns whether a copy was
    /// found; completed requests are not touched.
    ///
    /// # Panics
    ///
    /// Panics mid-iteration — cancellations happen at iteration boundaries.
    pub fn cancel_request(&mut self, id: RequestId) -> bool {
        assert!(
            !self.in_iteration,
            "cancellations happen at iteration boundaries"
        );
        for queue in &mut self.waiting {
            if let Some(pos) = queue.iter().position(|r| r.id == id) {
                queue.remove(pos);
                return true;
            }
        }
        if let Some(pos) = self.active.iter().position(|r| r.request.id == id) {
            let r = self.active.remove(pos);
            self.kv_in_use -= r.kv_reserved;
            self.accounting.admitted_prefill -=
                r.request.input_len.saturating_sub(r.prefilled) as u64;
            if self.mode != SchedulingMode::PrefillOnly {
                self.accounting.admitted_decode -=
                    r.request.output_len.saturating_sub(r.decoded) as u64;
            }
            return true;
        }
        false
    }
}

/// Liveness of one request id on a [`ServingQueue`], as probed by
/// [`ServingQueue::copy_status`].
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum CopyStatus {
    /// Offered but not yet admitted.
    Waiting,
    /// Admitted; `first_token` is the completion time of the iteration
    /// that produced its first output token, once that has happened.
    Active {
        /// First-token time, when already produced.
        first_token: Option<f64>,
    },
    /// Not on this queue (never offered, rejected, shed, evicted, or
    /// already completed).
    Absent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn req(id: u64, input: u32, output: u32, arrival: f64) -> Request {
        Request {
            id: RequestId(id),
            scenario: Scenario::Chat,
            class: RequestClass::Interactive,
            input_len: input,
            output_len: output,
            arrival,
        }
    }

    fn batch_req(id: u64, input: u32, output: u32, arrival: f64) -> Request {
        Request {
            class: RequestClass::Batch,
            ..req(id, input, output, arrival)
        }
    }

    #[test]
    fn lifecycle_timestamps_are_monotone() {
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 8, 1_000);
        q.offer(req(0, 40, 3, 0.5));
        let mut now = 1.0;
        for _ in 0..20 {
            q.next_batch(now);
            now += 0.1;
            q.finish_iteration(now);
        }
        let records = q.drain_completed();
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.id, RequestId(0));
        assert_eq!(r.prefill_scheduled, 40);
        assert_eq!(r.decode_scheduled, 3);
        assert!(r.arrival <= r.admitted);
        assert!(r.admitted <= r.first_token);
        assert!(r.first_token <= r.finish);
        assert!(r.ttft() <= r.e2e_latency());
        // Prefill spans two 32-token chunks, then 3 decode iterations:
        // admitted at 1.0, first token at the end of iteration 3 (now 1.3).
        assert!((r.admitted - 1.0).abs() < 1e-12);
        assert!((r.first_token - 1.3).abs() < 1e-12, "{}", r.first_token);
        assert!((r.finish - 1.5).abs() < 1e-12, "{}", r.finish);
        assert_eq!(r.tpot(), Some((r.finish - r.first_token) / 2.0));
    }

    #[test]
    fn kv_budget_gates_admission_fcfs() {
        // Budget fits exactly one of the 30-token requests at a time.
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 8, 40);
        q.offer(req(0, 20, 10, 0.0));
        q.offer(req(1, 20, 10, 0.0));
        q.next_batch(0.0);
        assert_eq!(q.num_active(), 1);
        assert_eq!(q.queue_depth(), 1);
        assert_eq!(q.kv_tokens_in_use(), 30);
        // Run the first request to completion; the second then admits.
        let mut now = 0.0;
        while q.completed().is_empty() {
            now += 1.0;
            q.next_batch(now);
            q.finish_iteration(now + 0.5);
        }
        q.next_batch(now + 1.0);
        assert_eq!(q.num_active(), 1);
        assert_eq!(q.queue_depth(), 0);
        assert!(q.peak_kv_tokens() <= 40);
    }

    #[test]
    fn oversized_requests_are_rejected_permanently() {
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 8, 40);
        q.offer(req(0, 100, 100, 0.0)); // can never fit
        q.offer(req(1, 10, 5, 0.0));
        q.next_batch(0.0);
        assert_eq!(q.rejected(), 1);
        // The queue did not head-of-line block on the impossible request.
        assert_eq!(q.num_active(), 1);
    }

    #[test]
    fn decode_only_skips_prefill_accounting() {
        let mut q = ServingQueue::new(SchedulingMode::DecodeOnly, 64, 8, u64::MAX);
        q.offer(req(0, 50, 2, 0.0));
        q.next_batch(0.0);
        q.finish_iteration(1.0);
        q.next_batch(1.0);
        q.finish_iteration(2.0);
        let records = q.drain_completed();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].prefill_scheduled, 0);
        assert_eq!(records[0].decode_scheduled, 2);
        let acc = q.accounting();
        assert_eq!(acc.admitted_prefill, 0);
        assert_eq!(acc.scheduled_prefill, 0);
        assert_eq!(acc.scheduled_decode, 2);
    }

    #[test]
    fn prefill_only_completes_at_handoff() {
        let mut q = ServingQueue::new(SchedulingMode::PrefillOnly, 32, 8, u64::MAX);
        q.offer(req(0, 48, 99, 0.0));
        let b = q.next_batch(0.0);
        assert_eq!((b.prefill_tokens, b.decode_tokens), (32, 0));
        q.finish_iteration(1.0);
        let b = q.next_batch(1.0);
        assert_eq!((b.prefill_tokens, b.decode_tokens), (16, 0));
        q.finish_iteration(2.0);
        let records = q.drain_completed();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].prefill_scheduled, 48);
        assert_eq!(records[0].decode_scheduled, 0);
        assert_eq!(records[0].first_token, records[0].finish);
        assert_eq!(records[0].tpot(), None);
    }

    #[test]
    fn batch_entries_attribute_every_token() {
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 8, u64::MAX);
        q.offer(req(7, 32, 4, 0.0));
        q.offer(req(9, 32, 4, 0.0));
        let mut seen_prefill = 0u32;
        let mut seen_decode = 0u32;
        let mut now = 0.0;
        for _ in 0..20 {
            let b = q.next_batch(now);
            let (ep, ed) = b.requests.iter().fold((0, 0), |(p, d), e| {
                (p + e.prefill_tokens, d + e.decode_tokens)
            });
            assert_eq!(ep, b.prefill_tokens, "entry/total prefill mismatch");
            assert_eq!(ed, b.decode_tokens, "entry/total decode mismatch");
            seen_prefill += ep;
            seen_decode += ed;
            now += 1.0;
            q.finish_iteration(now);
        }
        assert_eq!(seen_prefill, 64);
        assert_eq!(seen_decode, 8);
        let acc = q.accounting();
        assert_eq!(acc.scheduled_prefill, acc.admitted_prefill);
        assert_eq!(acc.scheduled_decode, acc.admitted_decode);
    }

    #[test]
    fn evictions_release_kv_and_unwind_accounting() {
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 1, 1_000);
        q.offer(req(0, 40, 4, 0.0)); // admits; prefill spans two iterations
        q.offer(req(1, 10, 2, 0.0)); // blocked by max_active = 1
        q.next_batch(0.0);
        q.finish_iteration(1.0);
        assert_eq!((q.num_active(), q.queue_depth()), (1, 1));
        assert_eq!(q.kv_tokens_in_use(), 44);

        let waiting = q.evict_waiting();
        assert_eq!(waiting.len(), 1);
        assert_eq!(waiting[0].id, RequestId(1));
        assert_eq!(q.queue_depth(), 0);

        let resident = q.evict_resident();
        assert_eq!(resident.len(), 1);
        assert_eq!(resident[0].request.id, RequestId(0));
        assert_eq!(resident[0].prefilled, 32); // one 32-token chunk done
        assert_eq!(resident[0].decoded, 0);
        assert_eq!(q.num_active(), 0);
        assert_eq!(q.kv_tokens_in_use(), 0);
        // Peak is a high-water mark: eviction does not rewind it.
        assert_eq!(q.peak_kv_tokens(), 44);
        // Accounting converges: the admitted debt shrinks to exactly the
        // tokens that were really scheduled before the eviction.
        let acc = q.accounting();
        assert_eq!(acc.admitted_prefill, acc.scheduled_prefill);
        assert_eq!(acc.admitted_decode, acc.scheduled_decode);
        // The queue keeps serving: a re-offered request admits cleanly.
        q.offer(req(2, 10, 2, 2.0));
        q.next_batch(2.0);
        assert_eq!(q.num_active(), 1);
    }

    #[test]
    fn interactive_admits_ahead_of_batch_at_the_same_barrier() {
        // One concurrency slot: the earlier-arrived batch request still
        // yields to the interactive one at the admission barrier.
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 1, u64::MAX);
        q.offer(batch_req(0, 8, 2, 0.0));
        q.offer(req(1, 8, 2, 0.5));
        q.next_batch(1.0);
        assert_eq!(q.num_active(), 1);
        assert_eq!(q.num_active_for(RequestClass::Interactive), 1);
        assert_eq!(q.num_active_for(RequestClass::Batch), 0);
        assert_eq!(q.queue_depth_for(RequestClass::Batch), 1);
        // Drain the interactive request; batch then admits.
        let mut now = 1.0;
        while q.completed().is_empty() {
            now += 1.0;
            q.next_batch(now);
            q.finish_iteration(now + 0.5);
        }
        q.next_batch(now + 1.0);
        assert_eq!(q.num_active_for(RequestClass::Batch), 1);
        let records = q.drain_completed();
        assert_eq!(records[0].class, RequestClass::Interactive);
    }

    #[test]
    fn expired_waiters_are_shed_and_counted() {
        let policy = ClassPolicy {
            shed_after: [None, Some(1.0)],
        };
        let mut q =
            ServingQueue::new(SchedulingMode::Hybrid, 64, 1, u64::MAX).with_class_policy(policy);
        q.offer(req(0, 800, 2, 0.0)); // hogs the single slot for a while
        q.offer(batch_req(1, 8, 2, 0.1));
        q.offer(batch_req(2, 8, 2, 0.2));
        q.next_batch(0.5); // admits the interactive hog; batch waits
        q.finish_iteration(1.0);
        assert_eq!(q.shed(), 0);
        q.next_batch(2.0); // both batch waiters are now past 1 s
        assert_eq!(q.shed(), 2);
        assert_eq!(q.shed_for(RequestClass::Batch), 2);
        assert_eq!(q.shed_for(RequestClass::Interactive), 0);
        assert_eq!(q.queue_depth(), 0);
        // Shed is not an admission reject.
        assert_eq!(q.rejected(), 0);
        // Conservation per class: offered == active + completed + shed.
        assert_eq!(q.offered_for(RequestClass::Batch), 2);
        assert_eq!(q.offered_for(RequestClass::Interactive), 1);
    }

    #[test]
    fn eviction_merge_restores_arrival_order() {
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 1, u64::MAX);
        q.offer(req(0, 8, 2, 0.0)); // takes the slot
        q.offer(batch_req(1, 8, 2, 1.0));
        q.offer(req(2, 8, 2, 2.0));
        q.offer(batch_req(3, 8, 2, 3.0));
        q.offer(req(4, 8, 2, 4.0));
        q.next_batch(5.0);
        q.finish_iteration(5.5);
        let evicted = q.evict_waiting();
        let ids: Vec<u64> = evicted.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4]);
        assert!(evicted.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    #[should_panic(expected = "iteration boundaries")]
    fn mid_iteration_eviction_panics() {
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 8, 1_000);
        q.offer(req(0, 8, 2, 0.0));
        q.next_batch(0.0); // iteration left open
        let _ = q.evict_resident();
    }

    #[test]
    #[should_panic(expected = "arrivals must be offered in order")]
    fn out_of_order_offer_panics() {
        let mut q = ServingQueue::new(SchedulingMode::Hybrid, 64, 8, 100);
        q.offer(req(0, 1, 1, 2.0));
        q.offer(req(1, 1, 1, 1.0));
    }
}
