//! Batch schedulers: prefill-only, decode-only, and hybrid serving.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use moe_model::InferencePhase;

use crate::requests::{Request, RequestGenerator};

/// Serving discipline (paper §VI-C): disaggregated prefill, disaggregated
/// decode, or Sarathi-style hybrid batches mixing a prefill chunk with
/// ongoing decodes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// The platform serves only prompt processing.
    PrefillOnly,
    /// The platform serves only token generation.
    DecodeOnly,
    /// Chunked prefill mixed into decode batches.
    Hybrid,
}

impl std::fmt::Display for SchedulingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulingMode::PrefillOnly => "Prefill-only",
            SchedulingMode::DecodeOnly => "Decode-only",
            SchedulingMode::Hybrid => "Hybrid",
        };
        f.write_str(s)
    }
}

/// The shape of one scheduled iteration (per DP group).
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Prompt tokens processed this iteration.
    pub prefill_tokens: u32,
    /// Generation tokens processed this iteration (one per active request).
    pub decode_tokens: u32,
    /// Average attended context length across the batch.
    pub avg_context: f64,
    /// Dominant phase, used to select the roofline variant.
    pub phase: InferencePhase,
}

impl BatchSpec {
    /// Total tokens entering the MoE layers this iteration.
    pub fn total_tokens(&self) -> u32 {
        self.prefill_tokens + self.decode_tokens
    }
}

#[derive(Clone, Debug)]
struct ActiveSequence {
    context: u32,
    remaining_output: u32,
}

/// A per-DP-group batch scheduler fed by a request generator.
///
/// Keeps a pool of admitted sequences: prefill work is consumed in chunks of
/// at most `max_batch_tokens`; each decode iteration advances every active
/// sequence by one token. Hybrid mode packs a prefill chunk alongside the
/// decodes (Sarathi-style), up to the token budget.
#[derive(Clone, Debug)]
pub struct BatchScheduler {
    mode: SchedulingMode,
    max_batch_tokens: u32,
    max_active: usize,
    generator: RequestGenerator,
    waiting: VecDeque<Request>,
    active: Vec<ActiveSequence>,
    horizon: f64,
    iteration_period: f64,
}

impl BatchScheduler {
    /// Creates a scheduler.
    ///
    /// * `max_batch_tokens` — per-iteration token budget per DP group.
    /// * `max_active` — concurrent decode sequences per DP group.
    /// * `iteration_period` — wall-clock seconds per iteration, used to admit
    ///   arrivals from the generator.
    ///
    /// # Panics
    ///
    /// Panics if any budget is zero or the period is non-positive.
    pub fn new(
        mode: SchedulingMode,
        max_batch_tokens: u32,
        max_active: usize,
        iteration_period: f64,
        generator: RequestGenerator,
    ) -> Self {
        assert!(max_batch_tokens > 0, "token budget must be positive");
        assert!(max_active > 0, "active budget must be positive");
        assert!(iteration_period > 0.0, "period must be positive");
        BatchScheduler {
            mode,
            max_batch_tokens,
            max_active,
            generator,
            waiting: VecDeque::new(),
            active: Vec::new(),
            horizon: 0.0,
            iteration_period,
        }
    }

    /// The scheduling mode.
    pub fn mode(&self) -> SchedulingMode {
        self.mode
    }

    /// Number of sequences currently decoding.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    fn admit_arrivals(&mut self) {
        self.horizon += self.iteration_period;
        // Pull arrivals up to the new horizon. Bound the pull so a burst
        // cannot stall the simulation.
        for _ in 0..10_000 {
            if let Some(last) = self.waiting.back() {
                if last.arrival > self.horizon {
                    break;
                }
            }
            let r = self.generator.next_request();
            let done = r.arrival > self.horizon;
            self.waiting.push_back(r);
            if done {
                break;
            }
        }
    }

    /// Schedules the next iteration.
    pub fn next_batch(&mut self) -> BatchSpec {
        self.admit_arrivals();

        // Promote waiting requests to active sequences (up to the cap).
        // In PrefillOnly mode the prefill output is handed to a decode tier,
        // so sequences never become active here.
        let mut prefill_tokens = 0u32;
        let prefill_budget = match self.mode {
            SchedulingMode::PrefillOnly => self.max_batch_tokens,
            SchedulingMode::Hybrid => self.max_batch_tokens / 2,
            SchedulingMode::DecodeOnly => 0,
        };
        let mut prefill_context = 0.0f64;
        let mut prefill_chunks = 0u32;
        while prefill_tokens < prefill_budget {
            let Some(front) = self.waiting.front() else {
                break;
            };
            if front.arrival > self.horizon {
                break;
            }
            if self.mode != SchedulingMode::PrefillOnly && self.active.len() >= self.max_active {
                break;
            }
            let r = self.waiting.pop_front().expect("checked front");
            let take = r.input_len.min(prefill_budget - prefill_tokens);
            prefill_tokens += take;
            prefill_context += r.input_len as f64 / 2.0;
            prefill_chunks += 1;
            if self.mode != SchedulingMode::PrefillOnly {
                self.active.push(ActiveSequence {
                    context: r.input_len,
                    remaining_output: r.output_len,
                });
            }
        }

        // Decode step for all active sequences.
        let mut decode_tokens = 0u32;
        let mut decode_context = 0.0f64;
        if self.mode != SchedulingMode::PrefillOnly {
            for seq in &mut self.active {
                seq.context += 1;
                seq.remaining_output = seq.remaining_output.saturating_sub(1);
                decode_tokens += 1;
                decode_context += seq.context as f64;
            }
            self.active.retain(|s| s.remaining_output > 0);
        }

        // In decode-only mode the prefill tier feeds us directly: admit
        // waiting requests as already-prefilled sequences.
        if self.mode == SchedulingMode::DecodeOnly {
            while self.active.len() < self.max_active {
                let Some(front) = self.waiting.front() else {
                    break;
                };
                if front.arrival > self.horizon {
                    break;
                }
                let r = self.waiting.pop_front().expect("checked front");
                self.active.push(ActiveSequence {
                    context: r.input_len,
                    remaining_output: r.output_len,
                });
            }
        }

        let total_ctx_samples = prefill_chunks as f64 + decode_tokens as f64;
        let avg_context = if total_ctx_samples == 0.0 {
            0.0
        } else {
            (prefill_context + decode_context) / total_ctx_samples
        };
        let phase = if decode_tokens >= prefill_tokens {
            InferencePhase::Decode
        } else {
            InferencePhase::Prefill
        };
        BatchSpec {
            prefill_tokens,
            decode_tokens,
            avg_context,
            phase,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::ArrivalProcess;
    use crate::scenario::Scenario;

    fn generator(rate: f64, seed: u64) -> RequestGenerator {
        RequestGenerator::new(
            ArrivalProcess::new(rate, 0.0, 60.0, seed),
            vec![(Scenario::Chat, 1.0), (Scenario::Math, 1.0)],
            seed,
        )
    }

    #[test]
    fn prefill_only_never_decodes() {
        let mut s = BatchScheduler::new(
            SchedulingMode::PrefillOnly,
            4096,
            64,
            0.05,
            generator(100.0, 1),
        );
        for _ in 0..50 {
            let b = s.next_batch();
            assert_eq!(b.decode_tokens, 0);
        }
    }

    #[test]
    fn decode_only_never_prefills() {
        let mut s = BatchScheduler::new(
            SchedulingMode::DecodeOnly,
            4096,
            64,
            0.05,
            generator(100.0, 2),
        );
        let mut saw_decode = false;
        for _ in 0..50 {
            let b = s.next_batch();
            assert_eq!(b.prefill_tokens, 0);
            saw_decode |= b.decode_tokens > 0;
        }
        assert!(saw_decode);
    }

    #[test]
    fn decode_reaches_active_cap_under_load() {
        let mut s = BatchScheduler::new(
            SchedulingMode::DecodeOnly,
            4096,
            32,
            0.05,
            generator(500.0, 3),
        );
        for _ in 0..100 {
            s.next_batch();
        }
        assert_eq!(s.num_active(), 32);
        let b = s.next_batch();
        assert_eq!(b.decode_tokens, 32);
        assert!(b.avg_context > 0.0);
    }

    #[test]
    fn hybrid_mixes_both() {
        let mut s = BatchScheduler::new(
            SchedulingMode::Hybrid,
            2048,
            64,
            0.05,
            generator(300.0, 4),
        );
        let mut saw_both = false;
        for _ in 0..100 {
            let b = s.next_batch();
            if b.prefill_tokens > 0 && b.decode_tokens > 0 {
                saw_both = true;
            }
        }
        assert!(saw_both, "hybrid never produced a mixed batch");
    }

    #[test]
    fn contexts_grow_during_decode() {
        let mut s = BatchScheduler::new(
            SchedulingMode::DecodeOnly,
            4096,
            8,
            0.05,
            generator(500.0, 5),
        );
        for _ in 0..20 {
            s.next_batch();
        }
        let early = s.next_batch().avg_context;
        for _ in 0..200 {
            s.next_batch();
        }
        let late = s.next_batch().avg_context;
        assert!(late > early, "context should grow: {early} -> {late}");
    }
}
