//! Batch schedulers: prefill-only, decode-only, and hybrid serving.
//!
//! [`BatchScheduler`] couples a [`RequestGenerator`] arrival stream to the
//! request-level [`ServingQueue`](crate::serving::ServingQueue): arrivals up
//! to the current simulated time are offered to the queue, which composes
//! each iteration's [`BatchSpec`] with per-request token attribution and
//! tracks every request's lifecycle (see `crate::serving`).

use serde::{Deserialize, Serialize};

use moe_model::InferencePhase;

use crate::requests::{Request, RequestGenerator, RequestId};
use crate::serving::{ClassPolicy, InterruptedRequest, RequestRecord, ServingQueue};

/// Serving discipline (paper §VI-C): disaggregated prefill, disaggregated
/// decode, or Sarathi-style hybrid batches mixing a prefill chunk with
/// ongoing decodes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// The platform serves only prompt processing.
    PrefillOnly,
    /// The platform serves only token generation.
    DecodeOnly,
    /// Chunked prefill mixed into decode batches.
    Hybrid,
}

impl SchedulingMode {
    /// KV tokens `request` must reserve against a serving queue's budget
    /// under this discipline — the single definition of the admission
    /// footprint, shared by [`ServingQueue`](crate::serving::ServingQueue)
    /// admission and router-side reject prediction
    /// ([`ReplicaSnapshot`](crate::router::ReplicaSnapshot)). The prefill
    /// tier hands the sequence off at first token, so it only ever holds
    /// the prompt's KV.
    pub fn kv_need(self, request: &Request) -> u64 {
        match self {
            SchedulingMode::PrefillOnly => request.input_len as u64,
            _ => request.input_len as u64 + request.output_len as u64,
        }
    }
}

impl std::fmt::Display for SchedulingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SchedulingMode::PrefillOnly => "Prefill-only",
            SchedulingMode::DecodeOnly => "Decode-only",
            SchedulingMode::Hybrid => "Hybrid",
        };
        f.write_str(s)
    }
}

impl SchedulingMode {
    /// Stable lowercase name (`"prefill"` / `"decode"` / `"hybrid"`),
    /// matching the `FromStr` spelling and the scenario-spec JSON encoding
    /// (the capitalized [`Display`](std::fmt::Display) form is for
    /// human-readable reports).
    pub fn name(self) -> &'static str {
        match self {
            SchedulingMode::PrefillOnly => "prefill",
            SchedulingMode::DecodeOnly => "decode",
            SchedulingMode::Hybrid => "hybrid",
        }
    }
}

impl std::str::FromStr for SchedulingMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "prefill" | "prefill-only" => Ok(SchedulingMode::PrefillOnly),
            "decode" | "decode-only" => Ok(SchedulingMode::DecodeOnly),
            "hybrid" => Ok(SchedulingMode::Hybrid),
            other => Err(format!(
                "unknown scheduling mode {other:?} (expected \"prefill\", \
                 \"decode\", or \"hybrid\")"
            )),
        }
    }
}

/// Most arrivals one scheduling step will pull into a queue (or one fleet
/// synchronization round will route): bounds the work a burst — or an
/// extreme configured rate — can do before the simulation advances, while
/// the overflow stays in the generator and drains over subsequent steps.
pub const MAX_ARRIVALS_PER_PULL: usize = 10_000;

/// Per-request token attribution inside one scheduled iteration: which
/// request the tokens belong to, and how many of each kind it received.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct BatchEntry {
    /// The request the tokens belong to.
    pub id: RequestId,
    /// Prompt tokens scheduled for this request this iteration (one chunk).
    pub prefill_tokens: u32,
    /// Output tokens scheduled for this request this iteration (0 or 1).
    pub decode_tokens: u32,
}

/// The shape of one scheduled iteration (per DP group), carrying both the
/// aggregate token counts the cost model prices and the per-request
/// attribution ([`BatchEntry`]) the serving metrics are derived from.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Prompt tokens processed this iteration.
    pub prefill_tokens: u32,
    /// Generation tokens processed this iteration (one per active request).
    pub decode_tokens: u32,
    /// Average attended context length across the batch.
    pub avg_context: f64,
    /// Dominant phase, used to select the roofline variant.
    pub phase: InferencePhase,
    /// Per-request token attribution (empty for an idle iteration). Entry
    /// token counts always sum to `prefill_tokens` / `decode_tokens`.
    pub requests: Vec<BatchEntry>,
}

impl BatchSpec {
    /// Total tokens entering the MoE layers this iteration.
    pub fn total_tokens(&self) -> u32 {
        self.prefill_tokens + self.decode_tokens
    }
}

/// A per-DP-group batch scheduler fed by a request generator.
///
/// Wraps a [`ServingQueue`] (admission, continuous batching, lifecycle
/// records) and pulls arrivals from the generator up to the scheduling
/// clock. Two clock styles are supported:
///
/// * [`BatchScheduler::next_batch`] — legacy fixed-period mode: every call
///   advances an internal horizon by `iteration_period` seconds.
/// * [`BatchScheduler::next_batch_at`] /
///   [`BatchScheduler::finish_iteration`] — engine-driven mode: the caller
///   advances simulated wall-clock time from each iteration's priced
///   duration, so per-request TTFT / TPOT / latency reflect the modeled
///   hardware speed.
#[derive(Clone, Debug)]
pub struct BatchScheduler {
    queue: ServingQueue,
    /// Arrival source. `None` for externally-fed schedulers (fleet
    /// replicas), whose arrivals are [`BatchScheduler::offer`]ed by a
    /// router instead of pulled from a generator.
    generator: Option<RequestGenerator>,
    /// First generated request not yet released to the queue (its arrival
    /// is beyond the clock).
    lookahead: Option<Request>,
    clock: f64,
    iteration_period: f64,
}

impl BatchScheduler {
    /// Creates a scheduler with an unbounded KV budget.
    ///
    /// * `max_batch_tokens` — per-iteration token budget per DP group.
    /// * `max_active` — concurrent resident sequences per DP group.
    /// * `iteration_period` — wall-clock seconds per iteration in the
    ///   legacy fixed-period mode (engine-driven callers pass explicit
    ///   times to [`BatchScheduler::next_batch_at`] instead).
    ///
    /// # Panics
    ///
    /// Panics if any budget is zero or the period is non-positive.
    pub fn new(
        mode: SchedulingMode,
        max_batch_tokens: u32,
        max_active: usize,
        iteration_period: f64,
        generator: RequestGenerator,
    ) -> Self {
        assert!(iteration_period > 0.0, "period must be positive");
        BatchScheduler {
            queue: ServingQueue::new(mode, max_batch_tokens, max_active, u64::MAX),
            generator: Some(generator),
            lookahead: None,
            clock: 0.0,
            iteration_period,
        }
    }

    /// Creates an externally-fed scheduler (no arrival generator): requests
    /// enter only through [`BatchScheduler::offer`]. This is the fleet
    /// deployment shape, where a front-end router owns the global arrival
    /// stream and dispatches requests to replica schedulers.
    ///
    /// # Panics
    ///
    /// Panics if any budget is zero.
    pub fn external(mode: SchedulingMode, max_batch_tokens: u32, max_active: usize) -> Self {
        BatchScheduler {
            queue: ServingQueue::new(mode, max_batch_tokens, max_active, u64::MAX),
            generator: None,
            lookahead: None,
            clock: 0.0,
            iteration_period: 1.0,
        }
    }

    /// Feeds one routed arrival to the queue. Requests must be offered in
    /// non-decreasing arrival order (see [`ServingQueue::offer`]).
    pub fn offer(&mut self, request: Request) {
        self.queue.offer(request);
    }

    /// Bounds the KV-token budget gating admission (builder style). See
    /// [`ServingQueue::new`].
    ///
    /// # Panics
    ///
    /// Panics if any scheduling has already happened — the queue is rebuilt,
    /// so changing the budget mid-run would silently discard resident
    /// requests and lifecycle records.
    pub fn with_kv_budget(mut self, kv_budget_tokens: u64) -> Self {
        assert!(
            self.clock == 0.0
                && self.queue.num_active() == 0
                && self.queue.queue_depth() == 0
                && self.queue.completed().is_empty(),
            "with_kv_budget must be called before scheduling starts"
        );
        let (mode, tokens, active) = (
            self.queue.mode(),
            self.max_batch_tokens(),
            self.max_active(),
        );
        // The rebuild must carry the class policy, or a policy set before
        // the KV budget would silently vanish.
        let policy = self.queue.class_policy();
        self.queue =
            ServingQueue::new(mode, tokens, active, kv_budget_tokens).with_class_policy(policy);
        self
    }

    /// Sets the per-class admission policy (builder style). See
    /// [`ServingQueue::with_class_policy`].
    ///
    /// # Panics
    ///
    /// Panics if any scheduling has already happened.
    pub fn with_class_policy(mut self, policy: ClassPolicy) -> Self {
        assert!(
            self.clock == 0.0
                && self.queue.num_active() == 0
                && self.queue.queue_depth() == 0
                && self.queue.completed().is_empty(),
            "with_class_policy must be called before scheduling starts"
        );
        self.queue = self.queue.with_class_policy(policy);
        self
    }

    fn max_batch_tokens(&self) -> u32 {
        // The queue is the single owner of the budgets; recover them for
        // the builder without duplicating state.
        self.queue_budget().0
    }

    fn max_active(&self) -> usize {
        self.queue_budget().1
    }

    fn queue_budget(&self) -> (u32, usize) {
        (self.queue.max_batch_tokens(), self.queue.max_active())
    }

    /// The scheduling mode.
    pub fn mode(&self) -> SchedulingMode {
        self.queue.mode()
    }

    /// Number of sequences currently admitted (prefilling or decoding).
    pub fn num_active(&self) -> usize {
        self.queue.num_active()
    }

    /// The underlying serving queue (lifecycle records, KV accounting).
    pub fn queue(&self) -> &ServingQueue {
        &self.queue
    }

    /// Removes and returns the completed-request records.
    pub fn drain_completed(&mut self) -> Vec<RequestRecord> {
        self.queue.drain_completed()
    }

    /// Removes and returns every not-yet-admitted request (drain/crash
    /// re-routing; see [`ServingQueue::evict_waiting`]).
    pub fn evict_waiting(&mut self) -> Vec<Request> {
        self.queue.evict_waiting()
    }

    /// Removes and returns every resident request with its lost progress
    /// (replica crash; see [`ServingQueue::evict_resident`]).
    pub fn evict_resident(&mut self) -> Vec<InterruptedRequest> {
        self.queue.evict_resident()
    }

    /// Cancels one request by id — the speculative-race loser path (see
    /// [`ServingQueue::cancel_request`]). Returns whether a copy was found.
    pub fn cancel_request(&mut self, id: crate::requests::RequestId) -> bool {
        self.queue.cancel_request(id)
    }

    /// Pulls generated arrivals with `arrival <= now` into the queue.
    /// A no-op for externally-fed schedulers.
    fn pull_arrivals(&mut self, now: f64) {
        let Some(generator) = self.generator.as_mut() else {
            return;
        };
        if let Some(r) = self.lookahead.take() {
            if r.arrival <= now {
                self.queue.offer(r);
            } else {
                self.lookahead = Some(r);
                return;
            }
        }
        // Bound the pull so a burst cannot stall the simulation.
        for _ in 0..MAX_ARRIVALS_PER_PULL {
            // A replayed trace is finite: once exhausted, nothing more to
            // pull, ever.
            let Some(r) = generator.next_request() else {
                break;
            };
            if r.arrival > now {
                self.lookahead = Some(r);
                break;
            }
            self.queue.offer(r);
        }
    }

    /// Schedules the next iteration in legacy fixed-period mode: the clock
    /// advances by `iteration_period` and any previous iteration is closed
    /// at the new time.
    pub fn next_batch(&mut self) -> BatchSpec {
        let now = self.clock + self.iteration_period;
        self.next_batch_at(now)
    }

    /// Schedules the iteration starting at simulated time `now` (must not
    /// go backwards). An unclosed previous iteration is finished at `now`.
    pub fn next_batch_at(&mut self, now: f64) -> BatchSpec {
        self.clock = self.clock.max(now);
        self.pull_arrivals(self.clock);
        self.queue.next_batch(self.clock)
    }

    /// Closes the in-flight iteration at simulated time `end`, stamping
    /// first-token and completion events (see
    /// [`ServingQueue::finish_iteration`]).
    pub fn finish_iteration(&mut self, end: f64) {
        self.clock = self.clock.max(end);
        self.queue.finish_iteration(end);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requests::ArrivalProcess;
    use crate::scenario::Scenario;

    fn generator(rate: f64, seed: u64) -> RequestGenerator {
        RequestGenerator::new(
            ArrivalProcess::new(rate, 0.0, 60.0, seed),
            vec![(Scenario::Chat, 1.0), (Scenario::Math, 1.0)],
            seed,
        )
    }

    #[test]
    fn prefill_only_never_decodes() {
        let mut s = BatchScheduler::new(
            SchedulingMode::PrefillOnly,
            4096,
            64,
            0.05,
            generator(100.0, 1),
        );
        for _ in 0..50 {
            let b = s.next_batch();
            assert_eq!(b.decode_tokens, 0);
        }
    }

    #[test]
    fn decode_only_never_prefills() {
        let mut s = BatchScheduler::new(
            SchedulingMode::DecodeOnly,
            4096,
            64,
            0.05,
            generator(100.0, 2),
        );
        let mut saw_decode = false;
        for _ in 0..50 {
            let b = s.next_batch();
            assert_eq!(b.prefill_tokens, 0);
            saw_decode |= b.decode_tokens > 0;
        }
        assert!(saw_decode);
    }

    #[test]
    fn decode_reaches_active_cap_under_load() {
        let mut s = BatchScheduler::new(
            SchedulingMode::DecodeOnly,
            4096,
            32,
            0.05,
            generator(500.0, 3),
        );
        for _ in 0..100 {
            s.next_batch();
        }
        assert_eq!(s.num_active(), 32);
        let b = s.next_batch();
        assert_eq!(b.decode_tokens, 32);
        assert!(b.avg_context > 0.0);
    }

    #[test]
    fn hybrid_mixes_both() {
        let mut s =
            BatchScheduler::new(SchedulingMode::Hybrid, 2048, 64, 0.05, generator(300.0, 4));
        let mut saw_both = false;
        for _ in 0..100 {
            let b = s.next_batch();
            if b.prefill_tokens > 0 && b.decode_tokens > 0 {
                saw_both = true;
            }
        }
        assert!(saw_both, "hybrid never produced a mixed batch");
    }

    #[test]
    fn contexts_grow_during_decode() {
        let mut s = BatchScheduler::new(
            SchedulingMode::DecodeOnly,
            4096,
            8,
            0.05,
            generator(500.0, 5),
        );
        for _ in 0..20 {
            s.next_batch();
        }
        let early = s.next_batch().avg_context;
        for _ in 0..200 {
            s.next_batch();
        }
        let late = s.next_batch().avg_context;
        assert!(late > early, "context should grow: {early} -> {late}");
    }

    #[test]
    fn entries_sum_to_totals_and_requests_complete() {
        let mut s =
            BatchScheduler::new(SchedulingMode::Hybrid, 2048, 64, 0.05, generator(200.0, 6));
        for _ in 0..400 {
            let b = s.next_batch();
            let (p, d) = b.requests.iter().fold((0u32, 0u32), |(p, d), e| {
                (p + e.prefill_tokens, d + e.decode_tokens)
            });
            assert_eq!((p, d), (b.prefill_tokens, b.decode_tokens));
        }
        let records = s.drain_completed();
        assert!(!records.is_empty(), "no request finished in 400 iterations");
        for r in &records {
            assert_eq!(r.prefill_scheduled, r.input_len);
            assert_eq!(r.decode_scheduled, r.output_len);
            assert!(r.ttft() > 0.0 && r.ttft() <= r.e2e_latency());
        }
    }

    #[test]
    fn engine_driven_clock_stamps_priced_durations() {
        let mut s = BatchScheduler::new(
            SchedulingMode::DecodeOnly,
            4096,
            16,
            0.05,
            generator(400.0, 7),
        );
        let mut now = 0.0;
        for _ in 0..200 {
            s.next_batch_at(now);
            now += 0.125; // "priced" iteration duration
            s.finish_iteration(now);
        }
        let records = s.drain_completed();
        assert!(!records.is_empty());
        for r in &records {
            // Completions land exactly on iteration boundaries.
            let steps = r.finish / 0.125;
            assert!((steps - steps.round()).abs() < 1e-9, "{}", r.finish);
            assert!(r.first_token <= r.finish);
        }
    }
}
