//! First-class workload profiles: arrival sources and tenant classes.
//!
//! The paper evaluates large-scale EP serving against production-shaped
//! traffic; before this module the simulator only offered one synthetic
//! arrival process — a diurnal Poisson with hard-coded constants, built
//! twice (engine and fleet). A [`WorkloadProfile`] promotes the workload to
//! data:
//!
//! * **Arrival sources** ([`ArrivalSpec`]): the parameterised diurnal
//!   Poisson (the old constants are now [`DEFAULT_DIURNAL_AMPLITUDE`] /
//!   [`DEFAULT_DIURNAL_PERIOD_SECS`]), piecewise-constant phase lists
//!   (bursts, spikes, ramps — the spec layer expands its shape generators
//!   into these), and replay of timestamped request traces.
//! * **Tenant classes** ([`ClassSpec`]): each request carries a
//!   [`RequestClass`] (interactive vs. batch) with its own SLO targets and
//!   an optional admission deadline; the serving queue schedules
//!   interactive ahead of batch and sheds requests whose deadline passed.
//!
//! Everything validates through the typed [`WorkloadError`] (the
//! `try_new`/panicking-wrapper convention shared with `ConfigError`), and
//! the default profile reproduces the pre-profile arrival stream
//! bit-for-bit.

use serde::{Deserialize, Serialize};

use crate::scenario::Scenario;

/// Diurnal amplitude of the default arrival process (±30 % swing), the
/// value the engine previously hard-coded.
pub const DEFAULT_DIURNAL_AMPLITUDE: f64 = 0.3;

/// Diurnal period of the default arrival process: 10 simulated minutes,
/// compressed from the 24 h Azure cycle so sweeps see full cycles.
pub const DEFAULT_DIURNAL_PERIOD_SECS: f64 = 600.0;

/// Why a workload profile (arrival source, phase list, trace, or tenant
/// class set) cannot be materialized.
#[derive(Clone, PartialEq, Debug)]
pub enum WorkloadError {
    /// The base arrival rate must be positive.
    NonPositiveRate {
        /// The rejected value.
        value: f64,
    },
    /// The diurnal period must be positive.
    NonPositivePeriod {
        /// The rejected value.
        value: f64,
    },
    /// The diurnal amplitude must be in `[0, 1)` (the instantaneous rate
    /// must stay positive).
    AmplitudeOutOfRange {
        /// The rejected value.
        value: f64,
    },
    /// The scenario blend must be non-empty with a positive weight total.
    NoScenarioWeights,
    /// A phase list needs at least one phase.
    EmptyPhases,
    /// Every phase duration must be positive and finite.
    BadPhaseDuration {
        /// Position of the offending phase.
        index: usize,
        /// The rejected duration.
        value: f64,
    },
    /// Every phase rate factor must be finite and non-negative.
    BadPhaseFactor {
        /// Position of the offending phase.
        index: usize,
        /// The rejected factor.
        value: f64,
    },
    /// At least one phase must have a positive rate factor (an all-zero
    /// cycle never produces an arrival).
    AllPhasesSilent,
    /// A trace needs at least one request.
    EmptyTrace,
    /// Trace arrivals must be finite, non-negative, and non-decreasing;
    /// `index` is the first row out of order.
    TraceUnsorted {
        /// Position of the offending row.
        index: usize,
    },
    /// Trace token lengths must be ≥ 1.
    TraceZeroLength {
        /// Position of the offending row.
        index: usize,
    },
    /// A profile needs at least one tenant class.
    NoClasses,
    /// Each tenant class may appear at most once.
    DuplicateClass {
        /// The repeated class.
        class: RequestClass,
    },
    /// Class weights must be finite and non-negative, with a positive
    /// total.
    BadClassWeight {
        /// The offending class.
        class: RequestClass,
        /// The rejected weight.
        value: f64,
    },
    /// SLO targets (TTFT / TPOT) must be positive and finite.
    BadSloTarget {
        /// The offending class.
        class: RequestClass,
        /// The rejected target.
        value: f64,
    },
    /// An admission deadline (`shed_after`) must be positive and finite.
    BadShedDeadline {
        /// The offending class.
        class: RequestClass,
        /// The rejected deadline.
        value: f64,
    },
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // The first four texts are pinned by pre-existing
            // `should_panic` contracts on the panicking wrappers.
            WorkloadError::NonPositiveRate { value } => {
                write!(f, "rate must be positive, got {value}")
            }
            WorkloadError::NonPositivePeriod { value } => {
                write!(f, "period must be positive, got {value}")
            }
            WorkloadError::AmplitudeOutOfRange { value } => {
                write!(f, "amplitude must be in [0,1), got {value}")
            }
            WorkloadError::NoScenarioWeights => {
                write!(f, "need positive scenario weights")
            }
            WorkloadError::EmptyPhases => write!(f, "phase list must be non-empty"),
            WorkloadError::BadPhaseDuration { index, value } => {
                write!(f, "phase {index}: duration must be positive, got {value}")
            }
            WorkloadError::BadPhaseFactor { index, value } => {
                write!(
                    f,
                    "phase {index}: rate factor must be finite and ≥ 0, got {value}"
                )
            }
            WorkloadError::AllPhasesSilent => {
                write!(f, "at least one phase needs a positive rate factor")
            }
            WorkloadError::EmptyTrace => write!(f, "trace must contain at least one request"),
            WorkloadError::TraceUnsorted { index } => {
                write!(
                    f,
                    "trace row {index}: arrivals must be finite, non-negative, and non-decreasing"
                )
            }
            WorkloadError::TraceZeroLength { index } => {
                write!(f, "trace row {index}: token lengths must be ≥ 1")
            }
            WorkloadError::NoClasses => write!(f, "need at least one tenant class"),
            WorkloadError::DuplicateClass { class } => {
                write!(f, "class {class:?} listed more than once")
            }
            WorkloadError::BadClassWeight { class, value } => {
                write!(f, "class {class:?}: weight must be ≥ 0, got {value}")
            }
            WorkloadError::BadSloTarget { class, value } => {
                write!(
                    f,
                    "class {class:?}: SLO target must be positive, got {value}"
                )
            }
            WorkloadError::BadShedDeadline { class, value } => {
                write!(
                    f,
                    "class {class:?}: shed_after must be positive, got {value}"
                )
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Tenant class of a request: the SLO tier it is served under.
///
/// Interactive traffic is scheduled ahead of batch at every admission
/// barrier and is the default class everywhere (the single-class profile
/// reproduces pre-class behavior bit-for-bit).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum RequestClass {
    /// Latency-sensitive traffic (chatbots, IDE completions).
    #[default]
    Interactive,
    /// Throughput-oriented background traffic (evals, batch summarization).
    Batch,
}

impl RequestClass {
    /// All classes, in scheduling-priority order.
    pub fn all() -> [RequestClass; 2] {
        [RequestClass::Interactive, RequestClass::Batch]
    }

    /// Stable lowercase name (`"interactive"` / `"batch"`), matching the
    /// `FromStr` spelling and the JSON encodings.
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Interactive => "interactive",
            RequestClass::Batch => "batch",
        }
    }

    /// Dense index (priority order), for per-class counter arrays.
    pub fn index(self) -> usize {
        match self {
            RequestClass::Interactive => 0,
            RequestClass::Batch => 1,
        }
    }
}

impl std::fmt::Display for RequestClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for RequestClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "interactive" => Ok(RequestClass::Interactive),
            "batch" => Ok(RequestClass::Batch),
            other => Err(format!(
                "unknown request class {other:?} (expected \"interactive\" or \"batch\")"
            )),
        }
    }
}

/// One tenant class in a workload: its share of generated traffic, its SLO
/// targets (for attainment reporting), and an optional admission deadline
/// (for load shedding).
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClassSpec {
    /// The class this entry configures.
    pub class: RequestClass,
    /// Relative share of generated requests (normalised internally).
    pub weight: f64,
    /// Time-to-first-token target, seconds (attainment = fraction of
    /// completed requests with TTFT ≤ this).
    pub ttft_slo: f64,
    /// Time-per-output-token target, seconds.
    pub tpot_slo: f64,
    /// If set, requests still waiting this many seconds after arrival are
    /// shed at the next admission barrier (counted as a typed reject).
    pub shed_after: Option<f64>,
}

impl ClassSpec {
    /// The default interactive class: weight 1, 200 ms TTFT / 50 ms TPOT
    /// targets, no shedding.
    pub fn interactive() -> Self {
        ClassSpec {
            class: RequestClass::Interactive,
            weight: 1.0,
            ttft_slo: 0.2,
            tpot_slo: 0.05,
            shed_after: None,
        }
    }

    /// The default batch class: weight 1, relaxed 2 s TTFT / 500 ms TPOT
    /// targets, no shedding.
    pub fn batch() -> Self {
        ClassSpec {
            class: RequestClass::Batch,
            weight: 1.0,
            ttft_slo: 2.0,
            tpot_slo: 0.5,
            shed_after: None,
        }
    }

    /// Builder: replaces the traffic weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Builder: replaces the SLO targets.
    pub fn with_slo(mut self, ttft_slo: f64, tpot_slo: f64) -> Self {
        self.ttft_slo = ttft_slo;
        self.tpot_slo = tpot_slo;
        self
    }

    /// Builder: sets the admission deadline.
    pub fn with_shed_after(mut self, deadline: f64) -> Self {
        self.shed_after = Some(deadline);
        self
    }
}

/// One piecewise-constant rate segment: for `duration` seconds the
/// instantaneous arrival rate is `rate_factor × base_rate`.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Phase {
    /// Segment length, seconds.
    pub duration: f64,
    /// Multiplier applied to the base request rate during this segment.
    pub rate_factor: f64,
}

/// One timestamped request row of a replay trace.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TraceRequest {
    /// Arrival time, seconds since trace start (non-decreasing).
    pub arrival: f64,
    /// Scenario of the request (selects expert-affinity behavior).
    pub scenario: Scenario,
    /// Prompt length, tokens.
    pub input_len: u32,
    /// Output length, tokens.
    pub output_len: u32,
    /// Tenant class of the request.
    pub class: RequestClass,
}

/// Where arrivals come from: the sampled diurnal Poisson, a sampled
/// piecewise phase schedule, or replay of a recorded trace.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// Time-varying Poisson with rate
    /// `base_rate × (1 + amplitude·sin(2πt/period))`.
    Diurnal {
        /// Diurnal amplitude in `[0, 1)`.
        amplitude: f64,
        /// Cycle period, seconds.
        period: f64,
    },
    /// Piecewise-constant Poisson: the phase list cycles, each phase
    /// multiplying the base rate by its factor.
    Phases(Vec<Phase>),
    /// Replay the exact rows of a recorded trace (ignores the base rate;
    /// the rows carry their own arrivals, lengths, and classes).
    Trace(Vec<TraceRequest>),
}

impl Default for ArrivalSpec {
    fn default() -> Self {
        ArrivalSpec::Diurnal {
            amplitude: DEFAULT_DIURNAL_AMPLITUDE,
            period: DEFAULT_DIURNAL_PERIOD_SECS,
        }
    }
}

impl ArrivalSpec {
    /// Validates the source's own constraints (everything except the base
    /// rate, which belongs to the engine/fleet knob that owns it).
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match self {
            ArrivalSpec::Diurnal { amplitude, period } => {
                if *period <= 0.0 || !period.is_finite() {
                    return Err(WorkloadError::NonPositivePeriod { value: *period });
                }
                if !(0.0..1.0).contains(amplitude) {
                    return Err(WorkloadError::AmplitudeOutOfRange { value: *amplitude });
                }
                Ok(())
            }
            ArrivalSpec::Phases(phases) => validate_phases(phases),
            ArrivalSpec::Trace(rows) => validate_trace(rows),
        }
    }
}

/// Validates a phase list: non-empty, positive finite durations, finite
/// non-negative factors, at least one factor positive.
pub fn validate_phases(phases: &[Phase]) -> Result<(), WorkloadError> {
    if phases.is_empty() {
        return Err(WorkloadError::EmptyPhases);
    }
    for (index, p) in phases.iter().enumerate() {
        if p.duration <= 0.0 || !p.duration.is_finite() {
            return Err(WorkloadError::BadPhaseDuration {
                index,
                value: p.duration,
            });
        }
        if p.rate_factor < 0.0 || !p.rate_factor.is_finite() {
            return Err(WorkloadError::BadPhaseFactor {
                index,
                value: p.rate_factor,
            });
        }
    }
    if !phases.iter().any(|p| p.rate_factor > 0.0) {
        return Err(WorkloadError::AllPhasesSilent);
    }
    Ok(())
}

/// Validates a trace: non-empty, arrivals finite / non-negative /
/// non-decreasing, token lengths ≥ 1.
pub fn validate_trace(rows: &[TraceRequest]) -> Result<(), WorkloadError> {
    if rows.is_empty() {
        return Err(WorkloadError::EmptyTrace);
    }
    let mut last = 0.0f64;
    for (index, row) in rows.iter().enumerate() {
        if !row.arrival.is_finite() || row.arrival < last {
            return Err(WorkloadError::TraceUnsorted { index });
        }
        if row.input_len == 0 || row.output_len == 0 {
            return Err(WorkloadError::TraceZeroLength { index });
        }
        last = row.arrival;
    }
    Ok(())
}

/// Validates a class list: non-empty, no duplicates, finite non-negative
/// weights with a positive total, positive SLO targets and deadlines.
pub fn validate_classes(classes: &[ClassSpec]) -> Result<(), WorkloadError> {
    if classes.is_empty() {
        return Err(WorkloadError::NoClasses);
    }
    let mut seen = [false; 2];
    let mut total = 0.0;
    for c in classes {
        if seen[c.class.index()] {
            return Err(WorkloadError::DuplicateClass { class: c.class });
        }
        seen[c.class.index()] = true;
        if c.weight < 0.0 || !c.weight.is_finite() {
            return Err(WorkloadError::BadClassWeight {
                class: c.class,
                value: c.weight,
            });
        }
        total += c.weight;
        for slo in [c.ttft_slo, c.tpot_slo] {
            if slo <= 0.0 || !slo.is_finite() {
                return Err(WorkloadError::BadSloTarget {
                    class: c.class,
                    value: slo,
                });
            }
        }
        if let Some(deadline) = c.shed_after {
            if deadline <= 0.0 || !deadline.is_finite() {
                return Err(WorkloadError::BadShedDeadline {
                    class: c.class,
                    value: deadline,
                });
            }
        }
    }
    if total <= 0.0 {
        return Err(WorkloadError::BadClassWeight {
            class: classes[0].class,
            value: total,
        });
    }
    Ok(())
}

/// A complete workload description: where arrivals come from and which
/// tenant classes they belong to.
///
/// The default profile — the diurnal source with the legacy constants and
/// a single interactive class — is what every engine/fleet uses when no
/// workload is configured, and reproduces the pre-profile request stream
/// bit-for-bit (class assignment consumes no RNG draws when only one class
/// has positive weight).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// The arrival source.
    pub arrivals: ArrivalSpec,
    /// The tenant classes (traffic shares, SLO targets, shed deadlines).
    pub classes: Vec<ClassSpec>,
}

impl Default for WorkloadProfile {
    fn default() -> Self {
        WorkloadProfile {
            arrivals: ArrivalSpec::default(),
            classes: vec![ClassSpec::interactive()],
        }
    }
}

impl WorkloadProfile {
    /// Validates the arrival source and the class list.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        self.arrivals.validate()?;
        validate_classes(&self.classes)
    }

    /// Whether this is the default profile (used by byte-stability gates:
    /// workload-free scenarios must not grow new manifest sections).
    pub fn is_default(&self) -> bool {
        *self == WorkloadProfile::default()
    }

    /// The configured spec for `class`, if present.
    pub fn class_spec(&self, class: RequestClass) -> Option<&ClassSpec> {
        self.classes.iter().find(|c| c.class == class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_is_valid_and_single_interactive() {
        let p = WorkloadProfile::default();
        p.validate().unwrap();
        assert!(p.is_default());
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].class, RequestClass::Interactive);
        assert_eq!(
            p.arrivals,
            ArrivalSpec::Diurnal {
                amplitude: DEFAULT_DIURNAL_AMPLITUDE,
                period: DEFAULT_DIURNAL_PERIOD_SECS,
            }
        );
    }

    #[test]
    fn class_names_round_trip() {
        for class in RequestClass::all() {
            assert_eq!(class.name().parse::<RequestClass>().unwrap(), class);
        }
        assert!("premium".parse::<RequestClass>().is_err());
        assert_eq!(RequestClass::default(), RequestClass::Interactive);
    }

    #[test]
    fn phase_validation_rejects_exact_variants() {
        assert_eq!(validate_phases(&[]), Err(WorkloadError::EmptyPhases));
        let bad_duration = [Phase {
            duration: 0.0,
            rate_factor: 1.0,
        }];
        assert_eq!(
            validate_phases(&bad_duration),
            Err(WorkloadError::BadPhaseDuration {
                index: 0,
                value: 0.0
            })
        );
        let bad_factor = [
            Phase {
                duration: 1.0,
                rate_factor: 1.0,
            },
            Phase {
                duration: 1.0,
                rate_factor: -2.0,
            },
        ];
        assert_eq!(
            validate_phases(&bad_factor),
            Err(WorkloadError::BadPhaseFactor {
                index: 1,
                value: -2.0
            })
        );
        let silent = [Phase {
            duration: 1.0,
            rate_factor: 0.0,
        }];
        assert_eq!(
            validate_phases(&silent),
            Err(WorkloadError::AllPhasesSilent)
        );
        validate_phases(&[
            Phase {
                duration: 5.0,
                rate_factor: 0.0,
            },
            Phase {
                duration: 1.0,
                rate_factor: 8.0,
            },
        ])
        .unwrap();
    }

    #[test]
    fn trace_validation_rejects_exact_variants() {
        assert_eq!(validate_trace(&[]), Err(WorkloadError::EmptyTrace));
        let row = |arrival: f64| TraceRequest {
            arrival,
            scenario: Scenario::Chat,
            input_len: 8,
            output_len: 4,
            class: RequestClass::Interactive,
        };
        assert_eq!(
            validate_trace(&[row(1.0), row(0.5)]),
            Err(WorkloadError::TraceUnsorted { index: 1 })
        );
        assert_eq!(
            validate_trace(&[row(-1.0)]),
            Err(WorkloadError::TraceUnsorted { index: 0 })
        );
        let mut zero = row(0.0);
        zero.input_len = 0;
        assert_eq!(
            validate_trace(&[zero]),
            Err(WorkloadError::TraceZeroLength { index: 0 })
        );
        validate_trace(&[row(0.0), row(0.0), row(2.5)]).unwrap();
    }

    #[test]
    fn class_validation_rejects_exact_variants() {
        assert_eq!(validate_classes(&[]), Err(WorkloadError::NoClasses));
        assert_eq!(
            validate_classes(&[ClassSpec::interactive(), ClassSpec::interactive()]),
            Err(WorkloadError::DuplicateClass {
                class: RequestClass::Interactive
            })
        );
        assert_eq!(
            validate_classes(&[ClassSpec::interactive().with_weight(-1.0)]),
            Err(WorkloadError::BadClassWeight {
                class: RequestClass::Interactive,
                value: -1.0
            })
        );
        assert_eq!(
            validate_classes(&[ClassSpec::batch().with_weight(0.0)]),
            Err(WorkloadError::BadClassWeight {
                class: RequestClass::Batch,
                value: 0.0
            })
        );
        assert_eq!(
            validate_classes(&[ClassSpec::batch().with_slo(0.0, 1.0)]),
            Err(WorkloadError::BadSloTarget {
                class: RequestClass::Batch,
                value: 0.0
            })
        );
        assert_eq!(
            validate_classes(&[ClassSpec::interactive().with_shed_after(f64::INFINITY)]),
            Err(WorkloadError::BadShedDeadline {
                class: RequestClass::Interactive,
                value: f64::INFINITY
            })
        );
        validate_classes(&[
            ClassSpec::interactive().with_weight(3.0),
            ClassSpec::batch().with_shed_after(2.0),
        ])
        .unwrap();
    }

    #[test]
    fn error_displays_are_stable() {
        // The panicking wrappers surface these texts; the first three are
        // pinned by pre-existing `should_panic` contracts.
        assert!(WorkloadError::NonPositiveRate { value: 0.0 }
            .to_string()
            .contains("rate must be positive"));
        assert!(WorkloadError::NonPositivePeriod { value: -1.0 }
            .to_string()
            .contains("period must be positive"));
        assert!(WorkloadError::AmplitudeOutOfRange { value: 1.5 }
            .to_string()
            .contains("amplitude must be in [0,1)"));
        assert!(WorkloadError::NoScenarioWeights
            .to_string()
            .contains("need positive scenario weights"));
        assert!(WorkloadError::TraceUnsorted { index: 3 }
            .to_string()
            .contains("trace row 3"));
        assert!(WorkloadError::BadPhaseFactor {
            index: 2,
            value: -1.0
        }
        .to_string()
        .contains("phase 2"));
    }
}
